"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists only so
that ``pip install -e . --no-use-pep517`` (legacy editable install) works on
environments without the ``wheel`` package.
"""

from setuptools import setup

setup()
