"""Packaging for the ``repro`` path-algebra engine.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so the editable install
works on minimal environments: ``pip install -e .``.  The package has no
runtime dependencies beyond the standard library.
"""

from setuptools import find_packages, setup

setup(
    name="repro-path-algebra",
    version="1.0.0",
    description=(
        "Reference implementation of 'Path-based Algebraic Foundations of "
        "Graph Query Languages' (EDBT 2025) with a pluggable-executor query engine"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
