"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph.io import load_json, save_json
from repro.datasets.figure1 import figure1_graph


@pytest.fixture
def figure1_file(tmp_path) -> str:
    path = tmp_path / "figure1.json"
    save_json(figure1_graph(), path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_arguments(self) -> None:
        args = build_parser().parse_args(
            ["query", "--dataset", "figure1", "--limit", "3", "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"]
        )
        assert args.command == "query"
        assert args.limit == 3


class TestServeCommand:
    BATCH = (
        "# a comment line\n"
        "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)\n"
        "\n"
        "MATCH ALL TRAIL p = (?x)-[Likes]->(?y)\n"
        "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)  # repeated: served from the result cache\n"
    )

    @pytest.fixture
    def batch_file(self, tmp_path) -> str:
        path = tmp_path / "batch.gql"
        path.write_text(self.BATCH, encoding="utf-8")
        return str(path)

    def test_serve_batch_file(self, batch_file, capsys) -> None:
        # One worker makes the cache accounting deterministic: the repeated
        # query is always dequeued after the first instance completed, so it
        # is served from the result cache (with >1 workers the duplicate may
        # legitimately race the in-flight original and compute too).
        code = main(["serve", "--batch-file", batch_file, "--workers", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.count("# 4 paths") == 3
        assert "served 3 queries" in captured.out
        assert "result cache: 1 hits" in captured.out

    def test_serve_concurrent_workers(self, batch_file, capsys) -> None:
        code = main(["serve", "--batch-file", batch_file, "--workers", "2"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.count("# 4 paths") == 3
        assert "with 2 workers" in captured.out

    def test_serve_inline_workers_and_paths(self, batch_file, capsys) -> None:
        code = main(["serve", "--batch-file", batch_file, "--workers", "0", "--print-paths"])
        captured = capsys.readouterr()
        assert code == 0
        assert "(n1, e1, n2)" in captured.out
        assert "with 0 workers" in captured.out

    def test_serve_reads_stdin(self, capsys, monkeypatch) -> None:
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(self.BATCH))
        code = main(["serve", "--workers", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "served 3 queries" in captured.out

    def test_serve_bad_query_returns_nonzero(self, tmp_path, capsys) -> None:
        path = tmp_path / "bad.gql"
        path.write_text("THIS IS NOT GQL\nMATCH ALL TRAIL p = (?x)-[Knows]->(?y)\n")
        code = main(["serve", "--batch-file", str(path), "--workers", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "# ERROR" in captured.out
        assert "# 4 paths" in captured.out  # the good query was still served

    def test_serve_empty_batch_is_an_error(self, tmp_path, capsys) -> None:
        path = tmp_path / "empty.gql"
        path.write_text("# nothing but comments\n")
        code = main(["serve", "--batch-file", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "no queries" in captured.err

    def test_serve_deadline_flag_parses(self, batch_file, capsys) -> None:
        code = main(["serve", "--batch-file", batch_file, "--deadline", "30"])
        assert code == 0


class TestQueryCommand:
    def test_query_builtin_dataset(self, capsys) -> None:
        code = main(["query", "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "# 4 paths" in captured.out
        assert "(n1, e1, n2)" in captured.out

    def test_query_graph_file(self, figure1_file, capsys) -> None:
        code = main(
            ["query", "--graph", figure1_file, "MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->+(?y)"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "# 9 paths" in captured.out

    def test_query_limit(self, capsys) -> None:
        code = main(["query", "--limit", "2", "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "more" in captured.out

    def test_query_reports_optimizer_rewrites(self, capsys) -> None:
        code = main(["query", "MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "walk-to-shortest" in captured.out

    def test_query_executor_flag(self, capsys) -> None:
        for executor in ("auto", "materialize", "pipeline"):
            code = main(
                ["query", "--executor", executor, "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"]
            )
            captured = capsys.readouterr()
            assert code == 0
            assert "# 4 paths" in captured.out
            assert "executor]" in captured.out

    def test_query_limit_pushdown_into_pipeline(self, capsys) -> None:
        code = main(
            [
                "query",
                "--executor",
                "pipeline",
                "--limit",
                "2",
                "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "# 2 paths" in captured.out
        assert "stopped after 2 paths (limit pushed into the pipeline)" in captured.out

    def test_query_phases_flag(self, capsys) -> None:
        code = main(["query", "--phases", "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "# phases: parse" in captured.out

    def test_query_syntax_error_returns_nonzero(self, capsys) -> None:
        code = main(["query", "MATCH OOPS"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error" in captured.err

    def test_missing_graph_file(self, tmp_path, capsys) -> None:
        code = main(
            ["query", "--graph", str(tmp_path / "nope.json"), "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"]
        )
        assert code == 1


class TestExplainCommand:
    def test_explain_prints_plan(self, capsys) -> None:
        code = main(["explain", "MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Logical plan:" in captured.out
        assert "walk-to-shortest" in captured.out
        assert "Projection" in captured.out


class TestGenerateCommand:
    def test_generate_figure1(self, tmp_path, capsys) -> None:
        output = tmp_path / "out.json"
        code = main(["generate", "figure1", "--output", str(output)])
        assert code == 0
        graph = load_json(output)
        assert graph.num_nodes() == 7
        assert graph.num_edges() == 11

    def test_generate_ldbc(self, tmp_path) -> None:
        output = tmp_path / "ldbc.json"
        code = main(
            ["generate", "ldbc", "--persons", "10", "--messages", "15", "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        person_nodes = [node for node in payload["nodes"] if node["label"] == "Person"]
        assert len(person_nodes) == 10

    def test_generate_random_cycle_chain_grid(self, tmp_path) -> None:
        for kind, extra in (
            ("random", ["--nodes", "12", "--edges", "20"]),
            ("cycle", ["--nodes", "6"]),
            ("chain", ["--nodes", "6"]),
            ("grid", ["--rows", "3", "--cols", "3"]),
        ):
            output = tmp_path / f"{kind}.json"
            code = main(["generate", kind, "--output", str(output), *extra])
            assert code == 0
            assert load_json(output).num_nodes() > 0

    def test_generated_graph_queryable_via_cli(self, tmp_path, capsys) -> None:
        output = tmp_path / "chain.json"
        main(["generate", "chain", "--nodes", "5", "--output", str(output)])
        capsys.readouterr()
        code = main(["query", "--graph", str(output), "MATCH ALL WALK p = (?x)-[Knows+]->(?y)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "# 10 paths" in captured.out


class TestStatsCommand:
    def test_stats_builtin(self, capsys) -> None:
        code = main(["stats", "--dataset", "figure1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "nodes: 7" in captured.out
        assert "edges: 11" in captured.out
        assert "has directed cycle: True" in captured.out

    def test_stats_from_file(self, figure1_file, capsys) -> None:
        code = main(["stats", "--graph", figure1_file])
        captured = capsys.readouterr()
        assert code == 0
        assert "'Knows': 4" in captured.out


class TestBudgetFlags:
    """CLI surface of the budget subsystem (ISSUE 4)."""

    HEAVY = "MATCH ALL WALK p = (?x)-[Knows+]->(?y)"

    def test_query_max_visited_kill_reports_progress(self, capsys) -> None:
        code = main(
            [
                "query",
                "--dataset",
                "ldbc",
                "--max-length",
                "5",
                "--max-visited",
                "1000",
                self.HEAVY,
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "BUDGET EXCEEDED (max_visited)" in captured.err
        assert "visited" in captured.err

    def test_query_generous_timeout_succeeds(self, capsys) -> None:
        code = main(
            [
                "query",
                "--dataset",
                "figure1",
                "--timeout",
                "60",
                "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "# 4 paths" in captured.out

    def test_serve_summary_and_partial_failure_exit_code(self, tmp_path, capsys) -> None:
        path = tmp_path / "batch.gql"
        path.write_text(
            f"{self.HEAVY}\nMATCH ALL TRAIL p = (?x)-[Knows]->(?y)\n", encoding="utf-8"
        )
        code = main(
            [
                "serve",
                "--dataset",
                "ldbc",
                "--batch-file",
                str(path),
                "--workers",
                "1",
                "--max-length",
                "5",
                "--max-visited",
                "1000",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1  # one killed, one served
        assert "# summary: 1 executed, 1 timed out" in captured.out
        assert "in flight" in captured.out

    def test_serve_returns_2_when_nothing_succeeds(self, tmp_path, capsys) -> None:
        path = tmp_path / "batch.gql"
        path.write_text(f"{self.HEAVY}\n", encoding="utf-8")
        code = main(
            [
                "serve",
                "--dataset",
                "ldbc",
                "--batch-file",
                str(path),
                "--workers",
                "1",
                "--max-length",
                "5",
                "--max-visited",
                "1000",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "# summary: 0 executed, 1 timed out" in captured.out
        assert "# TIMEOUT  (max_visited in" in captured.out
