"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph.io import load_json, save_json
from repro.datasets.figure1 import figure1_graph


@pytest.fixture
def figure1_file(tmp_path) -> str:
    path = tmp_path / "figure1.json"
    save_json(figure1_graph(), path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_arguments(self) -> None:
        args = build_parser().parse_args(
            ["query", "--dataset", "figure1", "--limit", "3", "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"]
        )
        assert args.command == "query"
        assert args.limit == 3


class TestServeCommand:
    BATCH = (
        "# a comment line\n"
        "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)\n"
        "\n"
        "MATCH ALL TRAIL p = (?x)-[Likes]->(?y)\n"
        "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)  # repeated: served from the result cache\n"
    )

    @pytest.fixture
    def batch_file(self, tmp_path) -> str:
        path = tmp_path / "batch.gql"
        path.write_text(self.BATCH, encoding="utf-8")
        return str(path)

    def test_serve_batch_file(self, batch_file, capsys) -> None:
        # One worker makes the cache accounting deterministic: the repeated
        # query is always dequeued after the first instance completed, so it
        # is served from the result cache (with >1 workers the duplicate may
        # legitimately race the in-flight original and compute too).
        code = main(["serve", "--batch-file", batch_file, "--workers", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.count("# 4 paths") == 3
        assert "served 3 queries" in captured.out
        assert "result cache: 1 hits" in captured.out

    def test_serve_concurrent_workers(self, batch_file, capsys) -> None:
        code = main(["serve", "--batch-file", batch_file, "--workers", "2"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.count("# 4 paths") == 3
        assert "with 2 workers" in captured.out

    def test_serve_inline_workers_and_paths(self, batch_file, capsys) -> None:
        code = main(["serve", "--batch-file", batch_file, "--workers", "0", "--print-paths"])
        captured = capsys.readouterr()
        assert code == 0
        assert "(n1, e1, n2)" in captured.out
        assert "with 0 workers" in captured.out

    def test_serve_reads_stdin(self, capsys, monkeypatch) -> None:
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(self.BATCH))
        code = main(["serve", "--workers", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "served 3 queries" in captured.out

    def test_serve_bad_query_returns_nonzero(self, tmp_path, capsys) -> None:
        path = tmp_path / "bad.gql"
        path.write_text("THIS IS NOT GQL\nMATCH ALL TRAIL p = (?x)-[Knows]->(?y)\n")
        code = main(["serve", "--batch-file", str(path), "--workers", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "# ERROR" in captured.out
        assert "# 4 paths" in captured.out  # the good query was still served

    def test_serve_empty_batch_is_an_error(self, tmp_path, capsys) -> None:
        path = tmp_path / "empty.gql"
        path.write_text("# nothing but comments\n")
        code = main(["serve", "--batch-file", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "no queries" in captured.err

    def test_serve_deadline_flag_parses(self, batch_file, capsys) -> None:
        code = main(["serve", "--batch-file", batch_file, "--deadline", "30"])
        assert code == 0


class TestQueryCommand:
    def test_query_builtin_dataset(self, capsys) -> None:
        code = main(["query", "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "# 4 paths" in captured.out
        assert "(n1, e1, n2)" in captured.out

    def test_query_graph_file(self, figure1_file, capsys) -> None:
        code = main(
            ["query", "--graph", figure1_file, "MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->+(?y)"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "# 9 paths" in captured.out

    def test_query_limit(self, capsys) -> None:
        code = main(["query", "--limit", "2", "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "more" in captured.out

    def test_query_reports_optimizer_rewrites(self, capsys) -> None:
        code = main(["query", "MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "walk-to-shortest" in captured.out

    def test_query_executor_flag(self, capsys) -> None:
        for executor in ("auto", "materialize", "pipeline"):
            code = main(
                ["query", "--executor", executor, "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"]
            )
            captured = capsys.readouterr()
            assert code == 0
            assert "# 4 paths" in captured.out
            assert "executor]" in captured.out

    def test_query_limit_pushdown_into_pipeline(self, capsys) -> None:
        code = main(
            [
                "query",
                "--executor",
                "pipeline",
                "--limit",
                "2",
                "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "# 2 paths" in captured.out
        assert "stopped after 2 paths (limit pushed into the pipeline)" in captured.out

    def test_query_phases_flag(self, capsys) -> None:
        code = main(["query", "--phases", "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "# phases: parse" in captured.out

    def test_query_syntax_error_returns_nonzero(self, capsys) -> None:
        code = main(["query", "MATCH OOPS"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error" in captured.err

    def test_missing_graph_file(self, tmp_path, capsys) -> None:
        code = main(
            ["query", "--graph", str(tmp_path / "nope.json"), "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"]
        )
        assert code == 1


class TestQueryParams:
    PARAM_QUERY = "MATCH ANY SHORTEST TRAIL p = (?x {name: $name})-[:Knows]->+(?y)"

    def test_param_binds_placeholder(self, capsys) -> None:
        code = main(["query", "--param", "name=Moe", self.PARAM_QUERY])
        captured = capsys.readouterr()
        assert code == 0
        assert "# 3 paths" in captured.out
        assert "(n1, e1, n2)" in captured.out

    def test_param_changes_change_results(self, capsys) -> None:
        main(["query", "--param", "name=Moe", self.PARAM_QUERY])
        moe = capsys.readouterr().out
        main(["query", "--param", "name=Lisa", self.PARAM_QUERY])
        lisa = capsys.readouterr().out
        assert moe != lisa

    def test_param_is_repeatable(self, capsys) -> None:
        code = main(
            [
                "query",
                "--param", "a=Moe",
                "--param", "b=Lisa",
                "MATCH ALL TRAIL p = (?x {name: $a})-[Knows]->(?y {name: $b})",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "# 1 paths" in captured.out

    def test_param_values_parse_types(self, capsys) -> None:
        # Integer-valued property comparison: age parses as int, not "42".
        code = main(
            [
                "query",
                "--param", "min=2",
                "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y) WHERE len() >= 2 AND x.name = $min",
            ]
        )
        assert code == 0  # parses and runs (no match expected, name is a string)
        assert "# 0 paths" in capsys.readouterr().out

    def test_missing_param_is_an_error(self, capsys) -> None:
        code = main(["query", self.PARAM_QUERY])
        captured = capsys.readouterr()
        assert code == 1
        assert "missing binding" in captured.err

    def test_malformed_param_flag_exits(self, capsys) -> None:
        with pytest.raises(SystemExit):
            main(["query", "--param", "no-equals-sign", self.PARAM_QUERY])

    def test_dollar_prefix_in_flag_is_tolerated(self, capsys) -> None:
        code = main(["query", "--param", "$name=Moe", self.PARAM_QUERY])
        assert code == 0
        assert "# 3 paths" in capsys.readouterr().out


class TestQueryJsonl:
    QUERY = "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"

    def test_jsonl_streams_one_row_per_line(self, capsys) -> None:
        code = main(["query", "--format", "jsonl", self.QUERY])
        captured = capsys.readouterr()
        assert code == 0
        lines = [line for line in captured.out.splitlines() if line]
        assert len(lines) == 4
        rows = [json.loads(line) for line in lines]
        assert all(row["length"] == 1 and row["labels"] == ["Knows"] for row in rows)
        assert all(set(row) == {"source", "target", "length", "nodes", "edges", "labels"} for row in rows)

    def test_jsonl_with_params(self, capsys) -> None:
        code = main(
            [
                "query", "--format", "jsonl", "--param", "name=Moe",
                "MATCH ANY SHORTEST TRAIL p = (?x {name: $name})-[:Knows]->+(?y)",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        rows = [json.loads(line) for line in captured.out.splitlines() if line]
        assert len(rows) == 3
        assert all(row["source"] == "n1" for row in rows)

    def test_jsonl_respects_limit(self, capsys) -> None:
        code = main(["query", "--format", "jsonl", "--limit", "2", self.QUERY])
        captured = capsys.readouterr()
        assert code == 0
        assert len([line for line in captured.out.splitlines() if line]) == 2

    def test_jsonl_budget_kill_mid_stream(self, capsys) -> None:
        code = main(
            [
                "query", "--format", "jsonl", "--executor", "pipeline",
                "--max-visited", "10", "--max-length", "6",
                "MATCH ALL WALK p = (?x)-[Knows]->*(?y)",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "BUDGET EXCEEDED" in captured.err


class TestExplainCommand:
    def test_explain_prints_plan(self, capsys) -> None:
        code = main(["explain", "MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Logical plan:" in captured.out
        assert "walk-to-shortest" in captured.out
        assert "Projection" in captured.out


class TestGenerateCommand:
    def test_generate_figure1(self, tmp_path, capsys) -> None:
        output = tmp_path / "out.json"
        code = main(["generate", "figure1", "--output", str(output)])
        assert code == 0
        graph = load_json(output)
        assert graph.num_nodes() == 7
        assert graph.num_edges() == 11

    def test_generate_ldbc(self, tmp_path) -> None:
        output = tmp_path / "ldbc.json"
        code = main(
            ["generate", "ldbc", "--persons", "10", "--messages", "15", "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        person_nodes = [node for node in payload["nodes"] if node["label"] == "Person"]
        assert len(person_nodes) == 10

    def test_generate_random_cycle_chain_grid(self, tmp_path) -> None:
        for kind, extra in (
            ("random", ["--nodes", "12", "--edges", "20"]),
            ("cycle", ["--nodes", "6"]),
            ("chain", ["--nodes", "6"]),
            ("grid", ["--rows", "3", "--cols", "3"]),
        ):
            output = tmp_path / f"{kind}.json"
            code = main(["generate", kind, "--output", str(output), *extra])
            assert code == 0
            assert load_json(output).num_nodes() > 0

    def test_generated_graph_queryable_via_cli(self, tmp_path, capsys) -> None:
        output = tmp_path / "chain.json"
        main(["generate", "chain", "--nodes", "5", "--output", str(output)])
        capsys.readouterr()
        code = main(["query", "--graph", str(output), "MATCH ALL WALK p = (?x)-[Knows+]->(?y)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "# 10 paths" in captured.out


class TestStatsCommand:
    def test_stats_builtin(self, capsys) -> None:
        code = main(["stats", "--dataset", "figure1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "nodes: 7" in captured.out
        assert "edges: 11" in captured.out
        assert "has directed cycle: True" in captured.out

    def test_stats_from_file(self, figure1_file, capsys) -> None:
        code = main(["stats", "--graph", figure1_file])
        captured = capsys.readouterr()
        assert code == 0
        assert "'Knows': 4" in captured.out


class TestBudgetFlags:
    """CLI surface of the budget subsystem (ISSUE 4)."""

    HEAVY = "MATCH ALL WALK p = (?x)-[Knows+]->(?y)"

    def test_query_max_visited_kill_reports_progress(self, capsys) -> None:
        code = main(
            [
                "query",
                "--dataset",
                "ldbc",
                "--max-length",
                "5",
                "--max-visited",
                "1000",
                self.HEAVY,
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "BUDGET EXCEEDED (max_visited)" in captured.err
        assert "visited" in captured.err

    def test_query_generous_timeout_succeeds(self, capsys) -> None:
        code = main(
            [
                "query",
                "--dataset",
                "figure1",
                "--timeout",
                "60",
                "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "# 4 paths" in captured.out

    def test_serve_summary_and_partial_failure_exit_code(self, tmp_path, capsys) -> None:
        path = tmp_path / "batch.gql"
        path.write_text(
            f"{self.HEAVY}\nMATCH ALL TRAIL p = (?x)-[Knows]->(?y)\n", encoding="utf-8"
        )
        code = main(
            [
                "serve",
                "--dataset",
                "ldbc",
                "--batch-file",
                str(path),
                "--workers",
                "1",
                "--max-length",
                "5",
                "--max-visited",
                "1000",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1  # one killed, one served
        assert "# summary: 1 executed, 1 timed out" in captured.out
        assert "in flight" in captured.out

    def test_serve_returns_2_when_nothing_succeeds(self, tmp_path, capsys) -> None:
        path = tmp_path / "batch.gql"
        path.write_text(f"{self.HEAVY}\n", encoding="utf-8")
        code = main(
            [
                "serve",
                "--dataset",
                "ldbc",
                "--batch-file",
                str(path),
                "--workers",
                "1",
                "--max-length",
                "5",
                "--max-visited",
                "1000",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "# summary: 0 executed, 1 timed out" in captured.out
        assert "# TIMEOUT  (max_visited in" in captured.out
