"""Pickle round-trips for every object that crosses the process boundary.

The process pool (``repro.service.procpool``) ships tasks, results, budget
kills and footprints between the parent and its worker processes.  Anything
that silently loses information under pickling corrupts cross-process
results *without failing* — the classic example being an exception class
whose default ``__reduce__`` replays ``cls(*args)`` and thereby feeds the
formatted message back into a typed field.  This suite locks every wire
type down.
"""

from __future__ import annotations

import pickle

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.engine.engine import PathQueryEngine
from repro.engine.footprint import plan_footprint
from repro.errors import BudgetExceeded, FrozenGraphError
from repro.execution import ExecutionStatistics, QueryBudget
from repro.graph.compact import CompactGraph
from repro.graph.snapshot import GraphSnapshot
from repro.paths.intpath import IntPath
from repro.service import QueryService
from repro.service.procpool import WorkerDied, decode_paths, encode_paths

QUERY = "MATCH ALL ACYCLIC p = (?x)-[Knows+]->(?y)"


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _canonical(paths) -> tuple[str, ...]:
    return tuple(str(path) for path in paths.sorted())


class TestGraphPickling:
    def test_property_graph_round_trips_with_identical_answers(self) -> None:
        graph = figure1_graph()
        expected = _canonical(PathQueryEngine(graph).query(QUERY).paths)
        clone = roundtrip(graph)
        assert clone.version == graph.version
        assert clone.node_ids() == graph.node_ids()
        assert _canonical(PathQueryEngine(clone).query(QUERY).paths) == expected

    def test_unpickled_graph_is_independently_mutable(self) -> None:
        graph = figure1_graph()
        clone = roundtrip(graph)
        clone.add_node("only-in-clone", "Person")
        assert "only-in-clone" in clone.node_ids()
        assert "only-in-clone" not in graph.node_ids()
        assert graph.version == clone.version - 1

    def test_snapshot_round_trips_pinned_and_frozen(self) -> None:
        graph = figure1_graph()
        snapshot = graph.snapshot()
        graph.add_node("after-pin", "Person")
        clone = roundtrip(snapshot)
        assert clone.version == snapshot.version
        assert "after-pin" not in clone.node_ids()
        with pytest.raises(FrozenGraphError):
            clone.add_node("nope", "Person")

    def test_wire_path_encoding_round_trips(self) -> None:
        graph = figure1_graph()
        paths = PathQueryEngine(graph).query(QUERY).paths
        decoded = decode_paths(graph, encode_paths(paths))
        assert _canonical(decoded) == _canonical(paths)


class TestCompactPickling:
    def test_compact_graph_round_trips_with_identical_answers(self) -> None:
        graph = figure1_graph()
        expected = _canonical(PathQueryEngine(graph).query(QUERY).paths)
        compact = graph.ensure_compact()
        clone = roundtrip(compact)
        assert isinstance(clone, CompactGraph)
        assert clone.version == compact.version
        assert clone.node_ids() == compact.node_ids()
        assert clone.edge_ids() == compact.edge_ids()
        # The lazy object memos are dropped by __getstate__ and rebuilt on
        # demand: querying the clone directly must reproduce the answers.
        assert _canonical(PathQueryEngine(clone).query(QUERY).paths) == expected

    def test_compact_clone_preserves_csr_adjacency(self) -> None:
        compact = figure1_graph().ensure_compact()
        clone = roundtrip(compact)
        for node_id in compact.node_ids():
            assert [e.id for e in clone.out_edges(node_id)] == [
                e.id for e in compact.out_edges(node_id)
            ]
            assert [e.id for e in clone.in_edges(node_id)] == [
                e.id for e in compact.in_edges(node_id)
            ]

    def test_compact_clone_stays_immutable(self) -> None:
        clone = roundtrip(figure1_graph().ensure_compact())
        with pytest.raises(FrozenGraphError):
            clone.add_node("nope", "Person")

    def test_frozen_property_graph_round_trips_thawed_core(self) -> None:
        """The compact core is a derived cache: it is NOT shipped with the
        graph (the pool ships a ``CompactGraph`` explicitly instead), so the
        clone rebuilds it on demand and answers identically."""
        graph = figure1_graph()
        graph.freeze()
        clone = roundtrip(graph)
        assert clone.compact_core() is None
        assert clone.ensure_compact().node_ids() == graph.node_ids()

    def test_int_path_round_trips_and_decodes(self) -> None:
        graph = figure1_graph()
        compact = graph.ensure_compact()
        path = next(iter(PathQueryEngine(graph).query(QUERY).paths))
        clone = roundtrip(IntPath.encode(compact, path))
        assert clone.seq == IntPath.encode(compact, path).seq
        assert str(clone.decode(graph)) == str(path)


class TestResultPickling:
    def test_query_result_round_trips(self) -> None:
        graph = figure1_graph()
        result = PathQueryEngine(graph).query(QUERY)
        clone = roundtrip(result)
        assert clone.executor == result.executor
        assert _canonical(clone.paths) == _canonical(result.paths)

    def test_execution_statistics_round_trip_preserves_counters(self) -> None:
        graph = figure1_graph()
        statistics = PathQueryEngine(graph).query(QUERY).statistics
        clone = roundtrip(statistics)
        assert clone == statistics

    def test_query_footprint_round_trips(self) -> None:
        graph = figure1_graph()
        plan = PathQueryEngine(graph).prepare(QUERY).optimized
        footprint = plan_footprint(plan)
        clone = roundtrip(footprint)
        assert clone == footprint

    def test_optimized_plan_round_trips_and_still_executes(self) -> None:
        graph = figure1_graph()
        engine = PathQueryEngine(graph)
        cached = engine.prepare(QUERY)
        plan = roundtrip(cached.optimized)
        from repro.engine.executor import MaterializeExecutor

        expected = _canonical(engine.query(QUERY).paths)
        assert _canonical(MaterializeExecutor().execute(plan, graph).paths) == expected


class TestBudgetExceededPickling:
    def test_typed_fields_survive_the_boundary(self) -> None:
        """The regression the custom ``__reduce__`` exists for.

        Default exception pickling would reconstruct with the *formatted
        message* as ``reason`` and zeros for the partial progress — exactly
        the corruption a worker's budget kill would exhibit in the parent.
        """
        original = BudgetExceeded(
            "max_visited", paths_visited=123, depth_reached=7, stopped_at="phi-loop"
        )
        clone = roundtrip(original)
        assert clone.reason == "max_visited"
        assert clone.paths_visited == 123
        assert clone.depth_reached == 7
        assert clone.stopped_at == "phi-loop"
        assert str(clone) == str(original)

    def test_cancelled_reason_round_trips(self) -> None:
        clone = roundtrip(BudgetExceeded("cancelled", 1, 2, "pipeline"))
        assert clone.reason == "cancelled"

    def test_budget_kill_raised_through_pickle_is_catchable(self) -> None:
        budget = QueryBudget(max_visited=1)
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.charge(5, "test-loop")
        clone = roundtrip(excinfo.value)
        assert clone.reason == "max_visited"
        assert clone.paths_visited >= 1


class TestServiceTypePickling:
    def test_query_outcome_round_trips(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=0) as service:
            outcome = service.run_batch([QUERY])[0]
        clone = roundtrip(outcome)
        assert clone.ok
        assert clone.rendered() == outcome.rendered()
        assert clone.version == outcome.version
        assert clone.executor == outcome.executor

    def test_worker_died_round_trips(self) -> None:
        died = WorkerDied(reason="exit code 13", pid=4242, requeued=True)
        assert roundtrip(died) == died

    def test_service_statistics_round_trip_for_cross_process_merge(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=0) as service:
            service.run_batch([QUERY, QUERY])
            stats = service.statistics()
        clone = roundtrip(stats)
        assert clone == stats
        merged = clone.merge(stats)
        assert merged.submitted == 2 * stats.submitted


class TestFrozenGraphAcrossProcesses:
    """A hard-frozen graph ships its columnar core to pool workers.

    Fork inherits the flat arrays as copy-on-write pages; spawn pickles them.
    Either way the workers' answers must match the serial ones byte-for-byte.
    """

    @staticmethod
    def _expected(graph) -> list[str]:
        with QueryService(graph, workers=0, result_cache_size=0) as serial:
            return [outcome.rendered() for outcome in serial.run_batch([QUERY])]

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_frozen_graph_parity_across_start_methods(self, start_method: str) -> None:
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} not available on this platform")
        graph = figure1_graph()
        expected = self._expected(graph)
        graph.freeze()
        assert graph.compact_core() is not None
        with QueryService(
            graph,
            workers=1,
            execution_mode="processes",
            result_cache_size=0,
            pool_options={"start_method": start_method},
        ) as service:
            outcomes = service.run_batch([QUERY])
        for outcome, want in zip(outcomes, expected):
            assert outcome.ok, outcome.error
            assert outcome.rendered() == want
            assert outcome.worker.startswith("proc-"), outcome.worker
