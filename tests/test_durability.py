"""Crash-recovery property suite: random crash points over the graph corpus.

The acceptance criterion for the durability layer: for every graph in the
50-graph corpus, simulate a crash at a random point in its mutation history
(seeded per graph, so failures reproduce), recover the store from disk, and
assert the recovered graph answers queries **byte-identically** to a fresh
graph that applied exactly the mutations the recovery surfaced.  Because the
WAL logs before the in-memory apply, recovery must always land on a *prefix*
of the committed mutation sequence — never a gap, never an invented record.

A second class proves the cache layers never serve stale entries across a
recovery: the recovered graph's delta journal is cleared (its coverage floor
moves to the recovered version), so delta-aware caches fall back to full
invalidation instead of trusting a journal that no longer describes history.
"""

from __future__ import annotations

import os
import random

import pytest

from graph_corpus import closure_corpus
from repro.api import Database
from repro.engine.engine import PathQueryEngine
from repro.graph.model import PropertyGraph
from repro.graph.wal import CrashPoint, DurableStore, SimulatedCrash
from repro.service.service import QueryService

CORPUS = closure_corpus(labels=("Knows", "Likes"))

#: Base seed for the per-graph crash schedules.  CI's crash-recovery stress
#: job overrides it with a fresh random value each run (and echoes it), so
#: every run explores a different schedule while failures stay reproducible.
BASE_SEED = int(os.environ.get("DURABILITY_SEED", "7000"))

QUERIES = (
    "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)",
    "MATCH ALL TRAIL p = (?x)-[Knows]->+(?y)",
    "MATCH ANY SHORTEST WALK p = (?x)-[Likes]->(?y)",
)
MAX_LENGTH = 4

APPEND_POINTS = (
    CrashPoint.BEFORE_APPEND,
    CrashPoint.MID_APPEND,
    CrashPoint.AFTER_APPEND,
    CrashPoint.AFTER_SYNC,
)
ROTATE_POINTS = (
    CrashPoint.ROTATE_BEGIN,
    CrashPoint.ROTATE_SNAPSHOT_TMP,
    CrashPoint.ROTATE_SNAPSHOT_RENAMED,
    CrashPoint.ROTATE_DONE,
)


def _mutation_script(graph: PropertyGraph) -> list[tuple]:
    """Flatten a corpus graph into a deterministic mutation sequence."""
    ops: list[tuple] = []
    for node in graph.nodes():
        ops.append(("add_node", node.id, node.label, dict(node.properties)))
    for edge in graph.edges():
        ops.append(
            ("add_edge", edge.id, edge.source, edge.target, edge.label, dict(edge.properties))
        )
    for node in graph.nodes()[:2]:
        ops.append(("set_node_property", node.id, "mark", 1))
    return ops


def _apply(graph: PropertyGraph, op: tuple) -> None:
    kind = op[0]
    if kind == "add_node":
        graph.add_node(op[1], op[2], op[3])
    elif kind == "add_edge":
        graph.add_edge(op[1], op[2], op[3], op[4], op[5])
    else:
        graph.set_node_property(op[1], op[2], op[3])


def _reference_at(ops: list[tuple], version: int) -> PropertyGraph:
    """A never-crashed graph holding exactly the first ``version`` mutations."""
    graph = PropertyGraph(name="reference")
    for op in ops[:version]:
        _apply(graph, op)
    assert graph.version == version
    return graph


def _rendered_results(graph) -> list[bytes]:
    """Byte-exact query results: one sorted rendering per corpus query."""
    engine = PathQueryEngine(graph, default_max_length=MAX_LENGTH, plan_cache_size=0)
    out = []
    for text in QUERIES:
        result = engine.query(text)
        out.append("\n".join(sorted(str(path) for path in result.paths)).encode())
    return out


def _arm(point: str, append_index: int):
    """Crash hook: raise at ``point`` during the ``append_index``-th append.

    Counts appends by BEFORE_APPEND sightings; rotation points ignore the
    index (a rotation happens once).  Disarms after firing so recovery and
    post-recovery work run clean.
    """
    state = {"appends": 0, "armed": True}

    def hook(fired: str) -> None:
        if not state["armed"]:
            return
        if fired == CrashPoint.BEFORE_APPEND:
            state["appends"] += 1
        if fired == point and (point in ROTATE_POINTS or state["appends"] == append_index):
            state["armed"] = False
            raise SimulatedCrash(f"{point} @ append {state['appends']}")

    return hook


def _abandon(store: DurableStore) -> None:
    """Simulate process death: drop the store without close() or final fsync."""
    store.wal._file.close()


@pytest.mark.parametrize(
    "index", range(len(CORPUS)), ids=lambda index: CORPUS[index].name
)
def test_recovery_is_byte_identical_to_a_mutation_prefix(index, tmp_path) -> None:
    source = CORPUS[index]
    ops = _mutation_script(source)
    rng = random.Random(BASE_SEED + index)
    crash_append = rng.randrange(1, len(ops) + 1)
    point = rng.choice(APPEND_POINTS)
    rotate_before = rng.random() < 0.3 and crash_append > 2

    store = DurableStore(tmp_path / "store", crash_hook=_arm(point, crash_append))
    survived = 0
    crashed = False
    try:
        for position, op in enumerate(ops):
            if rotate_before and position == crash_append // 2:
                store.rotate()
            _apply(store.graph, op)
            survived += 1
    except SimulatedCrash:
        crashed = True
    assert crashed, "the crash hook must fire inside the schedule"
    assert survived == crash_append - 1
    assert store.graph.version == survived  # the crashed mutation never applied
    _abandon(store)

    recovered = DurableStore(tmp_path / "store")
    try:
        # Prefix property: the durable record of the crashed mutation either
        # survived (AFTER_APPEND / AFTER_SYNC flushed it) or it did not
        # (BEFORE_APPEND wrote nothing, MID_APPEND left a torn tail that
        # recovery drops) — but recovery never invents or skips records.
        assert recovered.graph.version in (crash_append - 1, crash_append)
        if point in (CrashPoint.BEFORE_APPEND, CrashPoint.MID_APPEND):
            assert recovered.graph.version == crash_append - 1
        else:
            assert recovered.graph.version == crash_append
        reference = _reference_at(ops, recovered.graph.version)
        assert _rendered_results(recovered.graph) == _rendered_results(reference)

        # The recovered store keeps working: apply the rest of the script and
        # converge with the full never-crashed graph.
        for op in ops[recovered.graph.version :]:
            _apply(recovered.graph, op)
        full = _reference_at(ops, len(ops))
        assert recovered.graph.version == full.version
        assert _rendered_results(recovered.graph) == _rendered_results(full)
    finally:
        recovered.close()


@pytest.mark.parametrize("point", ROTATE_POINTS)
@pytest.mark.parametrize("index", [3, 17, 31, 49])
def test_rotation_crash_never_loses_mutations(index, point, tmp_path) -> None:
    """A crash anywhere inside rotation preserves every committed mutation."""
    ops = _mutation_script(CORPUS[index])
    store = DurableStore(tmp_path / "store", crash_hook=_arm(point, 0))
    for op in ops:
        _apply(store.graph, op)
    with pytest.raises(SimulatedCrash):
        store.rotate()
    _abandon(store)

    recovered = DurableStore(tmp_path / "store")
    try:
        assert recovered.graph.version == len(ops)
        reference = _reference_at(ops, len(ops))
        assert _rendered_results(recovered.graph) == _rendered_results(reference)
    finally:
        recovered.close()


class TestCachesAcrossRecovery:
    """Delta-aware caches must never trust a journal across a recovery."""

    def _seed(self, graph: PropertyGraph) -> None:
        graph.add_node("a", "Person", {"name": "A"})
        graph.add_node("b", "Person", {"name": "B"})
        graph.add_edge("ab", "a", "b", "Knows")

    def test_recovered_graph_reports_honest_delta_coverage(self, tmp_path) -> None:
        with DurableStore(tmp_path / "store") as store:
            self._seed(store.graph)
            store.rotate()
            store.graph.add_node("late", "Person")
        with DurableStore(tmp_path / "store") as store:
            # Loading the snapshot fast-forwards the version without history:
            # claiming delta coverage for the pre-snapshot window would let
            # caches serve stale entries, so it must report "unknown" (None).
            assert store.graph.delta_between(0, store.graph.version) is None
            assert store.graph.delta_between(1, 3) is None
            # The replayed tail (v3 -> v4), however, was re-journaled by the
            # replay itself, so its coverage is genuine.
            delta = store.graph.delta_between(3, 4)
            assert delta is not None
            assert "Person" in delta.node_labels

    def test_service_over_recovered_graph_never_serves_stale(self, tmp_path) -> None:
        text = "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"
        with DurableStore(tmp_path / "store") as store:
            self._seed(store.graph)
        with DurableStore(tmp_path / "store") as store:
            with QueryService(store.graph, workers=0) as service:
                before = service.submit(text).result()
                assert len(before) == 1
                store.graph.add_edge("ba", "b", "a", "Knows")
                after = service.submit(text).result()
                assert not after.result_cache_hit
                assert len(after) == 2

    def test_database_reopen_round_trip(self, tmp_path) -> None:
        text = "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"
        with Database.open(tmp_path / "store") as db:
            self._seed(db.graph)
            assert db.durable
            first = db.query(text)
            assert len(first.paths) == 1
            assert db.checkpoint() == db.graph.version
        with Database.open(tmp_path / "store") as db:
            assert db.graph.version == 3
            again = db.query(text)
            assert sorted(str(p) for p in again.paths) == sorted(
                str(p) for p in first.paths
            )
            db.graph.add_edge("ba", "b", "a", "Knows")
            assert len(db.query(text).paths) == 2

    def test_crash_between_sessions_keeps_cached_reads_correct(self, tmp_path) -> None:
        """Query → mutate → crash → recover → query again: no stale answer."""
        text = "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"
        store = DurableStore(
            tmp_path / "store", crash_hook=_arm(CrashPoint.AFTER_APPEND, 4)
        )
        self._seed(store.graph)
        with pytest.raises(SimulatedCrash):
            store.graph.add_edge("ba", "b", "a", "Knows")
        _abandon(store)

        recovered = DurableStore(tmp_path / "store")
        try:
            # The fourth record was flushed before the crash, so recovery
            # replays it even though the in-memory apply never happened.
            assert recovered.graph.version == 4
            with QueryService(recovered.graph, workers=0) as service:
                outcome = service.submit(text).result()
                assert len(outcome) == 2  # both edges, including the crashed one
                repeat = service.submit(text).result()
                assert repeat.result_cache_hit
                assert repeat.rendered() == outcome.rendered()
        finally:
            recovered.close()
