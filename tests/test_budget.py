"""Budget / cooperative-cancellation tests (ISSUE 4).

The contract under test: a :class:`~repro.execution.QueryBudget` threaded
into any entry point of the execution stack — the engine facade, either
executor, the closure strategies, ``PathSet.join`` or the traversal/automaton
baselines — kills the execution within one check interval of its deadline (or
deterministically at a resource cap), raises a typed
:class:`~repro.errors.BudgetExceeded` carrying the partial progress, and
costs nothing when absent: a generous budget never changes a result.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.automaton_eval import (
    evaluate_rpq_pairs,
    evaluate_rpq_shortest_witnesses,
)
from repro.baselines.traversal import TraversalOptions, evaluate_rpq_traversal
from repro.datasets.generators import complete_graph, cycle_graph
from repro.datasets.ldbc import ldbc_like_graph
from repro.engine.engine import PathQueryEngine
from repro.errors import BudgetExceeded
from repro.execution import ExecutionStatistics, QueryBudget
from repro.paths.pathset import PathSet
from repro.semantics.restrictors import (
    Restrictor,
    recursive_closure,
    recursive_closure_baseline,
)

#: A Walk recursion over the cyclic LDBC-like Knows network: the workload the
#: issue names as the one that wedges a worker when budgets don't exist.
HEAVY_WALK = "MATCH ALL WALK p = (?x)-[Knows+]->(?y)"
HEAVY_MAX_LENGTH = 7

#: An already-expired budget: the first checkpoint anywhere must trip it.
def _expired() -> QueryBudget:
    return QueryBudget(deadline=time.monotonic() - 1.0)


def _generous() -> QueryBudget:
    return QueryBudget.from_timeout(300.0, max_visited=10**12)


class TestQueryBudgetUnit:
    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            QueryBudget(max_visited=-1)
        with pytest.raises(ValueError):
            QueryBudget(max_results=-5)
        with pytest.raises(ValueError):
            QueryBudget(check_interval=0)

    def test_unlimited(self) -> None:
        assert QueryBudget().unlimited
        assert not QueryBudget(max_visited=10).unlimited
        assert not QueryBudget.from_timeout(1.0).unlimited

    def test_charge_trips_visited_cap(self) -> None:
        budget = QueryBudget(max_visited=100)
        budget.charge(100, "op")  # exactly at the cap: fine
        with pytest.raises(BudgetExceeded) as info:
            budget.charge(1, "op")
        assert info.value.reason == "max_visited"
        assert info.value.paths_visited == 101
        assert info.value.stopped_at == "op"

    def test_charge_checks_clock_every_interval(self) -> None:
        budget = QueryBudget(deadline=time.monotonic() - 1.0, check_interval=10)
        # Nine paths stay under the interval: the clock is never consulted.
        for _ in range(9):
            budget.charge(1, "hot-loop")
        with pytest.raises(BudgetExceeded) as info:
            budget.charge(1, "hot-loop")
        assert info.value.reason == "deadline"

    def test_checkpoint_always_checks_clock(self) -> None:
        budget = _expired()
        with pytest.raises(BudgetExceeded):
            budget.checkpoint("frontier")

    def test_checkpoint_records_depth(self) -> None:
        budget = QueryBudget()
        budget.checkpoint("round", depth=3)
        budget.checkpoint("round", depth=2)  # never decreases
        budget.note_depth(7)
        assert budget.depth_reached == 7

    def test_result_size_cap(self) -> None:
        budget = QueryBudget(max_results=5)
        budget.check_result_size(5, "result")
        with pytest.raises(BudgetExceeded) as info:
            budget.check_result_size(6, "result")
        assert info.value.reason == "max_results"

    def test_from_timeout_and_remaining(self) -> None:
        budget = QueryBudget.from_timeout(60.0)
        remaining = budget.remaining_seconds()
        assert remaining is not None and 55.0 < remaining <= 60.0
        assert QueryBudget().remaining_seconds() is None

    def test_exception_message_carries_progress(self) -> None:
        error = BudgetExceeded("deadline", paths_visited=42, depth_reached=3, stopped_at="ϕWalk")
        text = str(error)
        assert "deadline" in text and "42" in text and "ϕWalk" in text

    def test_capture_budget_into_statistics(self) -> None:
        budget = QueryBudget()
        budget.charge(10, "op")
        budget.note_depth(2)
        statistics = ExecutionStatistics()
        statistics.capture_budget(budget)
        assert statistics.budget_paths_visited == 10
        assert statistics.budget_depth_reached == 2
        statistics.capture_budget(None)  # no-op
        assert statistics.budget_paths_visited == 10


class TestClosureBudgets:
    @pytest.mark.parametrize(
        "restrictor",
        [Restrictor.WALK, Restrictor.TRAIL, Restrictor.ACYCLIC, Restrictor.SIMPLE],
    )
    def test_visited_cap_kills_closure(self, restrictor: Restrictor) -> None:
        base = PathSet.edges_of(complete_graph(6))
        budget = QueryBudget(max_visited=50)
        with pytest.raises(BudgetExceeded) as info:
            recursive_closure(base, restrictor, max_length=5, budget=budget)
        assert info.value.reason == "max_visited"
        assert info.value.paths_visited > 50

    def test_visited_cap_kills_shortest(self) -> None:
        budget = QueryBudget(max_visited=10)
        with pytest.raises(BudgetExceeded) as info:
            recursive_closure(
                PathSet.edges_of(complete_graph(6)), Restrictor.SHORTEST, budget=budget
            )
        assert info.value.reason == "max_visited"

    def test_expired_deadline_kills_at_first_frontier(self) -> None:
        base = PathSet.edges_of(cycle_graph(8))
        with pytest.raises(BudgetExceeded) as info:
            recursive_closure(base, Restrictor.TRAIL, budget=_expired())
        assert info.value.reason == "deadline"
        assert info.value.stopped_at == "ϕTrail"

    @pytest.mark.parametrize(
        "restrictor",
        [
            Restrictor.WALK,
            Restrictor.TRAIL,
            Restrictor.ACYCLIC,
            Restrictor.SIMPLE,
            Restrictor.SHORTEST,
        ],
    )
    def test_generous_budget_is_invisible(self, restrictor: Restrictor) -> None:
        base = PathSet.edges_of(complete_graph(5))
        unbudgeted = recursive_closure(base, restrictor, max_length=4)
        budget = _generous()
        budgeted = recursive_closure(base, restrictor, max_length=4, budget=budget)
        assert budgeted == unbudgeted
        assert budget.paths_visited > 0

    def test_baseline_closure_honours_budget(self) -> None:
        base = PathSet.edges_of(complete_graph(6))
        with pytest.raises(BudgetExceeded):
            recursive_closure_baseline(
                base, Restrictor.TRAIL, max_length=5, budget=QueryBudget(max_visited=50)
            )
        with pytest.raises(BudgetExceeded):
            recursive_closure_baseline(
                base, Restrictor.SHORTEST, budget=QueryBudget(max_visited=10)
            )

    def test_pathset_join_honours_budget(self) -> None:
        base = PathSet.edges_of(complete_graph(8))
        with pytest.raises(BudgetExceeded) as info:
            base.join(base, budget=QueryBudget(max_visited=100))
        assert info.value.stopped_at == "⋈"
        # Without a cap the join result matches the budget-free join.
        assert base.join(base, budget=_generous()) == base.join(base)


class TestEngineBudgets:
    @pytest.fixture(scope="class")
    def ldbc(self):
        return ldbc_like_graph()

    @pytest.mark.parametrize("executor", ["materialize", "pipeline"])
    def test_deadline_kills_heavy_walk_in_flight(self, ldbc, executor: str) -> None:
        engine = PathQueryEngine(ldbc)
        budget = QueryBudget.from_timeout(0.1)
        started = time.monotonic()
        with pytest.raises(BudgetExceeded) as info:
            engine.query(
                HEAVY_WALK, max_length=HEAVY_MAX_LENGTH, executor=executor, budget=budget
            )
        elapsed = time.monotonic() - started
        # The unbudgeted query runs for many seconds; the kill must land
        # within a small multiple of the deadline (one check interval plus
        # scheduling noise — generous slack for loaded CI hosts).
        assert elapsed < 1.0
        assert info.value.reason == "deadline"
        assert info.value.paths_visited > 0
        assert info.value.depth_reached >= 1
        assert info.value.stopped_at

    def test_visited_cap_is_deterministic(self, ldbc) -> None:
        engine = PathQueryEngine(ldbc)
        with pytest.raises(BudgetExceeded) as info:
            engine.query(
                HEAVY_WALK,
                max_length=HEAVY_MAX_LENGTH,
                budget=QueryBudget(max_visited=10_000),
            )
        assert info.value.reason == "max_visited"
        assert info.value.paths_visited > 10_000

    def test_result_size_cap(self, ldbc) -> None:
        engine = PathQueryEngine(ldbc)
        with pytest.raises(BudgetExceeded) as info:
            engine.query(
                HEAVY_WALK, max_length=4, budget=QueryBudget(max_results=1_000)
            )
        assert info.value.reason == "max_results"

    def test_generous_budget_matches_unbudgeted_result(self, ldbc) -> None:
        engine = PathQueryEngine(ldbc)
        plain = engine.query(HEAVY_WALK, max_length=4)
        budgeted = engine.query(HEAVY_WALK, max_length=4, budget=_generous())
        assert budgeted.paths == plain.paths
        assert budgeted.statistics.budget_paths_visited > 0
        assert budgeted.statistics.budget_depth_reached >= 1
        assert budgeted.statistics.budget_stopped_at == ""

    def test_killed_query_does_not_poison_the_plan_cache(self, ldbc) -> None:
        engine = PathQueryEngine(ldbc)
        with pytest.raises(BudgetExceeded):
            engine.query(HEAVY_WALK, max_length=4, budget=QueryBudget(max_visited=100))
        # The second run reuses the cached plan (budgets are not part of the
        # key) and must produce the complete result.
        rerun = engine.query(HEAVY_WALK, max_length=4)
        assert rerun.cache_hit
        baseline = PathQueryEngine(ldbc, plan_cache_size=0).query(HEAVY_WALK, max_length=4)
        assert rerun.paths == baseline.paths

    def test_execute_regex_accepts_budget(self, ldbc) -> None:
        engine = PathQueryEngine(ldbc)
        with pytest.raises(BudgetExceeded):
            engine.execute_regex(
                "Knows+",
                restrictor=Restrictor.WALK,
                max_length=HEAVY_MAX_LENGTH,
                budget=QueryBudget(max_visited=10_000),
            )
        paths = engine.execute_regex(
            "Knows+", restrictor=Restrictor.TRAIL, max_length=2, budget=_generous()
        )
        assert len(paths) > 0

    def test_expired_budget_dies_before_execution(self, ldbc) -> None:
        engine = PathQueryEngine(ldbc)
        started = time.monotonic()
        with pytest.raises(BudgetExceeded):
            engine.query(HEAVY_WALK, max_length=HEAVY_MAX_LENGTH, budget=_expired())
        # Killed at a phase checkpoint — far too fast to have evaluated the
        # multi-second recursion.
        assert time.monotonic() - started < 0.5


class TestBaselineBudgets:
    def test_traversal_dfs_budget(self) -> None:
        graph = complete_graph(7)
        options = TraversalOptions(restrictor=Restrictor.WALK, max_length=6)
        with pytest.raises(BudgetExceeded) as info:
            evaluate_rpq_traversal(graph, "Knows+", options, budget=QueryBudget(max_visited=500))
        assert info.value.reason == "max_visited"
        assert info.value.stopped_at == "traversal-dfs"
        budgeted = evaluate_rpq_traversal(graph, "Knows+", TraversalOptions(
            restrictor=Restrictor.TRAIL, max_length=3), budget=_generous())
        plain = evaluate_rpq_traversal(graph, "Knows+", TraversalOptions(
            restrictor=Restrictor.TRAIL, max_length=3))
        assert budgeted == plain

    def test_product_bfs_budget(self) -> None:
        graph = complete_graph(8)
        with pytest.raises(BudgetExceeded) as info:
            evaluate_rpq_pairs(graph, "Knows+", budget=QueryBudget(max_visited=5))
        assert info.value.reason == "max_visited"
        plain = evaluate_rpq_pairs(graph, "Knows+")
        budgeted = evaluate_rpq_pairs(graph, "Knows+", budget=_generous())
        assert budgeted.pairs == plain.pairs

    def test_witness_bfs_budget(self) -> None:
        graph = complete_graph(8)
        with pytest.raises(BudgetExceeded):
            evaluate_rpq_shortest_witnesses(graph, "Knows+", budget=QueryBudget(max_visited=5))
        plain = evaluate_rpq_shortest_witnesses(graph, "Knows+")
        budgeted = evaluate_rpq_shortest_witnesses(graph, "Knows+", budget=_generous())
        assert budgeted == plain

    def test_expired_deadline_checked_per_source(self) -> None:
        graph = cycle_graph(5)
        with pytest.raises(BudgetExceeded) as info:
            evaluate_rpq_pairs(graph, "Knows", budget=_expired())
        assert info.value.reason == "deadline"
