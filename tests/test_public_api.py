"""Public-API snapshot: accidental surface changes must fail review.

``repro.__all__`` is the package's contract with downstream code.  This test
pins it to a checked-in list: adding, removing or renaming a public name
fails here until the snapshot below is updated *deliberately* (which makes
the change visible in the diff, which is the point).

The suite also asserts every advertised name actually resolves, and that the
doc-critical entry points keep their shape (``connect`` returning a
``Database`` whose sessions hand out cursors).
"""

from __future__ import annotations

import pytest

import repro

#: The deliberate public surface.  Keep sorted; update ONLY on purpose.
PUBLIC_API = [
    "AutomatonExecutor",
    "BindingTable",
    "BudgetExceeded",
    "CompactGraph",
    "CompileOptions",
    "Database",
    "DurableStore",
    "Edge",
    "EdgesScan",
    "Evaluator",
    "ExecutionStatistics",
    "Executor",
    "ExplainResult",
    "Expression",
    "GraphBuilder",
    "GraphDelta",
    "GraphSnapshot",
    "GroupBy",
    "GroupByKey",
    "Join",
    "LatencyHistogram",
    "MaterializeExecutor",
    "Node",
    "NodesScan",
    "Optimizer",
    "OrderBy",
    "OrderByKey",
    "ParameterError",
    "Path",
    "PathAlgebraError",
    "PathBinding",
    "PathQueryEngine",
    "PathQuerySpec",
    "PathSet",
    "PipelineExecutor",
    "PlanCache",
    "PreparedQuery",
    "Projection",
    "ProjectionSpec",
    "PropertyGraph",
    "QueryBudget",
    "QueryFootprint",
    "QueryOutcome",
    "QueryResult",
    "QueryService",
    "QueryTicket",
    "Recursive",
    "ReproClient",
    "ReproServer",
    "Restrictor",
    "ResultCursor",
    "Selection",
    "Selector",
    "SelectorKind",
    "ServiceOverloadedError",
    "ServiceStatistics",
    "Session",
    "SolutionSpace",
    "StripedLRUCache",
    "Union",
    "WalCorruptError",
    "WriteAheadLog",
    "__version__",
    "all_selector_restrictor_combinations",
    "apply_selector",
    "bind_paths",
    "compile_regex",
    "connect",
    "evaluate",
    "evaluate_to_paths",
    "figure1_graph",
    "group_by",
    "ldbc_like_graph",
    "optimize",
    "order_by",
    "parse_query",
    "parse_regex",
    "plan_query",
    "plan_text",
    "project",
    "recursive_closure",
    "to_algebra_notation",
    "to_plan_tree",
    "translate_path_query",
    "translate_selector_restrictor",
]


def test_public_api_snapshot() -> None:
    """The exported surface matches the checked-in list exactly."""
    assert sorted(repro.__all__) == PUBLIC_API


def test_no_duplicate_exports() -> None:
    assert len(repro.__all__) == len(set(repro.__all__))


@pytest.mark.parametrize("name", PUBLIC_API)
def test_every_export_resolves(name: str) -> None:
    assert getattr(repro, name, None) is not None, f"repro.{name} does not resolve"


def test_client_api_names_are_first_class() -> None:
    """The quickstart names exist with their documented shapes."""
    db = repro.connect(repro.figure1_graph())
    assert isinstance(db, repro.Database)
    with db.session() as session:
        assert isinstance(session, repro.Session)
        prepared = session.prepare(
            'MATCH ANY SHORTEST TRAIL p = (?x {name: $name})-[:Knows]->+(?y)'
        )
        assert isinstance(prepared, repro.PreparedQuery)
        cursor = prepared.execute(name="Moe")
        assert isinstance(cursor, repro.ResultCursor)
        assert cursor.fetchall()


def test_binding_table_reachable_without_deep_import() -> None:
    """PathBinding / BindingTable / bind_paths are top-level (issue satellite)."""
    table = repro.bind_paths(
        repro.connect(repro.figure1_graph())
        .query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        .paths
    )
    assert isinstance(table, repro.BindingTable)
    assert len(table) == 4
    assert isinstance(table.rows[0], repro.PathBinding)
