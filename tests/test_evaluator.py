"""Tests for the algebra evaluator: core operators and the worked figures."""

from __future__ import annotations

import pytest

from repro.algebra.conditions import label_of_edge, prop_of_first, prop_of_last
from repro.algebra.evaluator import Evaluator, evaluate, evaluate_to_paths
from repro.algebra.expressions import (
    EdgesScan,
    GroupBy,
    Join,
    NodesScan,
    OrderBy,
    Projection,
    Recursive,
    Selection,
    Union,
)
from repro.algebra.solution_space import GroupByKey, OrderByKey, ProjectionSpec, SolutionSpace
from repro.errors import EvaluationError
from repro.paths.path import Path
from repro.semantics.restrictors import Restrictor


def knows_scan() -> Selection:
    return Selection(label_of_edge(1, "Knows"), EdgesScan())


class TestAtoms:
    def test_nodes_scan(self, figure1) -> None:
        result = evaluate_to_paths(NodesScan(), figure1)
        assert len(result) == 7
        assert all(path.len() == 0 for path in result)

    def test_edges_scan(self, figure1) -> None:
        result = evaluate_to_paths(EdgesScan(), figure1)
        assert len(result) == 11
        assert all(path.len() == 1 for path in result)


class TestCoreOperators:
    def test_selection(self, figure1) -> None:
        result = evaluate_to_paths(knows_scan(), figure1)
        assert len(result) == 4
        assert {path.edge(1) for path in result} == {"e1", "e2", "e3", "e4"}

    def test_join(self, figure1) -> None:
        plan = Join(knows_scan(), knows_scan())
        result = evaluate_to_paths(plan, figure1)
        # Knows ∘ Knows paths: e1e2, e1e4, e2e3, e3e2, e3e4.
        assert len(result) == 5
        assert all(path.len() == 2 for path in result)

    def test_union_removes_duplicates(self, figure1) -> None:
        plan = Union(knows_scan(), knows_scan())
        result = evaluate_to_paths(plan, figure1)
        assert len(result) == 4

    def test_figure3_friends_of_friends(self, figure1) -> None:
        """Figure 3: σ[first.name=Moe]( Knows ∪ (Knows ⋈ Knows) )."""
        plan = Selection(
            prop_of_first("name", "Moe"),
            Union(knows_scan(), Join(knows_scan(), knows_scan())),
        )
        result = evaluate_to_paths(plan, figure1)
        interleaved = {path.interleaved() for path in result}
        assert interleaved == {
            ("n1", "e1", "n2"),
            ("n1", "e1", "n2", "e2", "n3"),
            ("n1", "e1", "n2", "e4", "n4"),
        }


class TestRecursiveOperator:
    def test_trail_recursion(self, figure1) -> None:
        result = evaluate_to_paths(Recursive(knows_scan(), Restrictor.TRAIL), figure1)
        assert len(result) == 12

    def test_walk_recursion_uses_default_bound(self, figure1) -> None:
        plan = Recursive(knows_scan(), Restrictor.WALK)
        evaluator = Evaluator(figure1, default_max_length=3)
        result = evaluator.evaluate_paths(plan)
        assert all(path.len() <= 3 for path in result)

    def test_explicit_bound_overrides_nothing_set(self, figure1) -> None:
        plan = Recursive(knows_scan(), Restrictor.WALK, max_length=2)
        result = evaluate_to_paths(plan, figure1)
        assert all(path.len() <= 2 for path in result)

    def test_figure4_star_with_nodes_union(self, figure1) -> None:
        """Figure 4 (right branch): ϕ(Likes ⋈ Has_creator) ∪ Nodes(G)."""
        likes = Selection(label_of_edge(1, "Likes"), EdgesScan())
        creator = Selection(label_of_edge(1, "Has_creator"), EdgesScan())
        plan = Union(Recursive(Join(likes, creator), Restrictor.ACYCLIC), NodesScan())
        result = evaluate_to_paths(plan, figure1)
        # Every length-zero path is included (Kleene star matches the empty word).
        for node_id in figure1.node_ids():
            assert Path.from_node(figure1, node_id) in result
        # And the Likes/Has_creator compositions have even length.
        assert all(path.len() % 2 == 0 for path in result)

    def test_figure2_moe_to_apu_simple(self, figure1) -> None:
        """Figure 2 with ϕSimple: exactly the two paths quoted in the introduction."""
        likes = Selection(label_of_edge(1, "Likes"), EdgesScan())
        creator = Selection(label_of_edge(1, "Has_creator"), EdgesScan())
        plan = Selection(
            prop_of_first("name", "Moe") & prop_of_last("name", "Apu"),
            Union(
                Recursive(knows_scan(), Restrictor.SIMPLE),
                Recursive(Join(likes, creator), Restrictor.SIMPLE),
            ),
        )
        result = evaluate_to_paths(plan, figure1)
        assert {path.interleaved() for path in result} == {
            ("n1", "e1", "n2", "e4", "n4"),
            ("n1", "e8", "n6", "e11", "n3", "e7", "n7", "e10", "n4"),
        }


class TestExtendedOperators:
    def test_group_by_returns_solution_space(self, figure1) -> None:
        plan = GroupBy(Recursive(knows_scan(), Restrictor.TRAIL), GroupByKey.ST)
        result = evaluate(plan, figure1)
        assert isinstance(result, SolutionSpace)
        assert result.num_paths() == 12

    def test_evaluate_paths_flattens_solution_space(self, figure1) -> None:
        plan = GroupBy(Recursive(knows_scan(), Restrictor.TRAIL), GroupByKey.ST)
        result = evaluate_to_paths(plan, figure1)
        assert len(result) == 12

    def test_figure5_full_pipeline(self, figure1) -> None:
        """Figure 5: π(*,*,1)(τA(γST(ϕTrail(σKnows(Edges(G)))))) — one shortest trail per pair."""
        plan = Projection(
            OrderBy(
                GroupBy(Recursive(knows_scan(), Restrictor.TRAIL), GroupByKey.ST),
                OrderByKey.A,
            ),
            ProjectionSpec("*", "*", 1),
        )
        result = evaluate_to_paths(plan, figure1)
        trails = evaluate_to_paths(Recursive(knows_scan(), Restrictor.TRAIL), figure1)
        pairs = {path.endpoints() for path in trails}
        assert len(result) == len(pairs)
        by_pair = trails.group_by_endpoints()
        for path in result:
            assert path.len() == min(p.len() for p in by_pair[path.endpoints()])

    def test_projection_of_bare_path_set_wraps_in_group_by(self, figure1) -> None:
        plan = Projection(knows_scan(), ProjectionSpec("*", "*", 2))
        result = evaluate_to_paths(plan, figure1)
        assert len(result) == 2

    def test_order_by_requires_solution_space(self, figure1) -> None:
        with pytest.raises(EvaluationError):
            evaluate(OrderBy(knows_scan(), OrderByKey.A), figure1)

    def test_selection_rejects_solution_space_input(self, figure1) -> None:
        plan = Selection(label_of_edge(1, "Knows"), GroupBy(knows_scan(), GroupByKey.ST))
        with pytest.raises(EvaluationError):
            evaluate(plan, figure1)


class TestStatistics:
    def test_operator_statistics_recorded(self, figure1) -> None:
        evaluator = Evaluator(figure1)
        plan = Union(knows_scan(), Join(knows_scan(), knows_scan()))
        evaluator.evaluate(plan)
        stats = evaluator.statistics
        assert stats.operator_calls["Edges(G)"] == 3
        assert stats.operator_calls["∪"] == 1
        assert stats.operator_calls["⋈"] == 1
        assert stats.total_calls() == 3 + 3 + 1 + 1
        assert stats.intermediate_paths > 0

    def test_unknown_expression_type_rejected(self, figure1) -> None:
        class Strange:  # not an Expression subclass
            pass

        with pytest.raises(EvaluationError):
            Evaluator(figure1)._eval(Strange())  # type: ignore[arg-type]
