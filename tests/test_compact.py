"""The columnar frozen graph core: CSR adjacency, interned labels, int paths.

``CompactGraph`` is a read-only columnar twin of ``PropertyGraph`` that the
closure strategies, both executors and the process pool switch to when the
engine detects a frozen graph.  The contract is strict: every result computed
over the compact core must be *byte-identical* to the one computed over the
mutable object graph — same paths, same production order, same partial
progress when a budget kills the query mid-closure.  This suite locks that
contract over the shared 50-graph corpus, plus the freeze/thaw lifecycle,
the auto-compact heuristic, the int encoding itself, and the memory story
the whole exercise exists for.
"""

from __future__ import annotations

import sys

import pytest

from graph_corpus import closure_corpus, frozen_twin
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import EdgesScan, NodesScan, Recursive
from repro.api import Database
from repro.datasets.figure1 import figure1_graph
from repro.datasets.generators import complete_graph, random_graph
from repro.engine.physical import execute_pipeline
from repro.errors import BudgetExceeded, FrozenGraphError
from repro.execution import QueryBudget
from repro.graph.compact import AutoCompactPolicy, CompactGraph, compact_core_of
from repro.graph.model import PropertyGraph
from repro.paths.intpath import IntPath, IntPathSet, decode_seq, encode_seq
from repro.paths.join_index import IntJoinIndex
from repro.paths.pathset import PathSet
from repro.semantics.restrictors import (
    Restrictor,
    iter_recursive_closure,
    recursive_closure,
)

ALL_GRAPHS: list[PropertyGraph] = closure_corpus()
RESTRICTORS = tuple(Restrictor)

#: Bound for the corpus parity sweeps — matches test_closure_equivalence so
#: the two suites exercise the same closure workloads.
COMMON_BOUND = 6


def _ordered(paths) -> tuple[str, ...]:
    """Canonical *production-order* rendering — order differences fail too."""
    return tuple(str(path) for path in paths)


# ----------------------------------------------------------------------
# Read-API parity: CompactGraph is a drop-in read-only PropertyGraph
# ----------------------------------------------------------------------
class TestReadApiParity:
    @pytest.fixture(scope="class")
    def pair(self) -> tuple[PropertyGraph, CompactGraph]:
        graph = figure1_graph()
        return graph, CompactGraph.from_graph(graph)

    def test_identity_and_cardinalities(self, pair) -> None:
        graph, compact = pair
        assert compact.name == graph.name
        assert compact.version == graph.version
        assert compact.num_nodes() == graph.num_nodes()
        assert compact.num_edges() == graph.num_edges()
        assert len(compact) == len(graph)
        assert compact.node_ids() == graph.node_ids()
        assert compact.edge_ids() == graph.edge_ids()

    def test_nodes_and_edges_round_trip_with_labels_and_properties(self, pair) -> None:
        graph, compact = pair
        for node_id in graph.node_ids():
            ours, theirs = compact.node(node_id), graph.node(node_id)
            assert ours.id == theirs.id
            assert ours.label == theirs.label
            assert ours.properties == theirs.properties
        for edge_id in graph.edge_ids():
            ours, theirs = compact.edge(edge_id), graph.edge(edge_id)
            assert (ours.source, ours.target) == (theirs.source, theirs.target)
            assert ours.label == theirs.label
            assert ours.properties == theirs.properties

    def test_adjacency_matches_in_order(self, pair) -> None:
        graph, compact = pair
        for node_id in graph.node_ids():
            assert [e.id for e in compact.out_edges(node_id)] == [
                e.id for e in graph.out_edges(node_id)
            ]
            assert [e.id for e in compact.in_edges(node_id)] == [
                e.id for e in graph.in_edges(node_id)
            ]
            assert compact.out_degree(node_id) == graph.out_degree(node_id)
            assert compact.in_degree(node_id) == graph.in_degree(node_id)
            assert list(compact.neighbors(node_id)) == list(graph.neighbors(node_id))

    def test_label_lookups_match(self, pair) -> None:
        graph, compact = pair
        assert compact.node_labels() == graph.node_labels()
        assert compact.edge_labels() == graph.edge_labels()
        for label in graph.node_labels():
            assert [n.id for n in compact.nodes_by_label(label)] == [
                n.id for n in graph.nodes_by_label(label)
            ]
        for label in graph.edge_labels():
            assert [e.id for e in compact.edges_by_label(label)] == [
                e.id for e in graph.edges_by_label(label)
            ]

    def test_membership_and_missing_objects(self, pair) -> None:
        graph, compact = pair
        some = next(iter(graph.node_ids()))
        assert some in compact
        assert "definitely-not-a-node" not in compact
        assert not compact.has_node("definitely-not-a-node")
        assert not compact.has_edge("definitely-not-an-edge")

    def test_label_partition_slices_match_filtered_adjacency(self, pair) -> None:
        graph, compact = pair
        for label in graph.edge_labels():
            for node_id in graph.node_ids():
                index = compact.node_index_of(node_id)
                edges, targets, start, end = compact.label_out_slice(label, index)
                got = [compact.edge_id_at(edges[i]) for i in range(start, end)]
                expected = [
                    e.id for e in graph.out_edges(node_id) if e.label == label
                ]
                assert got == expected, (label, node_id)
                for i in range(start, end):
                    edge = graph.edge(compact.edge_id_at(edges[i]))
                    assert compact.node_id_at(targets[i]) == edge.target

    def test_mutators_refuse(self, pair) -> None:
        _, compact = pair
        with pytest.raises(FrozenGraphError):
            compact.add_node("nope", "Person")
        with pytest.raises(FrozenGraphError):
            compact.set_node_property(next(iter(compact.node_ids())), "age", 99)


# ----------------------------------------------------------------------
# Freeze / thaw / ensure_compact lifecycle on the mutable graph
# ----------------------------------------------------------------------
class TestFreezeLifecycle:
    def test_freeze_builds_core_and_rejects_writes(self) -> None:
        graph = figure1_graph()
        assert graph.compact_core() is None
        graph.freeze()
        core = graph.compact_core()
        assert isinstance(core, CompactGraph)
        assert core.version == graph.version
        with pytest.raises(FrozenGraphError):
            graph.add_node("nope", "Person")

    def test_thaw_restores_mutability_and_drops_core(self) -> None:
        graph = figure1_graph()
        graph.freeze()
        graph.thaw()
        graph.add_node("after-thaw", "Person")
        assert graph.compact_core() is None

    def test_mutation_invalidates_soft_core(self) -> None:
        graph = figure1_graph()
        core = graph.ensure_compact()
        assert graph.compact_core() is core
        graph.add_node("another", "Person")
        assert graph.compact_core() is None
        rebuilt = graph.ensure_compact()
        assert rebuilt is not core
        assert rebuilt.has_node("another")

    def test_ensure_compact_is_cached_per_version(self) -> None:
        graph = figure1_graph()
        assert graph.ensure_compact() is graph.ensure_compact()

    def test_snapshot_exposes_core_only_at_matching_version(self) -> None:
        graph = figure1_graph()
        snapshot = graph.snapshot()
        assert compact_core_of(snapshot) is None
        graph.ensure_compact()
        assert compact_core_of(snapshot) is graph.compact_core()
        stale = graph.snapshot()
        graph.add_node("moves-the-version", "Person")
        graph.ensure_compact()
        # The old snapshot pins the old version; the new core must not leak.
        assert compact_core_of(stale) is None

    def test_compact_core_of_handles_foreign_objects(self) -> None:
        assert compact_core_of(object()) is None
        assert compact_core_of(None) is None


# ----------------------------------------------------------------------
# Auto-compact: freeze on second consecutive quiescent read
# ----------------------------------------------------------------------
class TestAutoCompact:
    def test_policy_waits_for_two_reads_at_one_version(self) -> None:
        graph = figure1_graph()
        policy = AutoCompactPolicy()
        policy.observe(graph)
        assert graph.compact_core() is None  # first read only records
        policy.observe(graph)
        assert graph.compact_core() is not None  # second read builds

    def test_policy_resets_on_interleaved_writes(self) -> None:
        graph = figure1_graph()
        policy = AutoCompactPolicy()
        policy.observe(graph)
        graph.add_node("writer-active", "Person")
        policy.observe(graph)  # version moved: records the new version
        assert graph.compact_core() is None
        policy.observe(graph)
        assert graph.compact_core() is not None

    def test_database_auto_freezes_and_thaws_transparently(self) -> None:
        db = Database(figure1_graph())
        query = "MATCH ALL ACYCLIC p = (?x)-[Knows+]->(?y)"
        db.query(query)
        db.query(query)
        assert db.graph.compact_core() is not None
        before = db.query(query).paths
        # A mutation transparently thaws: the core is dropped, writes work,
        # and subsequent reads re-freeze at the new version.
        db.graph.add_node("late-arrival", "Person")
        assert db.graph.compact_core() is None
        db.query(query)
        db.query(query)
        core = db.graph.compact_core()
        assert core is not None and core.has_node("late-arrival")
        assert db.query(query).paths == before

    def test_database_auto_compact_can_be_disabled(self) -> None:
        db = Database(figure1_graph(), auto_compact=False)
        query = "MATCH ALL ACYCLIC p = (?x)-[Knows+]->(?y)"
        for _ in range(3):
            db.query(query)
        assert db.graph.compact_core() is None


# ----------------------------------------------------------------------
# Int encoding: lossless round-trips
# ----------------------------------------------------------------------
class TestIntEncoding:
    def test_encode_decode_round_trips_every_closure_path(self) -> None:
        graph = figure1_graph()
        compact = graph.ensure_compact()
        paths = recursive_closure(PathSet.edges_of(graph), Restrictor.TRAIL, 4)
        for path in paths:
            seq = encode_seq(compact, path)
            assert seq is not None
            assert decode_seq(compact, graph, seq) == path

    def test_encode_fails_cleanly_on_foreign_paths(self) -> None:
        graph = figure1_graph()
        other = complete_graph(3)
        compact = graph.ensure_compact()
        foreign = next(iter(PathSet.edges_of(other)))
        assert encode_seq(compact, foreign) is None

    def test_intpath_mirrors_path(self) -> None:
        graph = figure1_graph()
        compact = graph.ensure_compact()
        path = next(iter(recursive_closure(PathSet.edges_of(graph), Restrictor.TRAIL, 3)))
        intpath = IntPath.encode(compact, path)
        assert len(intpath) == len(path)
        assert intpath.decode(graph) == path
        assert intpath == IntPath.encode(compact, path)
        assert hash(intpath) == hash(IntPath.encode(compact, path))

    def test_intpathset_round_trips_preserving_order(self) -> None:
        graph = figure1_graph()
        compact = graph.ensure_compact()
        paths = recursive_closure(PathSet.edges_of(graph), Restrictor.ACYCLIC, 3)
        encoded = IntPathSet.encode(compact, paths)
        assert len(encoded) == len(paths)
        assert _ordered(encoded.decode(graph)) == _ordered(paths)

    def test_int_join_index_buckets_match_object_index(self) -> None:
        graph = figure1_graph()
        compact = graph.ensure_compact()
        base = PathSet.edges_of(graph)
        encoded = IntPathSet.encode(compact, base)
        index = IntJoinIndex(encoded.seqs)
        for node_id in graph.node_ids():
            node_index = compact.node_index_of(node_id)
            got = [
                compact.edge_id_at(seq[1]) for seq in index.extensions(node_index)
            ]
            expected = [e.id for e in graph.out_edges(node_id)]
            assert got == expected, node_id


# ----------------------------------------------------------------------
# The headline contract: frozen results are byte-identical to mutable ones
# ----------------------------------------------------------------------
@pytest.mark.parametrize("graph", ALL_GRAPHS, ids=lambda graph: graph.name)
def test_corpus_closures_identical_frozen_vs_mutable(graph: PropertyGraph) -> None:
    frozen = frozen_twin(graph)
    base = PathSet.edges_of(graph)
    frozen_base = PathSet.edges_of(frozen)
    for restrictor in RESTRICTORS:
        expected = recursive_closure(base, restrictor, COMMON_BOUND)
        got = recursive_closure(frozen_base, restrictor, COMMON_BOUND)
        assert _ordered(got) == _ordered(expected), (graph.name, restrictor)
        streamed = list(iter_recursive_closure(frozen_base, restrictor, COMMON_BOUND))
        reference = list(iter_recursive_closure(base, restrictor, COMMON_BOUND))
        assert [str(p) for p in streamed] == [str(p) for p in reference], (
            graph.name,
            restrictor,
        )


@pytest.mark.parametrize("graph", ALL_GRAPHS, ids=lambda graph: graph.name)
def test_corpus_executors_identical_frozen_vs_mutable(graph: PropertyGraph) -> None:
    frozen = frozen_twin(graph)
    for restrictor in RESTRICTORS:
        plan = Recursive(EdgesScan(), restrictor, COMMON_BOUND)
        assert _ordered(execute_pipeline(plan, frozen)) == _ordered(
            execute_pipeline(plan, graph)
        ), (graph.name, restrictor, "pipeline")
        assert _ordered(evaluate_to_paths(plan, frozen)) == _ordered(
            evaluate_to_paths(plan, graph)
        ), (graph.name, restrictor, "evaluator")
    scan = NodesScan()
    assert _ordered(execute_pipeline(scan, frozen)) == _ordered(
        execute_pipeline(scan, graph)
    )


@pytest.mark.parametrize(
    "restrictor", RESTRICTORS, ids=lambda restrictor: restrictor.value
)
def test_budget_kill_mid_closure_matches_partial_progress(
    restrictor: Restrictor,
) -> None:
    """A budget kill must stop at the same point with the same counters."""
    graph = complete_graph(4)
    frozen = frozen_twin(graph)

    def kill(target: PropertyGraph):
        budget = QueryBudget(max_visited=10, check_interval=1)
        with pytest.raises(BudgetExceeded) as excinfo:
            recursive_closure(
                PathSet.edges_of(target), restrictor, 5, budget=budget
            )
        err = excinfo.value
        return (err.reason, err.paths_visited, err.stopped_at)

    assert kill(frozen) == kill(graph)


@pytest.mark.parametrize(
    "restrictor", RESTRICTORS, ids=lambda restrictor: restrictor.value
)
def test_budget_kill_mid_stream_yields_identical_prefix(
    restrictor: Restrictor,
) -> None:
    graph = complete_graph(4)
    frozen = frozen_twin(graph)

    def drain(target: PropertyGraph):
        budget = QueryBudget(max_visited=10, check_interval=1)
        produced: list[str] = []
        try:
            for path in iter_recursive_closure(
                PathSet.edges_of(target), restrictor, 5, budget=budget
            ):
                produced.append(str(path))
        except BudgetExceeded as err:
            return produced, err.reason
        return produced, None

    assert drain(frozen) == drain(graph)


# ----------------------------------------------------------------------
# Memory story: the columnar core is measurably smaller than the dicts
# ----------------------------------------------------------------------
class TestMemoryFootprint:
    def test_memory_report_shape(self) -> None:
        compact = figure1_graph().ensure_compact()
        report = compact.memory_report()
        for key in ("ids", "indexes", "tables", "columns", "csr", "partitions"):
            assert report[key] > 0, key
        assert report["total"] >= sum(
            report[k] for k in ("ids", "indexes", "tables", "columns", "csr")
        )
        assert report["bytes_per_object"] > 0

    def test_columns_beat_object_rows(self) -> None:
        """Adjacency + labels in flat arrays undercut per-object dicts."""
        graph = random_graph(200, 800, labels=("Knows", "Likes"), seed=7)
        compact = graph.ensure_compact()
        report = compact.memory_report()
        # The dict representation pays for Node/Edge objects plus per-node
        # adjacency lists; measure the dominant object overhead directly.
        object_bytes = sum(
            sys.getsizeof(node) + sys.getsizeof(node.properties)
            for node in graph.nodes()
        ) + sum(
            sys.getsizeof(edge) + sys.getsizeof(edge.properties)
            for edge in graph.edges()
        )
        columnar_bytes = report["columns"] + report["csr"] + report["partitions"]
        assert columnar_bytes < object_bytes
        # Hard budget so regressions show up in CI: CSR rows are 3 int64
        # columns (edge, target, source) each direction plus offsets, label
        # codes are int32 — generously under 1 KiB per object all-in.
        assert report["bytes_per_object"] < 1024

    def test_freeze_allocation_stays_within_budget(self) -> None:
        """Building the core allocates O(V+E) flat arrays, not object soup."""
        import tracemalloc

        graph = random_graph(200, 800, labels=("Knows", "Likes"), seed=7)
        tracemalloc.start()
        try:
            compact = CompactGraph.from_graph(graph)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # Peak build allocation must stay within a small constant factor of
        # the finished core (counting sort uses one temp pass per direction).
        assert peak < 8 * compact.memory_report()["total"]
