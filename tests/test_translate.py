"""Tests for the GQL-to-algebra translation (Section 6, Table 7)."""

from __future__ import annotations

import pytest

from repro.algebra.conditions import label_of_edge
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import EdgesScan, GroupBy, OrderBy, Projection, Recursive, Selection
from repro.algebra.printer import to_algebra_notation
from repro.semantics.restrictors import Restrictor, recursive_closure
from repro.semantics.selectors import Selector, SelectorKind, apply_selector
from repro.semantics.translate import (
    PathQuerySpec,
    all_selector_restrictor_combinations,
    translate_path_query,
    translate_selector_restrictor,
)


def knows_scan() -> Selection:
    return Selection(label_of_edge(1, "Knows"), EdgesScan())


class TestPlanShapes:
    def test_any_shortest_walk_matches_table7(self) -> None:
        plan = translate_selector_restrictor(
            Selector(SelectorKind.ANY_SHORTEST),
            Restrictor.WALK,
            knows_scan(),
            already_recursive=False,
        )
        assert to_algebra_notation(plan) == (
            "π(*,*,1)(τA(γST(ϕWalk(σ[label(edge(1)) = 'Knows'](Edges(G))))))"
        )

    def test_all_shortest_acyclic_matches_section6_example(self) -> None:
        """The Section 6 worked example: ALL SHORTEST ACYCLIC over Knows+."""
        plan = translate_selector_restrictor(
            Selector(SelectorKind.ALL_SHORTEST),
            Restrictor.ACYCLIC,
            knows_scan(),
            already_recursive=False,
        )
        assert to_algebra_notation(plan) == (
            "π(*,1,*)(τG(γSTL(ϕAcyclic(σ[label(edge(1)) = 'Knows'](Edges(G))))))"
        )

    def test_all_walk_has_trivial_pipeline(self) -> None:
        plan = translate_selector_restrictor(
            Selector(SelectorKind.ALL), Restrictor.WALK, knows_scan(), already_recursive=False
        )
        assert isinstance(plan, Projection)
        assert isinstance(plan.child, GroupBy)       # no order-by for ALL
        assert isinstance(plan.child.child, Recursive)

    def test_already_recursive_skips_phi_wrapper(self) -> None:
        recursive_pattern = Recursive(knows_scan(), Restrictor.TRAIL)
        plan = translate_selector_restrictor(
            Selector(SelectorKind.ANY), Restrictor.TRAIL, recursive_pattern, already_recursive=True
        )
        # Exactly one Recursive node in the tree.
        recursives = [node for node in plan.iter_subtree() if isinstance(node, Recursive)]
        assert len(recursives) == 1

    def test_max_length_is_forwarded(self) -> None:
        plan = translate_selector_restrictor(
            Selector(SelectorKind.ALL),
            Restrictor.WALK,
            knows_scan(),
            already_recursive=False,
            max_length=4,
        )
        recursive = next(node for node in plan.iter_subtree() if isinstance(node, Recursive))
        assert recursive.max_length == 4

    def test_path_query_spec_wrapper(self) -> None:
        spec = PathQuerySpec(Selector(SelectorKind.ANY), Restrictor.SIMPLE, knows_scan())
        plan = translate_path_query(spec)
        recursive = next(node for node in plan.iter_subtree() if isinstance(node, Recursive))
        assert recursive.restrictor is Restrictor.SIMPLE


class TestAllCombinations:
    def test_28_combinations_enumerated(self) -> None:
        combos = all_selector_restrictor_combinations()
        assert len(combos) == 28
        selectors = {str(selector) for selector, _ in combos}
        restrictors = {restrictor for _, restrictor in combos}
        assert len(selectors) == 7
        assert len(restrictors) == 4

    @pytest.mark.parametrize("selector, restrictor", all_selector_restrictor_combinations())
    def test_every_combination_plans_and_evaluates(self, figure1, selector, restrictor) -> None:
        plan = translate_selector_restrictor(
            selector,
            restrictor,
            knows_scan(),
            already_recursive=False,
            max_length=4,  # keeps WALK finite on the cyclic Figure 1 graph
        )
        result = evaluate_to_paths(plan, figure1)
        assert len(result) > 0
        # Structure check: projection at the root, group-by somewhere below.
        assert isinstance(plan, Projection)
        assert any(isinstance(node, GroupBy) for node in plan.iter_subtree())

    @pytest.mark.parametrize(
        "selector",
        [
            Selector(SelectorKind.ALL),
            Selector(SelectorKind.ANY_SHORTEST),
            Selector(SelectorKind.ALL_SHORTEST),
            Selector(SelectorKind.ANY),
            Selector(SelectorKind.ANY_K, 2),
            Selector(SelectorKind.SHORTEST_K, 2),
            Selector(SelectorKind.SHORTEST_K_GROUP, 2),
        ],
    )
    def test_plan_evaluation_matches_direct_selector_application(
        self, figure1, knows_edges, selector
    ) -> None:
        """Evaluating the Table 7 plan equals applying the selector to ϕTrail's output."""
        plan = translate_selector_restrictor(
            selector, Restrictor.TRAIL, knows_scan(), already_recursive=False
        )
        via_plan = evaluate_to_paths(plan, figure1)
        trails = recursive_closure(knows_edges, Restrictor.TRAIL)
        via_sets = apply_selector(trails, selector)
        assert via_plan == via_sets


class TestBeyondGQLExpressions:
    def test_sample_trail_per_length_query(self, figure1) -> None:
        """The Section 6 expression not expressible in GQL: one sample trail per length."""
        plan = (
            knows_scan()
            .recursive(Restrictor.TRAIL)
            .group_by("L")
            .order_by("G")
            .project("*", "*", 1)
        )
        result = evaluate_to_paths(plan, figure1)
        lengths = sorted(path.len() for path in result)
        # Figure 1 trails over Knows have lengths 1..4; exactly one sample per length.
        assert lengths == [1, 2, 3, 4]
