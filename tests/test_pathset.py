"""Unit tests for PathSet: the carrier of the algebra."""

from __future__ import annotations

from repro.paths.path import Path
from repro.paths.pathset import PathSet


class TestAtoms:
    def test_nodes_of(self, figure1) -> None:
        nodes = PathSet.nodes_of(figure1)
        assert len(nodes) == 7
        assert all(path.len() == 0 for path in nodes)

    def test_edges_of(self, figure1) -> None:
        edges = PathSet.edges_of(figure1)
        assert len(edges) == 11
        assert all(path.len() == 1 for path in edges)

    def test_empty(self) -> None:
        assert len(PathSet.empty()) == 0
        assert not PathSet.empty()


class TestSetBehaviour:
    def test_duplicates_eliminated(self, figure1) -> None:
        p = Path.from_edge(figure1, "e1")
        paths = PathSet([p, p, Path(figure1, ["n1", "n2"], ["e1"])])
        assert len(paths) == 1

    def test_add_returns_whether_added(self, figure1) -> None:
        paths = PathSet()
        p = Path.from_edge(figure1, "e1")
        assert paths.add(p) is True
        assert paths.add(p) is False

    def test_update_counts_new_items(self, figure1) -> None:
        paths = PathSet([Path.from_edge(figure1, "e1")])
        added = paths.update([Path.from_edge(figure1, "e1"), Path.from_edge(figure1, "e2")])
        assert added == 1
        assert len(paths) == 2

    def test_iteration_preserves_insertion_order(self, figure1) -> None:
        p1 = Path.from_edge(figure1, "e2")
        p2 = Path.from_edge(figure1, "e1")
        paths = PathSet([p1, p2])
        assert paths.paths() == [p1, p2]

    def test_contains(self, figure1) -> None:
        p1 = Path.from_edge(figure1, "e1")
        paths = PathSet([p1])
        assert p1 in paths
        assert Path.from_edge(figure1, "e2") not in paths

    def test_equality_ignores_order(self, figure1) -> None:
        p1 = Path.from_edge(figure1, "e1")
        p2 = Path.from_edge(figure1, "e2")
        assert PathSet([p1, p2]) == PathSet([p2, p1])
        assert PathSet([p1]) != PathSet([p2])


class TestAlgebraOperations:
    def test_union(self, figure1) -> None:
        a = PathSet([Path.from_edge(figure1, "e1")])
        b = PathSet([Path.from_edge(figure1, "e1"), Path.from_edge(figure1, "e2")])
        union = a.union(b)
        assert len(union) == 2
        assert union == (a | b)

    def test_intersection_and_difference(self, figure1) -> None:
        a = PathSet([Path.from_edge(figure1, "e1"), Path.from_edge(figure1, "e2")])
        b = PathSet([Path.from_edge(figure1, "e2"), Path.from_edge(figure1, "e3")])
        assert (a & b).paths() == [Path.from_edge(figure1, "e2")]
        assert (a - b).paths() == [Path.from_edge(figure1, "e1")]

    def test_filter(self, figure1) -> None:
        edges = PathSet.edges_of(figure1)
        knows = edges.filter(lambda p: figure1.edge(p.edge(1)).label == "Knows")
        assert len(knows) == 4

    def test_join_concatenates_compatible_pairs(self, figure1) -> None:
        e1 = PathSet([Path.from_edge(figure1, "e1")])  # n1 -> n2
        e2 = PathSet([Path.from_edge(figure1, "e2")])  # n2 -> n3
        joined = e1.join(e2)
        assert len(joined) == 1
        assert joined.paths()[0].interleaved() == ("n1", "e1", "n2", "e2", "n3")

    def test_join_with_incompatible_pairs_is_empty(self, figure1) -> None:
        e1 = PathSet([Path.from_edge(figure1, "e1")])  # n1 -> n2
        e8 = PathSet([Path.from_edge(figure1, "e8")])  # n1 -> n6
        assert len(e1.join(e8)) == 0

    def test_join_with_nodes_is_identity_like(self, figure1) -> None:
        edges = PathSet.edges_of(figure1)
        nodes = PathSet.nodes_of(figure1)
        assert edges.join(nodes) == edges
        assert nodes.join(edges) == edges

    def test_join_is_not_commutative(self, figure1) -> None:
        knows = PathSet([Path.from_edge(figure1, "e1")])  # n1->n2
        likes = PathSet([Path.from_edge(figure1, "e5")])  # n2->n5
        assert len(knows.join(likes)) == 1
        assert len(likes.join(knows)) == 0


class TestQueries:
    def test_endpoints_and_lengths(self, figure1) -> None:
        paths = PathSet(
            [
                Path.from_node(figure1, "n1"),
                Path.from_edge(figure1, "e1"),
                Path.from_interleaved(figure1, ("n1", "e1", "n2", "e2", "n3")),
            ]
        )
        assert ("n1", "n3") in paths.endpoints()
        assert paths.lengths() == [0, 1, 2]
        assert paths.min_length() == 0
        assert paths.max_length() == 2

    def test_min_max_of_empty(self) -> None:
        assert PathSet().min_length() is None
        assert PathSet().max_length() is None

    def test_group_by_endpoints(self, figure1) -> None:
        paths = PathSet([Path.from_edge(figure1, "e4"), Path.from_edge(figure1, "e10")])
        groups = paths.group_by_endpoints()
        # e4: n2 -> n4, e10: n7 -> n4 — distinct endpoint pairs.
        assert len(groups) == 2

    def test_sorted_default_key(self, figure1) -> None:
        long_path = Path.from_interleaved(figure1, ("n1", "e1", "n2", "e2", "n3"))
        short_path = Path.from_node(figure1, "n4")
        paths = PathSet([long_path, short_path])
        assert paths.sorted() == [short_path, long_path]
