"""Tests for the Intersection and Difference operators (beyond-GQL extensions).

The paper notes that its algebra includes "several natural graph operators
missing from the two proposals"; path-set intersection and difference are the
canonical examples, since GQL cannot combine two path-query answer sets this
way while the algebra (being closed over sets of paths) can.
"""

from __future__ import annotations

import pytest

from repro.algebra.conditions import label_of_edge, length_equals, prop_of_first
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import (
    Difference,
    EdgesScan,
    GroupBy,
    Intersection,
    Recursive,
    Selection,
)
from repro.algebra.printer import to_algebra_notation, to_plan_tree
from repro.algebra.solution_space import GroupByKey
from repro.errors import EvaluationError
from repro.optimizer.cost import CostModel
from repro.optimizer.engine import optimize
from repro.semantics.restrictors import Restrictor


def knows_scan() -> Selection:
    return Selection(label_of_edge(1, "Knows"), EdgesScan())


def trails() -> Recursive:
    return Recursive(knows_scan(), Restrictor.TRAIL)


def acyclics() -> Recursive:
    return Recursive(knows_scan(), Restrictor.ACYCLIC)


class TestIntersection:
    def test_trail_intersect_acyclic_is_acyclic(self, figure1) -> None:
        plan = Intersection(trails(), acyclics())
        result = evaluate_to_paths(plan, figure1)
        assert result == evaluate_to_paths(acyclics(), figure1)

    def test_intersection_is_commutative(self, figure1) -> None:
        left = evaluate_to_paths(Intersection(trails(), acyclics()), figure1)
        right = evaluate_to_paths(Intersection(acyclics(), trails()), figure1)
        assert left == right

    def test_intersection_with_disjoint_sets_is_empty(self, figure1) -> None:
        likes = Selection(label_of_edge(1, "Likes"), EdgesScan())
        result = evaluate_to_paths(Intersection(knows_scan(), likes), figure1)
        assert len(result) == 0

    def test_fluent_builder(self, figure1) -> None:
        plan = trails().intersect(acyclics())
        assert isinstance(plan, Intersection)
        # The 7 acyclic Knows+ paths of Figure 1 are all trails.
        assert len(evaluate_to_paths(plan, figure1)) == 7

    def test_rejects_solution_space_input(self, figure1) -> None:
        plan = Intersection(GroupBy(knows_scan(), GroupByKey.ST), knows_scan())
        with pytest.raises(EvaluationError):
            evaluate_to_paths(plan, figure1)


class TestDifference:
    def test_trails_minus_acyclic_leaves_node_repeating_trails(self, figure1) -> None:
        plan = Difference(trails(), acyclics())
        result = evaluate_to_paths(plan, figure1)
        # 12 trails minus the 7 acyclic paths = 5 trails that revisit a node.
        assert len(result) == 5
        assert all(len(set(path.node_ids)) < len(path.node_ids) for path in result)

    def test_difference_with_self_is_empty(self, figure1) -> None:
        assert len(evaluate_to_paths(Difference(trails(), trails()), figure1)) == 0

    def test_difference_is_not_commutative(self, figure1) -> None:
        forward = evaluate_to_paths(Difference(trails(), acyclics()), figure1)
        backward = evaluate_to_paths(Difference(acyclics(), trails()), figure1)
        assert forward != backward
        assert len(backward) == 0

    def test_fluent_builder_and_selection_on_top(self, figure1) -> None:
        plan = Selection(length_equals(2), trails().difference(acyclics()))
        result = evaluate_to_paths(plan, figure1)
        assert all(path.len() == 2 for path in result)

    def test_combination_answers_beyond_gql_question(self, figure1) -> None:
        """'Knows-trails from Moe that are not acyclic' — not expressible in GQL directly."""
        plan = Selection(prop_of_first("name", "Moe"), Difference(trails(), acyclics()))
        result = evaluate_to_paths(plan, figure1)
        assert {path.interleaved() for path in result} == {
            ("n1", "e1", "n2", "e2", "n3", "e3", "n2"),
            ("n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4"),
        }


class TestPlanMachinery:
    def test_notation(self) -> None:
        plan = Intersection(knows_scan(), Difference(EdgesScan(), knows_scan()))
        text = to_algebra_notation(plan)
        assert "∩" in text
        assert "∖" in text

    def test_plan_tree_descriptions(self) -> None:
        tree = to_plan_tree(Difference(knows_scan(), EdgesScan()))
        assert "Difference" in tree
        tree = to_plan_tree(Intersection(knows_scan(), EdgesScan()))
        assert "Intersection" in tree

    def test_optimizer_traverses_new_operators(self, figure1) -> None:
        inner = Selection(prop_of_first("name", "Moe"), Selection(label_of_edge(1, "Knows"), EdgesScan()))
        plan = Intersection(inner, EdgesScan())
        result = optimize(plan)
        # The nested selections below the intersection are merged.
        assert "merge-selections" in result.applied_rules
        assert evaluate_to_paths(plan, figure1) == evaluate_to_paths(result.optimized, figure1)

    def test_cost_model_estimates(self, figure1) -> None:
        model = CostModel(figure1)
        intersection = model.estimate(Intersection(knows_scan(), EdgesScan()))
        difference = model.estimate(Difference(EdgesScan(), knows_scan()))
        assert intersection.output_cardinality <= 4
        assert difference.output_cardinality >= 11 - 4
        assert intersection.total_cost > 0
        assert difference.total_cost > 0

    def test_structural_equality(self) -> None:
        assert Intersection(knows_scan(), EdgesScan()) == Intersection(knows_scan(), EdgesScan())
        assert Difference(knows_scan(), EdgesScan()) != Difference(EdgesScan(), knows_scan())
