"""Differential testing: every evaluation route must agree on random RPQs.

The system has four independently implemented ways to answer a regular path
query — the materializing algebra evaluator, the pull-based pipeline, the
traversal baseline (DFS + NFA simulation) and the automaton baseline
(product-graph BFS).  This suite generates seeded random regexes over the
shared 50-graph corpus (two-label variant) and locks down their agreement:

* **executor parity** holds for *arbitrary* regexes under every restrictor:
  both executors realize the same compositional semantics, so they must
  agree path-for-path;
* **traversal parity** holds exactly where whole-path restrictor semantics
  coincide with the algebra's per-ϕ semantics: single-label closures
  (the plan is one ϕ) and non-recursive regexes (no ϕ at all — under WALK
  directly, and under the other restrictors via post-filtering with the
  path predicates);
* the **automaton baseline** answers the endpoint-pair question for
  unbounded walks; bounded-walk results must be consistent with its pairs
  and shortest distances.

Seeds are fixed, so failures reproduce; bump ``REGEXES_PER_GRAPH`` locally
for a deeper sweep.
"""

from __future__ import annotations

import random

import pytest

from graph_corpus import closure_corpus
from repro.errors import BudgetExceeded
from repro.execution import QueryBudget
from repro.baselines.automaton_eval import evaluate_rpq_pairs
from repro.baselines.traversal import TraversalOptions, evaluate_rpq_traversal
from repro.engine.engine import PathQueryEngine
from repro.graph.model import PropertyGraph
from repro.paths.predicates import is_acyclic, is_simple, is_trail
from repro.semantics.restrictors import Restrictor

LABELS = ("Knows", "Likes")
CORPUS: list[PropertyGraph] = closure_corpus(labels=LABELS)

#: Per-ϕ bound used for WALK/SHORTEST sweeps (keeps cyclic corpora finite).
BOUND = 3
REGEXES_PER_GRAPH = 3

ALL_RESTRICTORS = (
    Restrictor.TRAIL,
    Restrictor.ACYCLIC,
    Restrictor.SIMPLE,
    Restrictor.WALK,
    Restrictor.SHORTEST,
)

#: Whole-path filters matching each restrictor, for the post-filter parity.
RESTRICTOR_PREDICATES = {
    Restrictor.TRAIL: is_trail,
    Restrictor.ACYCLIC: is_acyclic,
    Restrictor.SIMPLE: is_simple,
}


def _random_regex(rng: random.Random, depth: int) -> str:
    """An arbitrary random regex: labels, concat, union, plus, star."""
    if depth == 0 or rng.random() < 0.3:
        return rng.choice(LABELS)
    op = rng.choice(("concat", "concat", "union", "plus", "star"))
    if op == "concat":
        return f"{_random_regex(rng, depth - 1)}/{_random_regex(rng, depth - 1)}"
    if op == "union":
        return f"({_random_regex(rng, depth - 1)}|{_random_regex(rng, depth - 1)})"
    if op == "plus":
        return f"({_random_regex(rng, depth - 1)})+"
    return f"({_random_regex(rng, depth - 1)})*"


def _random_nonrecursive_regex(rng: random.Random, depth: int) -> str:
    """A random regex without closures (concatenation and union only)."""
    if depth == 0 or rng.random() < 0.3:
        return rng.choice(LABELS)
    if rng.random() < 0.6:
        return (
            f"{_random_nonrecursive_regex(rng, depth - 1)}"
            f"/{_random_nonrecursive_regex(rng, depth - 1)}"
        )
    return (
        f"({_random_nonrecursive_regex(rng, depth - 1)}"
        f"|{_random_nonrecursive_regex(rng, depth - 1)})"
    )


def _seeded_regexes(index: int, generator, depth: int = 2) -> list[str]:
    rng = random.Random(1000 + index)
    return [generator(rng, depth) for _ in range(REGEXES_PER_GRAPH)]


GRAPH_IDS = [graph.name for graph in CORPUS]


@pytest.mark.parametrize("index", range(len(CORPUS)), ids=GRAPH_IDS)
def test_executors_agree_on_random_regexes(index: int) -> None:
    """All three executors agree path-for-path on arbitrary regexes.

    The automaton executor evaluates its native shapes on the product graph
    and falls back to the materializing evaluator elsewhere, so the random
    sweep exercises both routes against the compositional semantics.
    """
    graph = CORPUS[index]
    engine = PathQueryEngine(graph)
    for regex in _seeded_regexes(index, _random_regex):
        for restrictor in ALL_RESTRICTORS:
            materialized = engine.execute_regex(
                regex, restrictor=restrictor, max_length=BOUND, executor="materialize"
            )
            pipelined = engine.execute_regex(
                regex, restrictor=restrictor, max_length=BOUND, executor="pipeline"
            )
            assert materialized == pipelined, (graph.name, regex, restrictor)
            product = engine.execute_regex(
                regex, restrictor=restrictor, max_length=BOUND, executor="automaton"
            )
            assert materialized == product, (graph.name, regex, restrictor)


@pytest.mark.parametrize("index", range(len(CORPUS)), ids=GRAPH_IDS)
def test_executors_agree_on_frozen_graphs(index: int) -> None:
    """Three-way parity holds on frozen (CompactGraph-backed) twins too.

    ϕShortest routes through the int-encoded CSR product search there; the
    other restrictors stay on the object route.  Both must match the
    compositional result byte-for-byte.
    """
    graph = CORPUS[index].copy()
    graph.freeze()
    engine = PathQueryEngine(graph)
    for regex in _seeded_regexes(index, _random_regex)[:1]:
        for restrictor in ALL_RESTRICTORS:
            materialized = engine.execute_regex(
                regex, restrictor=restrictor, max_length=BOUND, executor="materialize"
            )
            product = engine.execute_regex(
                regex, restrictor=restrictor, max_length=BOUND, executor="automaton"
            )
            assert materialized == product, (graph.name, regex, restrictor)


@pytest.mark.parametrize("index", range(0, len(CORPUS), 5), ids=GRAPH_IDS[::5])
def test_executors_agree_on_budget_kills(index: int) -> None:
    """A mid-closure budget kill is typed and carries progress on all routes.

    Partial progress legitimately differs between evaluation strategies, so
    the parity claim here is about the *failure shape*: every executor must
    raise :class:`BudgetExceeded` with the visited-cap reason and non-trivial
    partial-progress counters — never a wrong answer or a hang.
    """
    graph = CORPUS[index]
    engine = PathQueryEngine(graph)
    for executor in ("materialize", "pipeline", "automaton"):
        budget = QueryBudget.from_timeout(3600.0, max_visited=1)
        with pytest.raises(BudgetExceeded) as excinfo:
            engine.execute_regex(
                "(Knows|Likes)+",
                restrictor=Restrictor.SHORTEST,
                max_length=BOUND,
                executor=executor,
                budget=budget,
            )
        error = excinfo.value
        assert error.reason == "max_visited", (graph.name, executor)
        assert error.paths_visited >= 1, (graph.name, executor)
        assert error.stopped_at, (graph.name, executor)


@pytest.mark.parametrize("index", range(len(CORPUS)), ids=GRAPH_IDS)
def test_traversal_agrees_on_single_label_closures(index: int) -> None:
    """On one-ϕ plans, whole-path and per-ϕ restrictor semantics coincide."""
    graph = CORPUS[index]
    engine = PathQueryEngine(graph)
    for restrictor in ALL_RESTRICTORS:
        bound = BOUND if restrictor in (Restrictor.WALK, Restrictor.SHORTEST) else None
        for executor in ("materialize", "pipeline"):
            algebra = engine.execute_regex(
                "Knows+", restrictor=restrictor, max_length=bound, executor=executor
            )
            baseline = evaluate_rpq_traversal(
                graph, "Knows+", TraversalOptions(restrictor=restrictor, max_length=bound)
            )
            assert algebra == baseline, (graph.name, restrictor, executor)
    star_algebra = engine.execute_regex("Knows*", restrictor=Restrictor.TRAIL)
    star_baseline = evaluate_rpq_traversal(
        graph, "Knows*", TraversalOptions(restrictor=Restrictor.TRAIL)
    )
    assert star_algebra == star_baseline, graph.name


@pytest.mark.parametrize("index", range(len(CORPUS)), ids=GRAPH_IDS)
def test_traversal_agrees_on_nonrecursive_regexes(index: int) -> None:
    """Without ϕ nodes the algebra produces all matching walks.

    The traversal baseline under WALK must agree exactly; under the
    edge/node-repetition restrictors the baseline prunes *whole* paths, which
    on a ϕ-free plan equals post-filtering the walks with the corresponding
    path predicate.
    """
    graph = CORPUS[index]
    engine = PathQueryEngine(graph)
    # Non-recursive regexes of depth 2 concatenate at most 4 labels.
    walk_bound = 8
    for regex in _seeded_regexes(index, _random_nonrecursive_regex):
        walks = engine.execute_regex(regex, restrictor=Restrictor.WALK, max_length=walk_bound)
        baseline_walks = evaluate_rpq_traversal(
            graph, regex, TraversalOptions(restrictor=Restrictor.WALK, max_length=walk_bound)
        )
        assert walks == baseline_walks, (graph.name, regex)
        for restrictor, predicate in RESTRICTOR_PREDICATES.items():
            filtered = walks.filter(predicate)
            baseline = evaluate_rpq_traversal(
                graph, regex, TraversalOptions(restrictor=restrictor)
            )
            assert filtered == baseline, (graph.name, regex, restrictor)


@pytest.mark.parametrize("index", range(len(CORPUS)), ids=GRAPH_IDS)
def test_automaton_pairs_consistent_with_bounded_walks(index: int) -> None:
    """The product-graph BFS and the bounded-walk evaluation cross-check.

    ``evaluate_rpq_pairs`` answers over *unbounded* walks, so (a) every
    endpoint pair the algebra produces must be a known pair, and (b) every
    pair whose shortest matching walk fits the bound must be produced, with
    matching minimal length: a walk of total length <= BOUND keeps every ϕ
    segment within the per-ϕ bound, so the compositional evaluation cannot
    miss it.
    """
    graph = CORPUS[index]
    engine = PathQueryEngine(graph)
    for regex in _seeded_regexes(index, _random_regex):
        walks = engine.execute_regex(regex, restrictor=Restrictor.WALK, max_length=BOUND)
        product = evaluate_rpq_pairs(graph, regex)
        endpoints = walks.endpoints()
        assert endpoints <= product.pairs, (graph.name, regex)
        min_lengths: dict[tuple[str, str], int] = {}
        for path in walks:
            pair = path.endpoints()
            length = path.len()
            if pair not in min_lengths or length < min_lengths[pair]:
                min_lengths[pair] = length
        for pair, distance in product.distances.items():
            if distance <= BOUND:
                assert pair in min_lengths, (graph.name, regex, pair)
                assert min_lengths[pair] == distance, (graph.name, regex, pair)
