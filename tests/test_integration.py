"""End-to-end integration tests across the whole pipeline.

These tests cross module boundaries on purpose: GQL text through the parser,
planner, optimizer, logical evaluator, physical pipeline and baselines, on
the Figure 1 graph and on generated data sets, checking that every layer
agrees with the others.
"""

from __future__ import annotations

import pytest

from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.printer import to_algebra_notation
from repro.baselines.automaton_eval import evaluate_rpq_pairs
from repro.baselines.traversal import TraversalOptions, evaluate_rpq_traversal
from repro.datasets.generators import grid_graph, layered_graph, random_graph
from repro.datasets.ldbc import LDBCParameters, ldbc_like_graph
from repro.engine.engine import PathQueryEngine
from repro.engine.physical import execute_pipeline
from repro.engine.results import bind_paths
from repro.gql.planner import plan_text
from repro.optimizer.engine import optimize
from repro.rpq.automaton import build_nfa
from repro.rpq.compile import CompileOptions, compile_regex
from repro.semantics.restrictors import Restrictor


class TestFrontEndToResults:
    @pytest.mark.parametrize(
        "query",
        [
            "MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->+(?y)",
            "MATCH ALL SHORTEST ACYCLIC p = (?x)-[:Knows]->+(?y)",
            "MATCH ALL ACYCLIC p = (?x)-[(Likes/Has_creator)+]->(?y)",
            "MATCH SHORTEST 2 TRAIL p = (?x)-[:Knows]->+(?y)",
            'MATCH ALL TRAIL p = (?x)-[Knows+]->(?y) WHERE x.name = "Moe"',
            "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[(:Knows)*]->(?y) "
            "GROUP BY SOURCE TARGET ORDER BY PATH",
        ],
    )
    def test_logical_physical_and_optimized_agree(self, figure1, query) -> None:
        plan = plan_text(query)
        optimized = optimize(plan).optimized
        logical = evaluate_to_paths(plan, figure1)
        logical_optimized = evaluate_to_paths(optimized, figure1)
        physical = execute_pipeline(optimized, figure1)
        assert logical == logical_optimized == physical

    def test_engine_results_consumable_as_bindings(self, figure1) -> None:
        engine = PathQueryEngine(figure1)
        result = engine.query("MATCH ALL TRAIL p = (?x)-[:Knows]->+(?y)")
        table = bind_paths(result.paths)
        assert len(table) == len(result)
        moe_rows = table.filter(lambda row: row.source_property("name") == "Moe")
        assert {row.target_property("name") for row in moe_rows} == {"Lisa", "Bart", "Apu"}


class TestAgainstBaselinesOnGeneratedGraphs:
    #: Length bound shared by the algebra plan and the traversal baseline so
    #: the acyclic-path enumeration stays small on the denser random graphs.
    BOUND = 4

    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: random_graph(25, 45, seed=3),
            lambda: grid_graph(3, 3),
            lambda: layered_graph(4, 3, seed=5),
            lambda: ldbc_like_graph(LDBCParameters(num_persons=15, num_messages=25, seed=6)),
        ],
        ids=["random", "grid", "layered", "ldbc-like"],
    )
    @pytest.mark.parametrize("regex", ["Knows+", "(Knows/Knows)+", "(Knows|Likes)+"])
    def test_algebra_agrees_with_traversal_baseline(self, graph_factory, regex) -> None:
        graph = graph_factory()
        plan = compile_regex(
            regex, CompileOptions(restrictor=Restrictor.ACYCLIC, max_length=self.BOUND)
        )
        algebra_paths = evaluate_to_paths(plan, graph)
        baseline_paths = evaluate_rpq_traversal(
            graph,
            regex,
            TraversalOptions(restrictor=Restrictor.ACYCLIC, max_length=self.BOUND),
        )
        assert algebra_paths == baseline_paths

    def test_shortest_pipeline_agrees_with_product_bfs_distances(self) -> None:
        graph = random_graph(30, 70, labels=("Knows",), seed=9)
        engine = PathQueryEngine(graph)
        result = engine.query("MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y)")
        distances = evaluate_rpq_pairs(graph, "Knows+").distances
        assert {p.endpoints() for p in result.paths} == set(distances)
        for path in result.paths:
            assert path.len() == distances[path.endpoints()]

    def test_result_label_words_match_the_regex(self) -> None:
        graph = ldbc_like_graph(LDBCParameters(num_persons=20, num_messages=30, seed=11))
        regex = "(Likes/Has_creator)+|Knows"
        nfa = build_nfa(regex)
        plan = compile_regex(regex, CompileOptions(restrictor=Restrictor.TRAIL, max_length=6))
        for path in evaluate_to_paths(plan, graph):
            assert nfa.accepts(path.label_sequence())


class TestOptimizerEndToEnd:
    def test_walk_to_shortest_makes_unbounded_query_terminate(self) -> None:
        graph = random_graph(30, 90, labels=("Knows",), seed=2)  # cyclic with high probability
        engine_with = PathQueryEngine(graph, optimize=True)
        result = engine_with.query("MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y)")
        assert len(result) > 0
        assert "walk-to-shortest" in result.applied_rules

    def test_pushdown_visible_in_explain_and_harmless_to_results(self, figure1) -> None:
        engine = PathQueryEngine(figure1)
        text = 'MATCH ALL TRAIL p = (?x)-[Knows/Knows]->(?y) WHERE x.name = "Moe"'
        explanation = engine.explain(text)
        assert "push-selection" in " ".join(explanation.applied_rules)
        assert "σ" in to_algebra_notation(explanation.optimized_plan)
        unopt = PathQueryEngine(figure1, optimize=False).query(text)
        assert engine.query(text).paths == unopt.paths


class TestRoundTripsAcrossStorage:
    def test_query_results_survive_graph_serialization(self, tmp_path, figure1) -> None:
        from repro.graph.io import load_json, save_json

        path = tmp_path / "figure1.json"
        save_json(figure1, path)
        reloaded = load_json(path)
        query = "MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->+(?y)"
        original = {p.interleaved() for p in PathQueryEngine(figure1).query(query).paths}
        roundtrip = {p.interleaved() for p in PathQueryEngine(reloaded).query(query).paths}
        assert original == roundtrip
