"""Tests for the walk/trail/acyclic/simple path predicates (Section 2.2, Table 2)."""

from __future__ import annotations

import pytest

from repro.paths.path import Path
from repro.paths.predicates import (
    has_repeated_edges,
    has_repeated_nodes,
    is_acyclic,
    is_cycle,
    is_simple,
    is_trail,
    is_walk,
    satisfies_restrictor_name,
)


@pytest.fixture
def paths(figure1):
    """Named paths from Table 3 of the paper."""
    make = lambda seq: Path.from_interleaved(figure1, seq)
    return {
        # p1 .. p6 of Table 3 (Knows+ paths starting at n1).
        "p1": make(("n1", "e1", "n2")),
        "p2": make(("n1", "e1", "n2", "e2", "n3", "e3", "n2")),
        "p3": make(("n1", "e1", "n2", "e2", "n3")),
        "p4": make(("n1", "e1", "n2", "e2", "n3", "e3", "n2", "e2", "n3")),
        "p5": make(("n1", "e1", "n2", "e4", "n4")),
        "p7": make(("n2", "e2", "n3", "e3", "n2")),
        "zero": Path.from_node(figure1, "n1"),
    }


class TestWalk:
    def test_every_path_is_a_walk(self, paths) -> None:
        assert all(is_walk(path) for path in paths.values())


class TestTrail:
    def test_single_edge_is_trail(self, paths) -> None:
        assert is_trail(paths["p1"])

    def test_table3_trail_examples(self, paths) -> None:
        # p2 visits n2 twice but repeats no edge: it is a trail.
        assert is_trail(paths["p2"])
        # p4 repeats edge e2: not a trail.
        assert not is_trail(paths["p4"])

    def test_repeated_edges_helper(self, paths) -> None:
        assert has_repeated_edges(paths["p4"])
        assert not has_repeated_edges(paths["p3"])


class TestAcyclic:
    def test_acyclic_examples(self, paths) -> None:
        assert is_acyclic(paths["p1"])
        assert is_acyclic(paths["p3"])
        assert is_acyclic(paths["p5"])

    def test_repeated_node_is_not_acyclic(self, paths) -> None:
        assert not is_acyclic(paths["p2"])
        assert not is_acyclic(paths["p7"])

    def test_repeated_nodes_helper(self, paths) -> None:
        assert has_repeated_nodes(paths["p2"])
        assert not has_repeated_nodes(paths["p5"])

    def test_zero_length_is_acyclic(self, paths) -> None:
        assert is_acyclic(paths["zero"])


class TestSimple:
    def test_acyclic_paths_are_simple(self, paths) -> None:
        assert is_simple(paths["p1"])
        assert is_simple(paths["p5"])

    def test_closed_cycle_is_simple(self, paths) -> None:
        # p7 = (n2, e2, n3, e3, n2): first == last, interior nodes distinct.
        assert is_simple(paths["p7"])
        assert is_cycle(paths["p7"])

    def test_interior_repetition_is_not_simple(self, paths) -> None:
        # p2 revisits n2 in the middle, not only at the endpoints.
        assert not is_simple(paths["p2"])
        assert not is_simple(paths["p4"])

    def test_zero_length_path_is_simple_but_not_cycle(self, paths) -> None:
        assert is_simple(paths["zero"])
        assert not is_cycle(paths["zero"])


class TestRestrictorNameDispatch:
    def test_names_case_insensitive(self, paths) -> None:
        assert satisfies_restrictor_name(paths["p2"], "trail")
        assert not satisfies_restrictor_name(paths["p2"], "ACYCLIC")
        assert satisfies_restrictor_name(paths["p7"], "Simple")
        assert satisfies_restrictor_name(paths["p4"], "WALK")

    def test_shortest_is_accepted_at_path_level(self, paths) -> None:
        assert satisfies_restrictor_name(paths["p4"], "SHORTEST")

    def test_unknown_restrictor(self, paths) -> None:
        with pytest.raises(ValueError):
            satisfies_restrictor_name(paths["p1"], "ZIGZAG")
