"""Tests for the pluggable execution layer: parity, selection, plan cache.

The parity suite runs the seeded 50-graph corpus (shared with
``test_closure_equivalence``) through the engine facade with both executors
and asserts identical :class:`~repro.paths.pathset.PathSet` results and sane
unified statistics — the logical/physical-equivalence property, this time at
the engine level rather than per operator.
"""

from __future__ import annotations

import pytest

from graph_corpus import closure_corpus
from repro.algebra.expressions import EdgesScan, Join, Recursive, Selection
from repro.algebra.conditions import label_of_edge
from repro.datasets.figure1 import figure1_graph
from repro.engine.engine import PHASES, PathQueryEngine
from repro.engine.executor import (
    MaterializeExecutor,
    PipelineExecutor,
    choose_executor,
    resolve_executor,
)
from repro.graph.model import PropertyGraph
from repro.optimizer.cost import CostModel
from repro.semantics.restrictors import Restrictor

CORPUS: list[PropertyGraph] = closure_corpus()

#: Facade queries covering streaming plans, every-restrictor recursion and
#: the selector pipelines; the bound keeps the corpus sweep fast.
PARITY_QUERIES = (
    "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)",
    "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)",
    "MATCH ALL ACYCLIC p = (?x)-[Knows*]->(?y)",
    "MATCH ALL SHORTEST SIMPLE p = (?x)-[Knows+]->(?y)",
    "MATCH ALL WALK p = (?x)-[Knows+]->(?y)",
)
PARITY_BOUND = 4


@pytest.fixture
def figure1() -> PropertyGraph:
    return figure1_graph()


class TestExecutorParity:
    @pytest.mark.parametrize("graph", CORPUS, ids=lambda graph: graph.name)
    def test_both_executors_agree_on_corpus(self, graph: PropertyGraph) -> None:
        engine = PathQueryEngine(graph, default_max_length=PARITY_BOUND)
        for text in PARITY_QUERIES:
            materialized = engine.query(text, max_length=PARITY_BOUND, executor="materialize")
            pipelined = engine.query(text, max_length=PARITY_BOUND, executor="pipeline")
            assert materialized.paths == pipelined.paths, (graph.name, text)
            assert materialized.statistics.executor == "materialize"
            assert pipelined.statistics.executor == "pipeline"
            assert materialized.statistics.intermediate_paths >= len(materialized.paths)
            assert pipelined.statistics.intermediate_paths >= len(pipelined.paths)
            assert pipelined.statistics.operators > 0

    @pytest.mark.parametrize("graph", CORPUS[:10], ids=lambda graph: graph.name)
    def test_execute_regex_parity(self, graph: PropertyGraph) -> None:
        engine = PathQueryEngine(graph)
        for restrictor in (Restrictor.TRAIL, Restrictor.ACYCLIC, Restrictor.SIMPLE):
            materialized = engine.execute_regex(
                "Knows+", restrictor=restrictor, max_length=PARITY_BOUND, executor="materialize"
            )
            pipelined = engine.execute_regex(
                "Knows+", restrictor=restrictor, max_length=PARITY_BOUND, executor="pipeline"
            )
            assert materialized == pipelined, (graph.name, restrictor)


class TestAutoSelection:
    def test_auto_picks_pipeline_for_streaming_plan(self, figure1) -> None:
        engine = PathQueryEngine(figure1)
        result = engine.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert result.executor == "pipeline"

    def test_auto_picks_materialize_for_recursive_plan(self, figure1) -> None:
        engine = PathQueryEngine(figure1, default_max_length=6)
        result = engine.query("MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)")
        assert result.executor == "materialize"

    def test_choose_executor_uses_recursive_cost_fraction(self, figure1) -> None:
        cost_model = CostModel(figure1)
        knows = Selection(label_of_edge(1, "Knows"), EdgesScan())
        assert choose_executor(Join(knows, knows), cost_model) == "pipeline"
        assert choose_executor(Recursive(knows, Restrictor.TRAIL), cost_model) == "materialize"

    def test_recursive_cost_fraction_bounds(self, figure1) -> None:
        cost_model = CostModel(figure1)
        knows = Selection(label_of_edge(1, "Knows"), EdgesScan())
        assert cost_model.recursive_cost_fraction(knows) == 0.0
        fraction = cost_model.recursive_cost_fraction(Recursive(knows, Restrictor.TRAIL))
        assert 0.5 < fraction <= 1.0

    def test_explain_reports_chosen_executor(self, figure1) -> None:
        engine = PathQueryEngine(figure1)
        explanation = engine.explain("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert explanation.chosen_executor == "pipeline"
        assert "Executor (auto): pipeline" in explanation.render()

    def test_explain_respects_fixed_executor(self, figure1) -> None:
        engine = PathQueryEngine(figure1, executor="materialize")
        explanation = engine.explain("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert explanation.chosen_executor == "materialize"
        assert "Executor: materialize" in explanation.render()

    def test_engine_rejects_unknown_executor(self, figure1) -> None:
        with pytest.raises(ValueError):
            PathQueryEngine(figure1, executor="vectorized")
        with pytest.raises(ValueError, match="unknown executor"):
            PathQueryEngine(figure1).query(
                "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)", executor="materialise"
            )
        with pytest.raises(ValueError):
            resolve_executor("auto")  # auto must be resolved before this layer

    def test_engine_default_executor_knob(self, figure1) -> None:
        engine = PathQueryEngine(figure1, executor="materialize")
        result = engine.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert result.executor == "materialize"


class TestLimitPushdown:
    def test_pipeline_limit_stops_pulling(self, figure1) -> None:
        engine = PathQueryEngine(figure1)
        knows = Selection(label_of_edge(1, "Knows"), EdgesScan())
        full = engine.query_plan(Join(knows, knows), executor="pipeline")
        limited = engine.query_plan(Join(knows, knows), executor="pipeline", limit=1)
        assert len(limited) == 1
        assert limited.truncated
        assert limited.total_paths is None
        # Early termination: fewer paths crossed operator boundaries.
        assert limited.statistics.total_rows() < full.statistics.total_rows()

    def test_materialize_limit_truncates_but_reports_total(self, figure1) -> None:
        engine = PathQueryEngine(figure1, default_max_length=6)
        result = engine.query(
            "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)", executor="materialize", limit=2
        )
        assert len(result) == 2
        assert result.truncated
        assert result.total_paths == 12
        # Materialize truncation is deterministic: the smallest paths survive.
        full = engine.query("MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)", executor="materialize")
        assert result.paths.sorted() == full.paths.sorted()[:2]

    def test_limit_larger_than_result_is_not_truncated(self, figure1) -> None:
        engine = PathQueryEngine(figure1)
        result = engine.query(
            "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)", executor="pipeline", limit=100
        )
        assert len(result) == 4
        assert not result.truncated
        assert result.total_paths == 4

    def test_limit_equal_to_result_is_not_truncated(self, figure1) -> None:
        # The pipeline probes one path beyond the limit, so an exactly-full
        # result is correctly reported as complete.
        engine = PathQueryEngine(figure1)
        result = engine.query(
            "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)", executor="pipeline", limit=4
        )
        assert len(result) == 4
        assert not result.truncated
        assert result.total_paths == 4

    def test_limit_zero_returns_no_paths(self, figure1) -> None:
        engine = PathQueryEngine(figure1)
        for executor in ("materialize", "pipeline"):
            result = engine.query(
                "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)", executor=executor, limit=0
            )
            assert len(result) == 0, executor
            assert result.truncated, executor

    def test_execute_regex_limit(self, figure1) -> None:
        engine = PathQueryEngine(figure1)
        paths = engine.execute_regex("Knows/Knows", executor="pipeline", limit=2)
        assert len(paths) == 2


class TestPlanCache:
    TEXT = "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"

    def test_cache_hit_skips_parse_plan_optimize(self, figure1, monkeypatch) -> None:
        engine = PathQueryEngine(figure1)
        first = engine.query(self.TEXT)
        assert not first.cache_hit
        assert engine.plan_cache.misses == 1

        def boom(plan):
            raise AssertionError("optimizer must not re-run on a plan-cache hit")

        monkeypatch.setattr(engine._optimizer, "optimize", boom)
        second = engine.query(self.TEXT)
        assert second.cache_hit
        assert engine.plan_cache.hits == 1
        assert second.paths == first.paths
        assert second.phase_seconds["parse"] == 0.0
        assert second.phase_seconds["plan"] == 0.0
        assert second.phase_seconds["optimize"] == 0.0
        assert second.phase_seconds["execute"] > 0.0

    def test_cache_hit_skips_auto_selection_too(self, figure1, monkeypatch) -> None:
        engine = PathQueryEngine(figure1)
        first = engine.query(self.TEXT)

        def boom(plan):
            raise AssertionError("auto selection must be memoized with the cached plan")

        monkeypatch.setattr(engine, "select_executor", boom)
        second = engine.query(self.TEXT)
        assert second.cache_hit
        assert second.executor == first.executor

    def test_mutation_invalidates_cache_in_version_mode(self, figure1) -> None:
        engine = PathQueryEngine(figure1, invalidation="version")
        first = engine.query(self.TEXT)
        figure1.add_node("n99", "Person")
        second = engine.query(self.TEXT)
        assert not second.cache_hit
        assert second.paths == first.paths

    def test_mutation_reuses_plan_under_delta_invalidation(self, figure1) -> None:
        # Plans are pure functions of text + options, so the default delta
        # mode keeps serving the cached plan across version bumps — the
        # results must still reflect the mutated graph.
        engine = PathQueryEngine(figure1)
        first = engine.query(self.TEXT)
        figure1.add_node("n99", "Person")
        second = engine.query(self.TEXT)
        assert second.cache_hit
        assert second.paths == first.paths
        figure1.add_edge("e99", "n99", "n1", "Knows")
        third = engine.query(self.TEXT)
        assert third.cache_hit
        assert third.paths != first.paths

    def test_distinct_options_get_distinct_entries(self, figure1) -> None:
        engine = PathQueryEngine(figure1, default_max_length=6)
        engine.query("MATCH ALL WALK p = (?x)-[Knows+]->(?y)")
        engine.query("MATCH ALL WALK p = (?x)-[Knows+]->(?y)", max_length=2)
        assert len(engine.plan_cache) == 2
        assert engine.plan_cache.hits == 0

    def test_lru_eviction(self, figure1) -> None:
        engine = PathQueryEngine(figure1, plan_cache_size=2)
        engine.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        engine.query("MATCH ALL TRAIL p = (?x)-[Likes]->(?y)")
        engine.query("MATCH ALL TRAIL p = (?x)-[Follows]->(?y)")
        assert len(engine.plan_cache) == 2
        # The first entry was least recently used and is gone again.
        result = engine.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert not result.cache_hit

    def test_cache_can_be_disabled(self, figure1) -> None:
        engine = PathQueryEngine(figure1, plan_cache_size=0)
        engine.query(self.TEXT)
        engine.query(self.TEXT)
        assert len(engine.plan_cache) == 0
        assert engine.plan_cache.hits == 0

    def test_regex_plans_are_cached_too(self, figure1) -> None:
        engine = PathQueryEngine(figure1)
        engine.execute_regex("Knows/Knows")
        engine.execute_regex("Knows/Knows")
        assert engine.plan_cache.hits == 1


class TestPhaseTimings:
    def test_query_reports_all_phases(self, figure1) -> None:
        engine = PathQueryEngine(figure1)
        result = engine.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert tuple(result.phase_seconds) == PHASES
        assert result.phase_seconds["parse"] > 0.0
        assert result.phase_seconds["execute"] > 0.0
        # elapsed_seconds covers every phase (the pre-refactor timer started
        # only inside query_plan and missed parse + plan).
        assert result.elapsed_seconds >= sum(result.phase_seconds.values()) * 0.5
        assert result.elapsed_seconds >= result.phase_seconds["execute"]

    def test_query_plan_has_no_parse_phase(self, figure1) -> None:
        engine = PathQueryEngine(figure1)
        knows = Selection(label_of_edge(1, "Knows"), EdgesScan())
        result = engine.query_plan(knows)
        assert result.phase_seconds["parse"] == 0.0
        assert result.phase_seconds["plan"] == 0.0
        assert result.phase_seconds["execute"] > 0.0


class TestUnifiedStatistics:
    def test_materialize_statistics_shape(self, figure1) -> None:
        result = PathQueryEngine(figure1, default_max_length=6).query(
            "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)", executor="materialize"
        )
        stats = result.statistics
        assert stats.executor == "materialize"
        assert stats.total_calls() > 0
        assert stats.operators == 0  # no physical operators were instantiated
        assert stats.intermediate_paths >= len(result.paths)

    def test_pipeline_statistics_shape(self, figure1) -> None:
        result = PathQueryEngine(figure1).query(
            "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)", executor="pipeline"
        )
        stats = result.statistics
        assert stats.executor == "pipeline"
        assert stats.operators > 0
        assert stats.total_rows() == stats.intermediate_paths
        assert stats.rows_produced is stats.operator_output_sizes

    def test_executor_instances_are_addressable(self, figure1) -> None:
        knows = Selection(label_of_edge(1, "Knows"), EdgesScan())
        for executor in (MaterializeExecutor(), PipelineExecutor()):
            outcome = executor.execute(knows, figure1)
            assert len(outcome.paths) == 4
            assert outcome.statistics.executor == executor.name
            assert outcome.total_paths == 4
