"""Tests for the example graphs and synthetic generators."""

from __future__ import annotations

import pytest

from repro.datasets.figure1 import FIGURE1_EDGE_LABELS, FIGURE1_NODE_NAMES, figure1_graph
from repro.datasets.generators import (
    binary_tree_graph,
    chain_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    layered_graph,
    random_graph,
    scale_free_graph,
)
from repro.datasets.ldbc import LDBCParameters, ldbc_like_graph
from repro.graph.stats import compute_statistics, has_directed_cycle
from repro.graph.validation import validate_graph


class TestFigure1:
    def test_size(self) -> None:
        graph = figure1_graph()
        assert graph.num_nodes() == 7
        assert graph.num_edges() == 11

    def test_node_names_match_paper(self) -> None:
        graph = figure1_graph()
        assert graph.node("n1").property("name") == "Moe"
        assert graph.node("n4").property("name") == "Apu"
        for node_id, name in FIGURE1_NODE_NAMES.items():
            if graph.node(node_id).label == "Person":
                assert graph.node(node_id).property("name") == name

    def test_edge_labels_match_declared_mapping(self) -> None:
        graph = figure1_graph()
        for edge_id, label in FIGURE1_EDGE_LABELS.items():
            assert graph.edge(edge_id).label == label

    def test_knows_edges_match_table3(self) -> None:
        graph = figure1_graph()
        assert graph.edge("e1").endpoints() == ("n1", "n2")
        assert graph.edge("e2").endpoints() == ("n2", "n3")
        assert graph.edge("e3").endpoints() == ("n3", "n2")
        assert graph.edge("e4").endpoints() == ("n2", "n4")

    def test_intro_path2_edges_exist(self) -> None:
        """path2 = (n1, e8, n6, e11, n3, e7, n7, e10, n4) with Likes/Has_creator labels."""
        graph = figure1_graph()
        assert graph.edge("e8").endpoints() == ("n1", "n6")
        assert graph.edge("e8").label == "Likes"
        assert graph.edge("e11").endpoints() == ("n6", "n3")
        assert graph.edge("e11").label == "Has_creator"
        assert graph.edge("e7").endpoints() == ("n3", "n7")
        assert graph.edge("e7").label == "Likes"
        assert graph.edge("e10").endpoints() == ("n7", "n4")
        assert graph.edge("e10").label == "Has_creator"

    def test_inner_and_outer_cycles_exist(self) -> None:
        graph = figure1_graph()
        assert has_directed_cycle(graph, edge_label="Knows")
        # The outer cycle uses both Likes and Has_creator edges.
        assert has_directed_cycle(graph)
        assert not has_directed_cycle(graph.subgraph_by_edge_labels(["Has_creator"]))

    def test_is_valid(self) -> None:
        assert validate_graph(figure1_graph()).is_valid


class TestGenerators:
    def test_chain(self) -> None:
        graph = chain_graph(10)
        assert graph.num_nodes() == 10
        assert graph.num_edges() == 9
        assert not has_directed_cycle(graph)

    def test_cycle(self) -> None:
        graph = cycle_graph(5)
        assert graph.num_edges() == 5
        assert has_directed_cycle(graph)

    def test_grid(self) -> None:
        graph = grid_graph(3, 4)
        assert graph.num_nodes() == 12
        assert graph.num_edges() == 3 * 3 + 2 * 4  # right edges + down edges
        assert not has_directed_cycle(graph)

    def test_binary_tree(self) -> None:
        graph = binary_tree_graph(3)
        assert graph.num_nodes() == 15
        assert graph.num_edges() == 14

    def test_random_is_deterministic_per_seed(self) -> None:
        a = random_graph(30, 60, seed=9)
        b = random_graph(30, 60, seed=9)
        assert [e.endpoints() for e in a.edges()] == [e.endpoints() for e in b.edges()]
        c = random_graph(30, 60, seed=10)
        assert [e.endpoints() for e in a.edges()] != [e.endpoints() for e in c.edges()]

    def test_random_no_self_loops_by_default(self) -> None:
        graph = random_graph(10, 50, seed=1)
        assert all(edge.source != edge.target for edge in graph.edges())

    def test_layered_is_acyclic(self) -> None:
        graph = layered_graph(4, 3, seed=2)
        assert graph.num_nodes() == 12
        assert not has_directed_cycle(graph)

    def test_scale_free_degree_skew(self) -> None:
        graph = scale_free_graph(100, edges_per_node=2, seed=4)
        stats = compute_statistics(graph)
        assert stats.num_edges == pytest.approx(2 * 99, abs=2)
        assert stats.max_in_degree > 3 * stats.avg_out_degree

    def test_complete(self) -> None:
        graph = complete_graph(5)
        assert graph.num_edges() == 20

    def test_generated_graphs_are_valid(self) -> None:
        for graph in (
            chain_graph(5),
            cycle_graph(5),
            grid_graph(3, 3),
            random_graph(15, 30, seed=0),
            layered_graph(3, 3, seed=0),
            scale_free_graph(20, seed=0),
        ):
            assert validate_graph(graph).is_valid, graph.name


class TestLDBCLikeGenerator:
    def test_default_shape(self) -> None:
        graph = ldbc_like_graph()
        stats = compute_statistics(graph)
        assert stats.node_label_counts["Person"] == 50
        assert stats.node_label_counts["Message"] == 100
        assert stats.node_label_counts["Forum"] == 5
        assert stats.edge_label_counts["Has_creator"] == 100  # one creator per message
        assert stats.edge_label_counts["Knows"] > 0
        assert stats.edge_label_counts["Likes"] > 0

    def test_deterministic_per_seed(self) -> None:
        a = ldbc_like_graph(LDBCParameters(num_persons=10, num_messages=20, seed=3))
        b = ldbc_like_graph(LDBCParameters(num_persons=10, num_messages=20, seed=3))
        assert a.num_edges() == b.num_edges()
        assert [e.endpoints() for e in a.edges()] == [e.endpoints() for e in b.edges()]

    def test_reciprocity_creates_knows_cycles(self) -> None:
        graph = ldbc_like_graph(LDBCParameters(num_persons=30, knows_reciprocity=1.0, seed=1))
        assert has_directed_cycle(graph, edge_label="Knows")

    def test_paper_queries_run_on_ldbc_graph(self) -> None:
        from repro.engine.engine import PathQueryEngine

        graph = ldbc_like_graph(LDBCParameters(num_persons=20, num_messages=30, seed=8))
        engine = PathQueryEngine(graph, default_max_length=4)
        result = engine.query("MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->+(?y)")
        assert len(result) > 0
        likes = engine.query("MATCH ALL ACYCLIC p = (?x)-[(Likes/Has_creator)+]->(?y)")
        assert all(path.len() % 2 == 0 for path in likes.paths)

    def test_is_valid(self) -> None:
        graph = ldbc_like_graph(LDBCParameters(num_persons=15, num_messages=20, seed=2))
        assert validate_graph(graph).is_valid
