"""Tests for the classical RPQ baselines and their agreement with the algebra."""

from __future__ import annotations

import pytest

from repro.algebra.evaluator import evaluate_to_paths
from repro.baselines.automaton_eval import (
    evaluate_rpq_pairs,
    evaluate_rpq_shortest_witnesses,
)
from repro.baselines.matrix import MatrixRPQEvaluator, evaluate_rpq_matrix
from repro.baselines.traversal import TraversalOptions, evaluate_rpq_traversal
from repro.errors import EvaluationError
from repro.rpq.compile import CompileOptions, compile_regex
from repro.semantics.restrictors import Restrictor, recursive_closure


class TestTraversalBaseline:
    def test_trail_agrees_with_algebra(self, figure1, knows_edges) -> None:
        algebra = recursive_closure(knows_edges, Restrictor.TRAIL)
        baseline = evaluate_rpq_traversal(
            figure1, "Knows+", TraversalOptions(restrictor=Restrictor.TRAIL)
        )
        assert baseline == algebra

    def test_acyclic_and_simple_agree_with_algebra(self, figure1, knows_edges) -> None:
        for restrictor in (Restrictor.ACYCLIC, Restrictor.SIMPLE):
            algebra = recursive_closure(knows_edges, restrictor)
            baseline = evaluate_rpq_traversal(
                figure1, "Knows+", TraversalOptions(restrictor=restrictor)
            )
            assert baseline == algebra, restrictor

    def test_bounded_walk_agrees_with_algebra(self, figure1, knows_edges) -> None:
        algebra = recursive_closure(knows_edges, Restrictor.WALK, max_length=3)
        baseline = evaluate_rpq_traversal(
            figure1, "Knows+", TraversalOptions(restrictor=Restrictor.WALK, max_length=3)
        )
        assert baseline == algebra

    def test_walk_without_bound_rejected(self, figure1) -> None:
        with pytest.raises(EvaluationError):
            evaluate_rpq_traversal(figure1, "Knows+", TraversalOptions(restrictor=Restrictor.WALK))

    def test_complex_regex_agrees_with_algebra(self, figure1) -> None:
        regex = "(Likes/Has_creator)+|Knows"
        plan = compile_regex(regex, CompileOptions(restrictor=Restrictor.ACYCLIC))
        algebra = evaluate_to_paths(plan, figure1)
        baseline = evaluate_rpq_traversal(
            figure1, regex, TraversalOptions(restrictor=Restrictor.ACYCLIC)
        )
        assert baseline == algebra

    def test_star_includes_zero_length_paths(self, figure1) -> None:
        baseline = evaluate_rpq_traversal(
            figure1, "Knows*", TraversalOptions(restrictor=Restrictor.TRAIL)
        )
        zero_length = [path for path in baseline if path.len() == 0]
        assert len(zero_length) == figure1.num_nodes()

    def test_source_and_target_filters(self, figure1) -> None:
        baseline = evaluate_rpq_traversal(
            figure1,
            "Knows+",
            TraversalOptions(restrictor=Restrictor.TRAIL, sources=("n1",), targets=("n4",)),
        )
        assert all(path.first() == "n1" and path.last() == "n4" for path in baseline)
        assert len(baseline) == 2  # p5 and p6 of Table 3

    def test_shortest_with_bound(self, figure1, knows_edges) -> None:
        algebra = recursive_closure(knows_edges, Restrictor.SHORTEST)
        baseline = evaluate_rpq_traversal(
            figure1, "Knows+", TraversalOptions(restrictor=Restrictor.SHORTEST, max_length=4)
        )
        assert baseline == algebra


class TestAutomatonBaseline:
    def test_pairs_match_algebra_endpoints(self, figure1, knows_edges) -> None:
        algebra_pairs = recursive_closure(knows_edges, Restrictor.TRAIL).endpoints()
        result = evaluate_rpq_pairs(figure1, "Knows+")
        # The trail endpoints are a subset of all walk-reachable pairs, and for
        # Knows+ on Figure 1 they coincide.
        assert result.pairs == algebra_pairs
        assert result.visited_states > 0

    def test_star_includes_identity_pairs(self, figure1) -> None:
        result = evaluate_rpq_pairs(figure1, "Knows*")
        for node_id in figure1.node_ids():
            assert (node_id, node_id) in result.pairs

    def test_distances_are_shortest(self, figure1) -> None:
        result = evaluate_rpq_pairs(figure1, "Knows+")
        assert result.distances[("n1", "n2")] == 1
        assert result.distances[("n1", "n4")] == 2
        assert result.distances[("n1", "n3")] == 2

    def test_terminates_on_cycles_without_bound(self, small_cycle) -> None:
        result = evaluate_rpq_pairs(small_cycle, "Knows+")
        assert len(result.pairs) == 16  # every ordered pair including (v, v)

    def test_shortest_witnesses_lengths(self, figure1, knows_edges) -> None:
        witnesses = evaluate_rpq_shortest_witnesses(figure1, "Knows+", sources=("n1",))
        shortest = recursive_closure(knows_edges, Restrictor.SHORTEST)
        expected = {
            path.endpoints(): path.len() for path in shortest if path.first() == "n1"
        }
        assert {path.endpoints() for path in witnesses} == set(expected)
        for path in witnesses:
            assert path.len() == expected[path.endpoints()]

    def test_witnesses_are_valid_matching_paths(self, figure1) -> None:
        from repro.rpq.automaton import build_nfa

        nfa = build_nfa("(Likes/Has_creator)+")
        witnesses = evaluate_rpq_shortest_witnesses(figure1, "(Likes/Has_creator)+")
        assert witnesses
        for path in witnesses:
            assert nfa.accepts(path.label_sequence())


class TestMatrixBaseline:
    def test_pairs_match_automaton_baseline(self, figure1) -> None:
        matrix_pairs = evaluate_rpq_matrix(figure1, "Knows+")
        automaton_pairs = evaluate_rpq_pairs(figure1, "Knows+").pairs
        assert matrix_pairs == automaton_pairs

    def test_concat_and_alternation(self, figure1) -> None:
        evaluator = MatrixRPQEvaluator(figure1)
        likes_creator = evaluator.pairs("Likes/Has_creator")
        assert ("n1", "n3") in likes_creator  # e8 then e11
        assert ("n3", "n4") in likes_creator  # e7 then e10
        union_pairs = evaluator.pairs("Knows|Likes")
        assert ("n1", "n2") in union_pairs  # Knows e1
        assert ("n1", "n6") in union_pairs  # Likes e8

    def test_star_includes_identity(self, figure1) -> None:
        evaluator = MatrixRPQEvaluator(figure1)
        star = evaluator.pairs("Knows*")
        for node_id in figure1.node_ids():
            assert (node_id, node_id) in star

    def test_optional_and_epsilon_and_wildcard(self, figure1) -> None:
        evaluator = MatrixRPQEvaluator(figure1)
        assert evaluator.count_pairs("()") == figure1.num_nodes()
        assert evaluator.count_pairs("%") >= figure1.num_edges() - 1  # parallel edges collapse
        optional = evaluator.pairs("Knows?")
        assert ("n1", "n1") in optional
        assert ("n1", "n2") in optional

    def test_unknown_label_is_empty(self, figure1) -> None:
        assert MatrixRPQEvaluator(figure1).count_pairs("Nonexistent") == 0

    def test_agreement_on_random_graph(self, small_random) -> None:
        regex = "(Knows/Likes)|Has_creator+"
        matrix_pairs = evaluate_rpq_matrix(small_random, regex)
        automaton_pairs = evaluate_rpq_pairs(small_random, regex).pairs
        assert matrix_pairs == automaton_pairs
