"""Tests for the exception hierarchy and the benchmark utilities (workloads, reporting)."""

from __future__ import annotations

import pytest

from repro import errors
from repro.bench.reporting import format_check, format_table, print_table
from repro.bench.workloads import (
    Workload,
    cyclic_workloads,
    dag_workloads,
    figure1_workload,
    scaling_workloads,
    selectivity_workloads,
)
from repro.graph.stats import has_directed_cycle


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self) -> None:
        error_classes = [
            errors.GraphError,
            errors.DuplicateObjectError,
            errors.UnknownObjectError,
            errors.InvalidEdgeError,
            errors.PathError,
            errors.InvalidPathError,
            errors.PathConcatenationError,
            errors.AlgebraError,
            errors.ConditionError,
            errors.EvaluationError,
            errors.NonTerminatingQueryError,
            errors.SolutionSpaceError,
            errors.ParseError,
            errors.RegexSyntaxError,
            errors.GQLSyntaxError,
            errors.PlanningError,
            errors.OptimizerError,
        ]
        for error_class in error_classes:
            assert issubclass(error_class, errors.PathAlgebraError)

    def test_catching_the_base_class_catches_domain_errors(self) -> None:
        from repro.rpq.parser import parse_regex

        with pytest.raises(errors.PathAlgebraError):
            parse_regex("a|")

    def test_regex_error_records_position(self) -> None:
        error = errors.RegexSyntaxError("boom", position=7)
        assert error.position == 7
        assert "position 7" in str(error)

    def test_gql_error_records_location(self) -> None:
        error = errors.GQLSyntaxError("boom", line=2, column=5)
        assert error.line == 2
        assert error.column == 5
        assert "line 2" in str(error)

    def test_non_terminating_is_an_evaluation_error(self) -> None:
        assert issubclass(errors.NonTerminatingQueryError, errors.EvaluationError)


class TestReporting:
    def test_format_table_alignment(self) -> None:
        text = format_table(["name", "count"], [("alpha", 1), ("b", 20)], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("name ")
        assert "alpha" in lines[3]
        # All data rows have the same width.
        assert len(lines[3]) == len(lines[4])

    def test_format_table_booleans_and_floats(self) -> None:
        text = format_table(["x", "ok", "value"], [("row", True, 1.23456), ("r2", False, 2.0)])
        assert "✓" in text
        assert "✗" in text
        assert "1.235" in text

    def test_format_check(self) -> None:
        assert format_check(True) == "✓"
        assert format_check(False) == "✗"

    def test_print_table(self, capsys) -> None:
        print_table(["a"], [(1,)], title="t")
        captured = capsys.readouterr()
        assert "t" in captured.out
        assert "1" in captured.out


class TestWorkloads:
    def test_figure1_workload(self) -> None:
        workload = figure1_workload()
        graph = workload.build_graph()
        assert graph.num_nodes() == 7
        assert workload.regex == "Knows+"

    def test_scaling_workloads_cover_requested_sizes(self) -> None:
        workloads = scaling_workloads(sizes=(10, 20))
        assert len(workloads) == 6  # three shapes per size
        names = {workload.name for workload in workloads}
        assert "chain-10" in names
        assert "random-20" in names
        for workload in workloads:
            assert workload.build_graph().num_nodes() > 0

    def test_workload_graphs_are_rebuilt_fresh(self) -> None:
        workload = figure1_workload()
        first = workload.build_graph()
        second = workload.build_graph()
        assert first is not second

    def test_selectivity_workloads_have_distinct_label_mixes(self) -> None:
        workloads = selectivity_workloads(num_nodes=30)
        label_counts = {len(w.parameters["labels"]) for w in workloads}
        assert len(label_counts) == len(workloads)

    def test_cyclic_workloads_are_cyclic(self) -> None:
        for workload in cyclic_workloads(sizes=(3, 5)):
            assert has_directed_cycle(workload.build_graph())

    def test_dag_workloads_are_acyclic(self) -> None:
        for workload in dag_workloads(depths=(3, 4)):
            assert not has_directed_cycle(workload.build_graph())

    def test_workload_dataclass_fields(self) -> None:
        workload = Workload(name="x", graph_factory=lambda: figure1_workload().build_graph(), regex="Knows")
        assert workload.parameters == {}
        assert workload.description == ""
