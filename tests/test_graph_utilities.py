"""Tests for the graph builder, IO round-trips, statistics and validation."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    load_csv,
    load_json,
    save_csv,
    save_json,
)
from repro.graph.model import PropertyGraph
from repro.graph.stats import compute_statistics, has_directed_cycle, label_selectivity
from repro.graph.validation import validate_graph
from repro.datasets.figure1 import figure1_graph
from repro.datasets.generators import chain_graph, cycle_graph


class TestGraphBuilder:
    def test_explicit_identifiers(self) -> None:
        graph = (
            GraphBuilder("g")
            .node("a", "Person", name="A")
            .node("b", "Person")
            .edge("a", "b", "Knows", id="ab", since=2020)
            .build()
        )
        assert graph.node("a").property("name") == "A"
        assert graph.edge("ab").property("since") == 2020

    def test_auto_identifiers(self) -> None:
        graph = GraphBuilder().node().node().edge("n1", "n2", "Knows").build()
        assert graph.has_node("n1")
        assert graph.has_node("n2")
        assert graph.has_edge("e1")

    def test_chain_helper(self) -> None:
        builder = GraphBuilder()
        for name in ("a", "b", "c"):
            builder.node(name)
        graph = builder.chain(["a", "b", "c"], "Knows").build()
        assert graph.num_edges() == 2
        assert graph.neighbors("a") == ["b"]

    def test_cycle_helper(self) -> None:
        builder = GraphBuilder()
        for name in ("a", "b", "c"):
            builder.node(name)
        graph = builder.cycle(["a", "b", "c"], "Knows").build()
        assert graph.num_edges() == 3
        assert has_directed_cycle(graph)


class TestGraphIO:
    def test_dict_round_trip(self) -> None:
        original = figure1_graph()
        restored = graph_from_dict(graph_to_dict(original))
        assert restored.num_nodes() == original.num_nodes()
        assert restored.num_edges() == original.num_edges()
        assert restored.node("n1").property("name") == "Moe"
        assert restored.edge("e1").label == "Knows"

    def test_dict_missing_keys(self) -> None:
        with pytest.raises(GraphError):
            graph_from_dict({"nodes": []})

    def test_json_round_trip(self, tmp_path) -> None:
        original = figure1_graph()
        path = tmp_path / "graph.json"
        save_json(original, path)
        restored = load_json(path)
        assert restored.num_edges() == original.num_edges()
        assert restored.edge("e11").label == "Has_creator"

    def test_csv_round_trip(self, tmp_path) -> None:
        original = figure1_graph()
        prefix = tmp_path / "figure1"
        nodes_path, edges_path = save_csv(original, prefix)
        assert nodes_path.exists()
        assert edges_path.exists()
        restored = load_csv(prefix)
        assert restored.num_nodes() == original.num_nodes()
        assert restored.num_edges() == original.num_edges()
        # CSV stores values as strings.
        assert restored.node("n1").property("name") == "Moe"

    def test_csv_missing_files(self, tmp_path) -> None:
        with pytest.raises(GraphError):
            load_csv(tmp_path / "missing")

    def test_dict_round_trips_version_counter(self) -> None:
        graph = figure1_graph()
        graph.set_node_property("n1", "name", "Moe Sr.")
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.version == graph.version
        assert restored.node("n1").property("name") == "Moe Sr."
        # The restored graph keeps counting from the restored version.
        restored.add_node("extra")
        assert restored.version == graph.version + 1

    def test_dict_rejects_bogus_version(self) -> None:
        payload = graph_to_dict(figure1_graph())
        payload["version"] = "not-a-number"
        with pytest.raises(GraphError, match="version"):
            graph_from_dict(payload)
        payload["version"] = 1  # fewer than the object count: impossible
        with pytest.raises(GraphError, match="version"):
            graph_from_dict(payload)

    def test_json_syntax_error_reports_file_and_line(self, tmp_path) -> None:
        path = tmp_path / "broken.json"
        path.write_text('{"nodes": [\n  {"id": "a",},\n]}', encoding="utf-8")
        with pytest.raises(GraphError) as excinfo:
            load_json(path)
        message = str(excinfo.value)
        assert "broken.json" in message
        assert "line" in message

    def test_json_non_dict_payload_is_a_graph_error(self, tmp_path) -> None:
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(GraphError, match="expected a JSON object"):
            load_json(path)

    def test_json_malformed_graph_reports_path(self, tmp_path) -> None:
        path = tmp_path / "malformed.json"
        path.write_text('{"nodes": [{"label": "Person"}], "edges": []}', encoding="utf-8")
        with pytest.raises(GraphError) as excinfo:
            load_json(path)
        assert "malformed.json" in str(excinfo.value)

    def test_csv_malformed_row_reports_file_and_line(self, tmp_path) -> None:
        (tmp_path / "bad_nodes.csv").write_text("wrong,headers\na,b\n", encoding="utf-8")
        (tmp_path / "bad_edges.csv").write_text(
            "id,source,target,label\n", encoding="utf-8"
        )
        with pytest.raises(GraphError) as excinfo:
            load_csv(tmp_path / "bad")
        message = str(excinfo.value)
        assert "bad_nodes.csv" in message
        assert "line" in message


class TestStatistics:
    def test_figure1_statistics(self) -> None:
        stats = compute_statistics(figure1_graph())
        assert stats.num_nodes == 7
        assert stats.num_edges == 11
        assert stats.edge_label_counts["Knows"] == 4
        assert stats.node_label_counts["Person"] == 4
        assert stats.has_cycle is True
        assert stats.avg_out_degree == pytest.approx(11 / 7)

    def test_label_fractions(self) -> None:
        stats = compute_statistics(figure1_graph())
        assert stats.edge_label_fraction("Knows") == pytest.approx(4 / 11)
        assert stats.edge_label_fraction("Nope") == 0.0
        assert stats.node_label_fraction("Message") == pytest.approx(3 / 7)

    def test_empty_graph_statistics(self) -> None:
        stats = compute_statistics(PropertyGraph())
        assert stats.num_nodes == 0
        assert stats.avg_out_degree == 0.0
        assert stats.edge_label_fraction("Knows") == 0.0

    def test_cycle_detection(self) -> None:
        assert has_directed_cycle(cycle_graph(3))
        assert not has_directed_cycle(chain_graph(5))

    def test_cycle_detection_label_restricted(self) -> None:
        graph = figure1_graph()
        assert has_directed_cycle(graph, edge_label="Knows")
        # Has_creator edges alone do not form a cycle.
        assert not has_directed_cycle(graph, edge_label="Has_creator")

    def test_label_selectivity(self) -> None:
        assert label_selectivity(figure1_graph(), "Knows") == pytest.approx(4 / 11)


class TestValidation:
    def test_valid_graph(self) -> None:
        report = validate_graph(figure1_graph())
        assert report.is_valid
        report.raise_if_invalid()

    def test_isolated_node_warning(self) -> None:
        graph = PropertyGraph()
        graph.add_node("lonely", "Person")
        report = validate_graph(graph)
        assert report.is_valid
        assert any("isolated" in warning for warning in report.warnings)

    def test_unlabeled_edge_warning(self) -> None:
        graph = PropertyGraph()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_edge("e", "a", "b")
        report = validate_graph(graph)
        assert any("unlabeled" in warning for warning in report.warnings)
