"""Tests for the expression IR and the plan printers."""

from __future__ import annotations

from repro.algebra.conditions import label_of_edge, prop_of_first
from repro.algebra.expressions import (
    EdgesScan,
    GroupBy,
    Join,
    NodesScan,
    OrderBy,
    Projection,
    Recursive,
    Selection,
    Union,
    acyclic,
    shortest,
    simple,
    trail,
    walk,
)
from repro.algebra.printer import to_algebra_notation, to_indented_tree, to_plan_tree
from repro.algebra.solution_space import GroupByKey, OrderByKey, ProjectionSpec
from repro.semantics.restrictors import Restrictor


def knows_scan() -> Selection:
    return Selection(label_of_edge(1, "Knows"), EdgesScan())


class TestConstruction:
    def test_atoms_have_no_children(self) -> None:
        assert NodesScan().children() == ()
        assert EdgesScan().children() == ()

    def test_children_and_depth(self) -> None:
        plan = Union(knows_scan(), Join(knows_scan(), knows_scan()))
        assert len(plan.children()) == 2
        assert plan.depth() == 4  # Union -> Join -> Selection -> EdgesScan
        assert plan.count_operators() == 8

    def test_iter_subtree_preorder(self) -> None:
        plan = Selection(prop_of_first("name", "Moe"), EdgesScan())
        nodes = list(plan.iter_subtree())
        assert isinstance(nodes[0], Selection)
        assert isinstance(nodes[1], EdgesScan)

    def test_structural_equality(self) -> None:
        assert knows_scan() == knows_scan()
        assert Join(knows_scan(), EdgesScan()) == Join(knows_scan(), EdgesScan())
        assert Join(knows_scan(), EdgesScan()) != Join(EdgesScan(), knows_scan())
        assert Recursive(knows_scan(), Restrictor.TRAIL) != Recursive(
            knows_scan(), Restrictor.SIMPLE
        )

    def test_fluent_builders(self) -> None:
        plan = (
            EdgesScan()
            .select(label_of_edge(1, "Knows"))
            .recursive(Restrictor.TRAIL)
            .group_by("ST")
            .order_by("A")
            .project("*", "*", 1)
        )
        assert isinstance(plan, Projection)
        assert plan.spec == ProjectionSpec("*", "*", 1)
        assert isinstance(plan.child, OrderBy)
        assert plan.child.key is OrderByKey.A
        assert isinstance(plan.child.child, GroupBy)
        assert plan.child.child.key is GroupByKey.ST
        assert isinstance(plan.child.child.child, Recursive)

    def test_phi_shorthands(self) -> None:
        base = knows_scan()
        assert walk(base).restrictor is Restrictor.WALK
        assert trail(base).restrictor is Restrictor.TRAIL
        assert acyclic(base).restrictor is Restrictor.ACYCLIC
        assert simple(base).restrictor is Restrictor.SIMPLE
        assert shortest(base).restrictor is Restrictor.SHORTEST
        assert walk(base, max_length=5).max_length == 5

    def test_returns_solution_space_flags(self) -> None:
        base = knows_scan()
        assert not base.returns_solution_space()
        assert GroupBy(base, GroupByKey.ST).returns_solution_space()
        assert OrderBy(GroupBy(base, GroupByKey.ST), OrderByKey.A).returns_solution_space()
        assert not Projection(GroupBy(base, GroupByKey.ST)).returns_solution_space()


class TestAlgebraNotation:
    def test_core_operators(self) -> None:
        plan = Union(knows_scan(), Join(knows_scan(), NodesScan()))
        text = to_algebra_notation(plan)
        assert "∪" in text
        assert "⋈" in text
        assert "σ[label(edge(1)) = 'Knows'](Edges(G))" in text
        assert "Nodes(G)" in text

    def test_recursive_and_extended_operators(self) -> None:
        plan = (
            knows_scan()
            .recursive(Restrictor.WALK)
            .group_by("ST")
            .order_by("A")
            .project("*", "*", 1)
        )
        text = to_algebra_notation(plan)
        assert text == (
            "π(*,*,1)(τA(γST(ϕWalk(σ[label(edge(1)) = 'Knows'](Edges(G))))))"
        )

    def test_bounded_recursion_notation(self) -> None:
        assert "≤3" in to_algebra_notation(walk(knows_scan(), max_length=3))


class TestPlanTree:
    def test_section72_style_output(self) -> None:
        plan = (
            knows_scan()
            .recursive(Restrictor.TRAIL)
            .group_by("T")
            .order_by("A")
            .project("*", "*", 1)
        )
        tree = to_plan_tree(plan)
        lines = tree.splitlines()
        assert lines[0] == "1 Projection (ALL PARTITIONS ALL GROUPS 1 PATHS)"
        assert lines[1] == "2 OrderBy (Path)"
        assert lines[2] == "3 Group (Target)"
        assert lines[3] == "4 Restrictor (TRAIL)"
        assert "Recursive Join (restrictor: TRAIL)" in lines[4]
        assert "Select: (label(edge(1)) = 'Knows')" in lines[5]
        assert "EDGES(G)" in lines[6]

    def test_plain_query_tree(self) -> None:
        plan = Union(knows_scan(), knows_scan())
        tree = to_plan_tree(plan)
        assert "Union" in tree
        assert tree.count("Select:") == 2

    def test_indented_tree(self) -> None:
        plan = Join(knows_scan(), NodesScan())
        tree = to_indented_tree(plan)
        lines = tree.splitlines()
        assert lines[0] == "⋈"
        assert lines[1].startswith("  ")
        assert any("Nodes(G)" in line for line in lines)
