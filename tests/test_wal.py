"""Write-ahead log unit tests: framing, torn tails, corruption, recovery edges.

The companion property suite lives in ``tests/test_durability.py``; this file
pins the deterministic contracts: record framing round-trips, a torn final
record is dropped while earlier damage raises
:class:`~repro.errors.WalCorruptError`, every fsync policy syncs when it
promises to, and the recovery edge cases (empty WAL, WAL ahead of snapshot,
stale WAL behind the snapshot, crashes inside rotation) land on the exact
documented state.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.errors import GraphError, WalCorruptError
from repro.graph.model import PropertyGraph
from repro.graph.wal import (
    CrashPoint,
    DurableStore,
    SimulatedCrash,
    WriteAheadLog,
    _encode_record,
    read_wal,
)

_HEADER = struct.Struct(">II")


def _mutate(graph: PropertyGraph) -> None:
    """Three nodes, two edges, one property set — six versions."""
    graph.add_node("a", "Person", {"name": "A"})
    graph.add_node("b", "Person")
    graph.add_node("c")
    graph.add_edge("ab", "a", "b", "Knows")
    graph.add_edge("bc", "b", "c", "Likes", {"weight": 2})
    graph.set_node_property("a", "name", "A'")


def _crash_at(target: str):
    """A crash hook raising :class:`SimulatedCrash` the first time ``target`` fires."""
    armed = {"armed": True}

    def hook(point: str) -> None:
        if armed["armed"] and point == target:
            armed["armed"] = False
            raise SimulatedCrash(target)

    return hook


class TestFraming:
    def test_round_trip_through_graph_mutations(self, tmp_path) -> None:
        path = tmp_path / "wal.log"
        graph = PropertyGraph(name="G")
        with WriteAheadLog(path) as wal:
            wal.attach(graph)
            _mutate(graph)
        scan = read_wal(path)
        assert not scan.torn_tail
        assert [op["v"] for op in scan.records] == [1, 2, 3, 4, 5, 6]
        assert scan.versions == (1, 6)
        assert [op["op"] for op in scan.records] == [
            "add_node",
            "add_node",
            "add_node",
            "add_edge",
            "add_edge",
            "set_node_property",
        ]
        assert scan.records[4]["a"]["properties"] == {"weight": 2}
        assert scan.valid_bytes == path.stat().st_size

    def test_empty_file_scans_clean(self, tmp_path) -> None:
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        scan = read_wal(path)
        assert scan.records == []
        assert scan.versions is None
        assert not scan.torn_tail

    def test_append_after_close_raises(self, tmp_path) -> None:
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(GraphError, match="closed"):
            wal.append({"op": "add_node", "v": 1, "a": {"id": "a"}})

    def test_constructor_validation(self, tmp_path) -> None:
        with pytest.raises(ValueError, match="fsync"):
            WriteAheadLog(tmp_path / "w", fsync="sometimes")
        with pytest.raises(ValueError, match="batch_interval"):
            WriteAheadLog(tmp_path / "w", fsync="batch", batch_interval=0)

    def test_detach_stops_logging(self, tmp_path) -> None:
        path = tmp_path / "wal.log"
        graph = PropertyGraph()
        with WriteAheadLog(path) as wal:
            wal.attach(graph)
            graph.add_node("a")
            wal.detach()
            graph.add_node("b")
        assert len(read_wal(path).records) == 1


class TestTornTailAndCorruption:
    def _full_log(self, tmp_path) -> bytes:
        path = tmp_path / "wal.log"
        graph = PropertyGraph()
        with WriteAheadLog(path) as wal:
            wal.attach(graph)
            _mutate(graph)
        return path.read_bytes()

    def test_truncated_final_record_is_dropped(self, tmp_path) -> None:
        data = self._full_log(tmp_path)
        path = tmp_path / "torn.log"
        path.write_bytes(data[:-5])  # rip the tail off the last record
        scan = read_wal(path)
        assert scan.torn_tail
        assert [op["v"] for op in scan.records] == [1, 2, 3, 4, 5]
        assert scan.valid_bytes < len(data) - 5

    def test_partial_header_is_a_torn_tail(self, tmp_path) -> None:
        data = self._full_log(tmp_path)
        scan_full = read_wal(tmp_path / "wal.log")
        path = tmp_path / "torn.log"
        path.write_bytes(data + b"\x00\x00\x01")  # 3 stray bytes: half a header
        scan = read_wal(path)
        assert scan.torn_tail
        assert len(scan.records) == len(scan_full.records)
        assert scan.valid_bytes == len(data)

    def test_corrupt_final_record_at_eof_is_a_torn_tail(self, tmp_path) -> None:
        data = bytearray(self._full_log(tmp_path))
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path = tmp_path / "torn.log"
        path.write_bytes(bytes(data))
        scan = read_wal(path)
        assert scan.torn_tail
        assert [op["v"] for op in scan.records] == [1, 2, 3, 4, 5]

    def test_corrupt_earlier_record_raises(self, tmp_path) -> None:
        data = bytearray(self._full_log(tmp_path))
        # Flip a byte inside the FIRST record's payload: damage that is not
        # at the tail is corruption, not a torn write.
        data[_HEADER.size + 2] ^= 0xFF
        path = tmp_path / "corrupt.log"
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptError) as excinfo:
            read_wal(path)
        assert "checksum" in str(excinfo.value)
        assert excinfo.value.offset == 0

    def test_checksum_valid_but_undecodable_payload_raises(self, tmp_path) -> None:
        payload = b"[1, 2, 3]"  # valid JSON, not an op record
        record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        path = tmp_path / "bogus.log"
        path.write_bytes(record)
        with pytest.raises(WalCorruptError, match="undecodable"):
            read_wal(path)

    def test_recovery_truncates_the_torn_tail(self, tmp_path) -> None:
        directory = tmp_path / "store"
        with DurableStore(directory) as store:
            _mutate(store.graph)
        wal_path = directory / DurableStore.WAL_NAME
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-5])
        with DurableStore(directory) as store:
            assert store.graph.version == 5  # the torn sixth record is gone
            assert store.replayed_records == 5
            # The file was repaired in place: scanning it again is clean.
            scan = read_wal(wal_path)
            assert not scan.torn_tail
        # And appending after the repair starts a fresh intact frame.
        with DurableStore(directory) as store:
            store.graph.add_node("post-repair")
            assert store.graph.version == 6


class TestFsyncPolicies:
    def _append_records(self, tmp_path, count: int, **wal_options) -> WriteAheadLog:
        wal = WriteAheadLog(tmp_path / "wal.log", **wal_options)
        for version in range(1, count + 1):
            wal.append({"op": "add_node", "v": version, "a": {"id": f"n{version}"}})
        return wal

    def test_always_syncs_every_record(self, tmp_path) -> None:
        wal = self._append_records(tmp_path, 5, fsync="always")
        assert wal.syncs == 5
        wal.close()
        assert wal.syncs == 5  # nothing left unsynced

    def test_batch_syncs_every_interval_and_on_close(self, tmp_path) -> None:
        wal = self._append_records(tmp_path, 7, fsync="batch", batch_interval=3)
        assert wal.syncs == 2  # after records 3 and 6
        wal.close()
        assert wal.syncs == 3  # the close flushed the seventh

    def test_off_never_syncs(self, tmp_path) -> None:
        wal = self._append_records(tmp_path, 5, fsync="off")
        wal.close()
        assert wal.syncs == 0

    @pytest.mark.xfail(
        strict=True,
        reason="fsync=off is the documented data-loss window: nothing is ever "
        "fsynced, so a power loss may drop every record the OS had not "
        "flushed on its own; this test records the missing guarantee",
    )
    def test_off_has_no_power_loss_guarantee(self, tmp_path) -> None:
        wal = self._append_records(tmp_path, 5, fsync="off")
        try:
            assert wal.syncs > 0  # the guarantee "off" deliberately does not give
        finally:
            wal.close()


class TestRecoveryEdgeCases:
    def test_fresh_directory_starts_empty(self, tmp_path) -> None:
        with DurableStore(tmp_path / "store", name="fresh") as store:
            assert store.graph.version == 0
            assert store.graph.name == "fresh"
            assert not store.recovered_from_snapshot
            assert store.replayed_records == 0

    def test_empty_wal_with_snapshot(self, tmp_path) -> None:
        directory = tmp_path / "store"
        with DurableStore(directory) as store:
            _mutate(store.graph)
            store.rotate()
        with DurableStore(directory) as store:
            assert store.recovered_from_snapshot
            assert store.replayed_records == 0
            assert store.graph.version == 6
            assert store.graph.node("a").property("name") == "A'"

    def test_wal_ahead_of_snapshot_replays_the_difference(self, tmp_path) -> None:
        directory = tmp_path / "store"
        with DurableStore(directory) as store:
            _mutate(store.graph)
            store.rotate()
            store.graph.add_node("late1")
            store.graph.add_node("late2")
        with DurableStore(directory) as store:
            assert store.recovered_from_snapshot
            assert store.replayed_records == 2
            assert store.graph.version == 8
            assert store.graph.has_node("late1") and store.graph.has_node("late2")

    def test_stale_wal_behind_the_snapshot_is_skipped(self, tmp_path) -> None:
        """Crash between the snapshot rename and the WAL reset during rotation."""
        directory = tmp_path / "store"
        with DurableStore(
            directory, crash_hook=_crash_at(CrashPoint.ROTATE_SNAPSHOT_RENAMED)
        ) as store:
            _mutate(store.graph)
            with pytest.raises(SimulatedCrash):
                store.rotate()
        # On disk: new snapshot at v6 AND the full 6-record log.
        with DurableStore(directory) as store:
            assert store.recovered_from_snapshot
            assert store.stale_records == 6
            assert store.replayed_records == 0
            assert store.graph.version == 6
            assert store.graph.edge("bc").property("weight") == 2

    def test_double_rotation_crash(self, tmp_path) -> None:
        """A second rotation crashing must not lose the first one's compaction."""
        directory = tmp_path / "store"
        with DurableStore(directory) as store:
            _mutate(store.graph)
            store.rotate()
            store.graph.add_node("between")
        with DurableStore(
            directory, crash_hook=_crash_at(CrashPoint.ROTATE_SNAPSHOT_RENAMED)
        ) as store:
            assert store.graph.version == 7
            store.graph.add_node("more")
            with pytest.raises(SimulatedCrash):
                store.rotate()
        with DurableStore(directory) as store:
            assert store.graph.version == 8
            assert store.graph.has_node("between") and store.graph.has_node("more")
            assert store.stale_records == 2  # v7 and v8 are inside the new snapshot
            # A clean rotation afterwards converges to snapshot + empty WAL.
            assert store.rotate() == 8
        scan = read_wal(directory / DurableStore.WAL_NAME)
        assert scan.records == []
        with DurableStore(directory) as store:
            assert store.graph.version == 8
            assert store.stale_records == 0

    def test_version_gap_in_the_log_refuses_to_replay(self, tmp_path) -> None:
        directory = tmp_path / "store"
        directory.mkdir()
        wal_path = directory / DurableStore.WAL_NAME
        records = b"".join(
            _encode_record({"op": "add_node", "v": version, "a": {"id": f"n{version}"}})
            for version in (1, 3)  # v2 is missing: not a prefix, not stale
        )
        wal_path.write_bytes(records)
        with pytest.raises(WalCorruptError, match="version gap"):
            DurableStore(directory)

    def test_crash_mid_append_aborts_the_mutation(self, tmp_path) -> None:
        directory = tmp_path / "store"
        with DurableStore(
            directory, crash_hook=_crash_at(CrashPoint.MID_APPEND)
        ) as store:
            with pytest.raises(SimulatedCrash):
                store.graph.add_node("ok")
            assert store.graph.version == 0  # the mutation never applied
            assert not store.graph.has_node("ok")
        # The crash left half a record on disk; recovery repairs the torn
        # tail and the store keeps working.
        with DurableStore(directory) as store:
            assert store.graph.version == 0
            store.graph.add_node("ok")
            assert store.graph.version == 1

    def test_wal_commit_precedes_apply(self, tmp_path) -> None:
        """A record that could not be logged never commits in memory."""
        directory = tmp_path / "store"
        with DurableStore(
            directory, crash_hook=_crash_at(CrashPoint.BEFORE_APPEND)
        ) as store:
            with pytest.raises(SimulatedCrash):
                store.graph.add_node("never")
            assert not store.graph.has_node("never")
            assert store.graph.version == 0
            store.graph.add_node("after")  # hook disarmed: logs and commits
            assert store.graph.version == 1
        assert len(read_wal(directory / DurableStore.WAL_NAME).records) == 1


class TestWalInspectRoundTrip:
    def test_snapshot_skips_replay_after_rotate(self, tmp_path) -> None:
        directory = tmp_path / "store"
        with DurableStore(directory) as store:
            _mutate(store.graph)
            assert store.rotate() == 6
            assert store.rotations == 1
        snapshot = json.loads((directory / DurableStore.SNAPSHOT_NAME).read_text())
        assert snapshot["version"] == 6
