"""Property-based tests (hypothesis) for the core data structures and invariants.

These tests generate random graphs, paths and plans and check the algebraic
laws the paper relies on: closure of the operators over sets of paths,
associativity of concatenation, monotonicity and nesting of the restrictor
semantics, group-by partition invariants, projection cardinality bounds, and
semantic preservation of the optimizer rewrites.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

# Closure-heavy properties dominate the suite's runtime; 30 well-shrunk
# examples per property keep the run short while still exercising the laws on
# a wide range of random graphs.
settings.register_profile("repro", max_examples=30, deadline=None)
settings.load_profile("repro")

from repro.algebra.conditions import label_of_edge, length_at_most, prop_of_first
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import EdgesScan, Join, NodesScan, Recursive, Selection, Union
from repro.algebra.solution_space import (
    ALL,
    GroupByKey,
    OrderByKey,
    ProjectionSpec,
    group_by,
    order_by,
    project,
)
from repro.graph.model import PropertyGraph
from repro.optimizer.engine import optimize
from repro.paths.path import Path
from repro.paths.pathset import PathSet
from repro.paths.predicates import is_acyclic, is_simple, is_trail
from repro.semantics.restrictors import Restrictor, recursive_closure
from repro.semantics.selectors import Selector, SelectorKind, apply_selector

_LABELS = ("Knows", "Likes", "Has_creator")


# ----------------------------------------------------------------------
# Graph and path strategies
# ----------------------------------------------------------------------
@st.composite
def graphs(draw, max_nodes: int = 8, max_edges: int = 16) -> PropertyGraph:
    """Random small property graphs with the Figure 1 label vocabulary."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    graph = PropertyGraph("hypothesis")
    names = string.ascii_lowercase
    for index in range(num_nodes):
        graph.add_node(f"v{index}", "Person", {"name": names[index % len(names)]})
    for index in range(num_edges):
        source = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        target = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        label = draw(st.sampled_from(_LABELS))
        graph.add_edge(f"e{index}", f"v{source}", f"v{target}", label, {})
    return graph


@st.composite
def graph_with_walk(draw, max_hops: int = 4):
    """A random graph together with a random walk in it (as node/edge id lists)."""
    graph = draw(graphs())
    start = draw(st.sampled_from(graph.node_ids()))
    nodes = [start]
    edges: list[str] = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_hops))):
        out_edges = graph.out_edges(nodes[-1])
        if not out_edges:
            break
        edge = draw(st.sampled_from([e.id for e in out_edges]))
        edges.append(edge)
        nodes.append(graph.edge(edge).target)
    return graph, nodes, edges


# ----------------------------------------------------------------------
# Path laws
# ----------------------------------------------------------------------
class TestPathProperties:
    @given(graph_with_walk())
    def test_random_walks_are_valid_paths(self, data) -> None:
        graph, nodes, edges = data
        path = Path(graph, nodes, edges)
        assert path.len() == len(edges)
        assert path.first() == nodes[0]
        assert path.last() == nodes[-1]

    @given(graph_with_walk(), st.data())
    def test_concatenation_is_associative(self, data, extra) -> None:
        graph, nodes, edges = data
        path = Path(graph, nodes, edges)
        if path.len() < 3:
            return
        cut1 = extra.draw(st.integers(min_value=1, max_value=path.len() - 2))
        cut2 = extra.draw(st.integers(min_value=cut1 + 1, max_value=path.len() - 1))
        a = path.prefix(cut1)
        b = Path(graph, nodes[cut1 : cut2 + 1], edges[cut1:cut2])
        c = Path(graph, nodes[cut2:], edges[cut2:])
        assert (a.concat(b)).concat(c) == a.concat(b.concat(c)) == path

    @given(graph_with_walk())
    def test_concat_with_endpoint_nodes_is_identity(self, data) -> None:
        graph, nodes, edges = data
        path = Path(graph, nodes, edges)
        left = Path.from_node(graph, path.first())
        right = Path.from_node(graph, path.last())
        assert left.concat(path) == path
        assert path.concat(right) == path

    @given(graph_with_walk())
    def test_predicate_implications(self, data) -> None:
        graph, nodes, edges = data
        path = Path(graph, nodes, edges)
        if is_acyclic(path):
            assert is_simple(path)
            assert is_trail(path)
        if is_simple(path) and path.first() != path.last():
            assert is_acyclic(path)


# ----------------------------------------------------------------------
# Core algebra laws
# ----------------------------------------------------------------------
class TestCoreAlgebraProperties:
    @given(graphs())
    def test_union_is_commutative_and_idempotent(self, graph) -> None:
        edges = PathSet.edges_of(graph)
        knows = edges.filter(lambda p: graph.edge(p.edge(1)).label == "Knows")
        likes = edges.filter(lambda p: graph.edge(p.edge(1)).label == "Likes")
        assert knows.union(likes) == likes.union(knows)
        assert knows.union(knows) == knows

    @given(graphs())
    def test_join_with_nodes_is_identity(self, graph) -> None:
        edges = PathSet.edges_of(graph)
        nodes = PathSet.nodes_of(graph)
        assert edges.join(nodes) == edges
        assert nodes.join(edges) == edges

    @given(graphs())
    def test_join_results_have_compatible_endpoints_and_lengths(self, graph) -> None:
        edges = PathSet.edges_of(graph)
        joined = edges.join(edges)
        for path in joined:
            assert path.len() == 2
        lefts = {p.first() for p in edges}
        assert all(path.first() in lefts for path in joined)

    @given(graphs())
    def test_selection_is_a_subset_and_idempotent(self, graph) -> None:
        condition = label_of_edge(1, "Knows")
        edges = PathSet.edges_of(graph)
        selected = edges.filter(condition.evaluate)
        assert all(path in edges for path in selected)
        assert selected.filter(condition.evaluate) == selected

    @given(graphs())
    def test_evaluator_matches_pathset_semantics(self, graph) -> None:
        plan = Union(
            Selection(label_of_edge(1, "Knows"), EdgesScan()),
            Join(EdgesScan(), NodesScan()),
        )
        via_plan = evaluate_to_paths(plan, graph)
        edges = PathSet.edges_of(graph)
        knows = edges.filter(lambda p: graph.edge(p.edge(1)).label == "Knows")
        assert via_plan == knows.union(edges.join(PathSet.nodes_of(graph)))


# ----------------------------------------------------------------------
# Recursion laws
# ----------------------------------------------------------------------
class TestRecursionProperties:
    @settings(deadline=None)
    @given(graphs(max_nodes=6, max_edges=10))
    def test_restrictor_nesting(self, graph) -> None:
        base = PathSet.edges_of(graph)
        acyclic = recursive_closure(base, Restrictor.ACYCLIC)
        simple = recursive_closure(base, Restrictor.SIMPLE)
        trail = recursive_closure(base, Restrictor.TRAIL)
        for path in acyclic:
            assert path in simple
            assert path in trail

    @settings(deadline=None)
    @given(graphs(max_nodes=6, max_edges=10))
    def test_restricted_closures_satisfy_their_predicate(self, graph) -> None:
        base = PathSet.edges_of(graph)
        assert all(is_trail(p) for p in recursive_closure(base, Restrictor.TRAIL))
        assert all(is_acyclic(p) for p in recursive_closure(base, Restrictor.ACYCLIC))
        assert all(is_simple(p) for p in recursive_closure(base, Restrictor.SIMPLE))

    @settings(deadline=None)
    @given(graphs(max_nodes=6, max_edges=10))
    def test_shortest_closure_minimality(self, graph) -> None:
        base = PathSet.edges_of(graph)
        shortest = recursive_closure(base, Restrictor.SHORTEST)
        acyclic = recursive_closure(base, Restrictor.ACYCLIC)
        best: dict[tuple[str, str], int] = {}
        for path in shortest:
            best.setdefault(path.endpoints(), path.len())
            assert path.len() == best[path.endpoints()]
        # No acyclic closure path is strictly shorter than the recorded distance.
        for path in acyclic:
            if path.endpoints() in best:
                assert path.len() >= best[path.endpoints()]

    @settings(deadline=None)
    @given(graphs(max_nodes=5, max_edges=8))
    def test_bounded_walk_contains_all_restricted_paths_within_bound(self, graph) -> None:
        base = PathSet.edges_of(graph)
        walks = recursive_closure(base, Restrictor.WALK, max_length=3)
        trails = recursive_closure(base, Restrictor.TRAIL, max_length=3)
        for path in trails:
            assert path in walks


# ----------------------------------------------------------------------
# Solution-space laws
# ----------------------------------------------------------------------
class TestSolutionSpaceProperties:
    @settings(deadline=None)
    @given(graphs(max_nodes=6, max_edges=10), st.sampled_from(list(GroupByKey)))
    def test_group_by_partitions_the_input(self, graph, key) -> None:
        paths = recursive_closure(PathSet.edges_of(graph), Restrictor.ACYCLIC)
        space = group_by(paths, key)
        assert space.num_paths() == len(paths)
        assert space.all_paths() == paths
        # Each path belongs to exactly one group (functions α and β are total).
        for path in paths:
            assert space.group_for(path) is not None
            assert space.partition_for(path) is not None

    @settings(deadline=None)
    @given(
        graphs(max_nodes=6, max_edges=10),
        st.sampled_from(list(GroupByKey)),
        st.sampled_from(list(OrderByKey)),
        st.integers(min_value=1, max_value=3),
    )
    def test_projection_cardinality_bounds(self, graph, group_key, order_key, k) -> None:
        paths = recursive_closure(PathSet.edges_of(graph), Restrictor.ACYCLIC)
        space = order_by(group_by(paths, group_key), order_key)
        result = project(space, ProjectionSpec(ALL, ALL, k))
        assert len(result) <= len(paths)
        assert len(result) <= k * space.num_groups()
        assert all(path in paths for path in result)

    @settings(deadline=None)
    @given(graphs(max_nodes=6, max_edges=10))
    def test_project_all_is_identity(self, graph) -> None:
        paths = recursive_closure(PathSet.edges_of(graph), Restrictor.SIMPLE)
        for key in (GroupByKey.NONE, GroupByKey.ST, GroupByKey.STL, GroupByKey.L):
            assert project(group_by(paths, key), ProjectionSpec(ALL, ALL, ALL)) == paths

    @settings(deadline=None)
    @given(graphs(max_nodes=6, max_edges=10))
    def test_any_shortest_selector_returns_minimal_lengths(self, graph) -> None:
        paths = recursive_closure(PathSet.edges_of(graph), Restrictor.TRAIL)
        result = apply_selector(paths, Selector(SelectorKind.ANY_SHORTEST))
        by_pair = paths.group_by_endpoints()
        assert len(result) == len(by_pair)
        for path in result:
            assert path.len() == min(p.len() for p in by_pair[path.endpoints()])


# ----------------------------------------------------------------------
# Optimizer preservation
# ----------------------------------------------------------------------
class TestOptimizerProperties:
    @settings(deadline=None, max_examples=40)
    @given(graphs(max_nodes=6, max_edges=10), st.sampled_from(list(_LABELS)), st.data())
    def test_rewrites_preserve_semantics(self, graph, label, data) -> None:
        restrictor = data.draw(
            st.sampled_from([Restrictor.TRAIL, Restrictor.ACYCLIC, Restrictor.SIMPLE])
        )
        name = data.draw(st.sampled_from(list(string.ascii_lowercase[:6])))
        plan = Selection(
            prop_of_first("name", name) & length_at_most(3),
            Union(
                Recursive(Selection(label_of_edge(1, label), EdgesScan()), restrictor),
                Join(
                    Selection(label_of_edge(1, label), EdgesScan()),
                    EdgesScan(),
                ),
            ),
        )
        optimized = optimize(plan).optimized
        assert evaluate_to_paths(plan, graph) == evaluate_to_paths(optimized, graph)


# ----------------------------------------------------------------------
# Physical pipeline equivalence
# ----------------------------------------------------------------------
class TestPhysicalPipelineProperties:
    @settings(deadline=None, max_examples=40)
    @given(graphs(max_nodes=6, max_edges=10), st.sampled_from(list(_LABELS)), st.data())
    def test_pipeline_matches_logical_evaluator(self, graph, label, data) -> None:
        from repro.engine.physical import execute_pipeline

        restrictor = data.draw(
            st.sampled_from([Restrictor.TRAIL, Restrictor.ACYCLIC, Restrictor.SHORTEST])
        )
        plan = Union(
            Recursive(Selection(label_of_edge(1, label), EdgesScan()), restrictor),
            Join(Selection(label_of_edge(1, label), EdgesScan()), EdgesScan()),
        )
        assert execute_pipeline(plan, graph) == evaluate_to_paths(plan, graph)

    @settings(deadline=None, max_examples=30)
    @given(graphs(max_nodes=6, max_edges=10))
    def test_binding_table_is_lossless_on_endpoints(self, graph) -> None:
        from repro.engine.results import bind_paths

        paths = recursive_closure(PathSet.edges_of(graph), Restrictor.ACYCLIC)
        table = bind_paths(paths)
        assert len(table) == len(paths)
        assert set(table.endpoints()) == {path.endpoints() for path in paths}
        assert sum(table.group_sizes().values()) == len(paths)


# ----------------------------------------------------------------------
# Set-operator laws (Intersection / Difference extensions)
# ----------------------------------------------------------------------
class TestSetOperatorProperties:
    @settings(deadline=None, max_examples=40)
    @given(graphs(max_nodes=6, max_edges=10), st.sampled_from(list(_LABELS)))
    def test_intersection_and_difference_partition_the_left_operand(self, graph, label) -> None:
        from repro.algebra.expressions import Difference, Intersection

        left = Recursive(Selection(label_of_edge(1, label), EdgesScan()), Restrictor.TRAIL)
        right = Recursive(Selection(label_of_edge(1, label), EdgesScan()), Restrictor.ACYCLIC)
        left_paths = evaluate_to_paths(left, graph)
        common = evaluate_to_paths(Intersection(left, right), graph)
        only_left = evaluate_to_paths(Difference(left, right), graph)
        assert common.union(only_left) == left_paths
        assert len(common) + len(only_left) == len(left_paths)
        assert not (common & only_left)
