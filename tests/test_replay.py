"""Tests for the record/replay harness (`repro.bench.replay`).

The harness's job is to be a *regression oracle*: record a query stream
once, replay it under two configurations, and fail loudly on any byte-level
divergence.  These tests pin down the three properties that make that
trustworthy:

1. the trace format is lossless (record → save → load → replay reproduces
   the exact workload);
2. the differential gate is quiet on genuinely identical replays (no false
   alarms from scheduling nondeterminism);
3. the gate *fires* when an answer is wrong — proven by injecting a
   corruption via ``ReplayConfig.result_transform`` and watching the exact
   event index surface in the diff.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.replay import (
    ReplayConfig,
    Trace,
    TraceEvent,
    TraceRecorder,
    build_trace_graph,
    diff_outcomes,
    generate_ldbc_trace,
    replay_trace,
    run_replay,
)
from repro.api import connect
from repro.datasets.ldbc import LDBCParameters, ldbc_like_graph
from repro.service import LatencyHistogram

SMALL = LDBCParameters(num_persons=20, num_messages=30, num_forums=2, seed=11)


@pytest.fixture(scope="module")
def small_trace() -> Trace:
    return generate_ldbc_trace(num_events=12, seed=3, parameters=SMALL)


# ----------------------------------------------------------------------
# Trace format
# ----------------------------------------------------------------------
class TestTraceFormat:
    def test_round_trip_is_lossless(self, small_trace, tmp_path) -> None:
        path = str(tmp_path / "trace.jsonl")
        small_trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == small_trace.name
        assert loaded.seed == small_trace.seed
        assert loaded.graph_spec == small_trace.graph_spec
        assert loaded.events == small_trace.events  # frozen dataclass equality

    def test_round_trip_preserves_optional_fields(self, tmp_path) -> None:
        recorder = TraceRecorder("caps", graph_spec={"kind": "ldbc", "seed": 1})
        recorder.record(
            "MATCH ANY SHORTEST TRAIL p = (?x {name: $name})-[Knows]->+(?y)",
            {"name": "Moe"},
            version=7,
            limit=10,
            max_length=3,
            at=1.25,
        )
        path = str(tmp_path / "caps.jsonl")
        recorder.trace.save(path)
        event = Trace.load(path).events[0]
        assert event.params == {"name": "Moe"}
        assert event.version == 7
        assert event.limit == 10
        assert event.max_length == 3
        assert event.at == 1.25

    def test_file_is_one_json_object_per_line(self, small_trace, tmp_path) -> None:
        path = str(tmp_path / "trace.jsonl")
        small_trace.save(path)
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == 1
        assert header["events"] == len(lines) - 1
        for line in lines[1:]:
            assert isinstance(json.loads(line), dict)

    def test_load_rejects_unknown_format(self, tmp_path) -> None:
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"format": 99, "events": 0}) + "\n")
        with pytest.raises(ValueError, match="format"):
            Trace.load(str(path))

    def test_load_rejects_truncated_trace(self, small_trace, tmp_path) -> None:
        path = tmp_path / "cut.jsonl"
        full = str(tmp_path / "full.jsonl")
        small_trace.save(full)
        with open(full, encoding="utf-8") as handle:
            lines = handle.readlines()
        path.write_text("".join(lines[:-1]))  # drop the last event
        with pytest.raises(ValueError, match="declares"):
            Trace.load(str(path))

    def test_load_rejects_empty_file(self, tmp_path) -> None:
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            Trace.load(str(path))


# ----------------------------------------------------------------------
# Trace generation and recording
# ----------------------------------------------------------------------
class TestGeneration:
    def test_generator_is_deterministic(self) -> None:
        first = generate_ldbc_trace(num_events=10, seed=5, parameters=SMALL)
        second = generate_ldbc_trace(num_events=10, seed=5, parameters=SMALL)
        assert first.events == second.events
        assert first.graph_spec == second.graph_spec

    def test_different_seeds_differ(self) -> None:
        first = generate_ldbc_trace(num_events=10, seed=5, parameters=SMALL)
        second = generate_ldbc_trace(num_events=10, seed=6, parameters=SMALL)
        assert first.events != second.events

    def test_parameters_name_persons_in_the_graph(self, small_trace) -> None:
        graph = build_trace_graph(small_trace)
        present = {
            node.properties.get("name")
            for node in graph.nodes()
            if node.label == "Person"
        }
        for event in small_trace.events:
            for value in event.params.values():
                assert value in present

    def test_pacing_gaps_are_monotonic(self) -> None:
        trace = generate_ldbc_trace(
            num_events=10, seed=5, parameters=SMALL, mean_gap_seconds=0.5
        )
        offsets = [event.at for event in trace.events]
        assert offsets == sorted(offsets)
        assert offsets[-1] > 0.0

    def test_build_trace_graph_rejects_unknown_kind(self) -> None:
        with pytest.raises(ValueError, match="unknown graph_spec"):
            build_trace_graph(Trace(name="x", graph_spec={"kind": "martian"}))


class TestRecorder:
    def test_wrap_records_and_still_executes(self) -> None:
        graph = ldbc_like_graph(SMALL)
        db = connect(graph)
        recorder = TraceRecorder("wrapped", graph_spec={"kind": "ldbc"})
        try:
            with db.session() as session:
                recording = recorder.wrap(session)
                result = recording.query(
                    "MATCH ALL TRAIL p = (?x)-[Has_member]->(?y)"
                )
                rows = len(result)
                # Attribute passthrough: the proxy is still a session.
                assert recording.version == session.version
                pinned = session.version
        finally:
            db.close()
        assert rows > 0
        assert len(recorder.trace.events) == 1
        event = recorder.trace.events[0]
        assert "Has_member" in event.text
        assert event.version == pinned
        assert event.index == 0

    def test_record_assigns_dense_indices(self) -> None:
        recorder = TraceRecorder("dense")
        for _ in range(4):
            recorder.record("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert [event.index for event in recorder.trace.events] == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# Replay and the differential gate
# ----------------------------------------------------------------------
class TestReplay:
    def test_same_trace_twice_yields_zero_diffs(self, small_trace) -> None:
        graph = build_trace_graph(small_trace)
        config = ReplayConfig(name="threads", execution_mode="threads", workers=2)
        first = replay_trace(small_trace, config, graph=graph)
        second = replay_trace(small_trace, config, graph=graph)
        assert diff_outcomes(first, second) == []
        assert first.failures == 0

    def test_thread_and_serial_configs_agree(self, small_trace) -> None:
        report = run_replay(
            small_trace,
            [
                ReplayConfig(name="threads", execution_mode="threads", workers=2),
                ReplayConfig(name="serial", execution_mode="threads", workers=0),
            ],
        )
        assert report["identical"] is True
        assert report["diffs"]["serial"] == []
        assert report["baseline"] == "threads"
        assert len(report["entries"]) == 2

    def test_round_trip_replay_reproduces_digests(self, small_trace, tmp_path) -> None:
        """Record → save → load → replay matches a replay of the original."""
        path = str(tmp_path / "trace.jsonl")
        small_trace.save(path)
        loaded = Trace.load(path)
        graph = build_trace_graph(small_trace)
        config = ReplayConfig(name="threads", workers=2)
        original = replay_trace(small_trace, config, graph=graph)
        reloaded = replay_trace(loaded, config, graph=graph)
        assert diff_outcomes(original, reloaded) == []

    def test_injected_wrong_answer_is_caught(self, small_trace) -> None:
        """The regression oracle: corrupt one answer, see exactly it flagged."""

        def corrupt(rendering: str, event: TraceEvent) -> str:
            if event.index == 7:
                return rendering + "\n(ghost)-[Knows]->(row)"
            return rendering

        report = run_replay(
            small_trace,
            [
                ReplayConfig(name="honest", workers=2),
                ReplayConfig(name="buggy", workers=2, result_transform=corrupt),
            ],
        )
        assert report["identical"] is False
        mismatches = report["diffs"]["buggy"]
        assert [record["index"] for record in mismatches] == [7]
        assert mismatches[0]["kind"] == "digest"
        assert mismatches[0]["baseline"] != mismatches[0]["candidate"]

    def test_lost_events_reported_as_length_mismatch(self, small_trace) -> None:
        graph = build_trace_graph(small_trace)
        config = ReplayConfig(name="threads", workers=2)
        full = replay_trace(small_trace, config, graph=graph)
        truncated = Trace(
            name=small_trace.name,
            events=small_trace.events[:-2],
            graph_spec=small_trace.graph_spec,
            seed=small_trace.seed,
        )
        partial = replay_trace(truncated, config, graph=graph)
        mismatches = diff_outcomes(full, partial)
        assert mismatches[0]["kind"] == "length"
        assert mismatches[0]["baseline"] == str(len(small_trace.events))

    def test_run_replay_requires_a_config(self, small_trace) -> None:
        with pytest.raises(ValueError, match="at least one"):
            run_replay(small_trace, [])

    def test_event_results_carry_latency_and_counts(self, small_trace) -> None:
        result = replay_trace(small_trace, ReplayConfig(name="threads", workers=2))
        assert len(result.events) == len(small_trace.events)
        assert all(event.latency_seconds >= 0.0 for event in result.events)
        assert any(event.count > 0 for event in result.events)
        assert result.latency.count == len(small_trace.events)
        assert result.throughput_qps > 0.0


class TestBenchReport:
    def test_json_report_contents(self, small_trace, tmp_path) -> None:
        path = str(tmp_path / "BENCH_replay.json")
        run_replay(
            small_trace,
            [
                ReplayConfig(name="threads", workers=2),
                ReplayConfig(name="serial", workers=0),
            ],
            json_path=path,
        )
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["benchmark"] == "replay"
        assert payload["metadata"]["identical"] is True
        assert payload["metadata"]["baseline"] == "threads"
        assert payload["metadata"]["mismatches"] == {"serial": 0}
        names = [entry["config"] for entry in payload["entries"]]
        assert names == ["threads", "serial"]
        for entry in payload["entries"]:
            assert entry["events"] == len(small_trace.events)
            assert entry["failures"] == 0
            assert entry["throughput_qps"] > 0
            assert entry["latency_p50_ms"] >= 0
            assert entry["latency_p95_ms"] >= entry["latency_p50_ms"]
            assert entry["latency_p99_ms"] >= entry["latency_p95_ms"]


# ----------------------------------------------------------------------
# The histogram underneath the latency numbers
# ----------------------------------------------------------------------
class TestLatencyHistogram:
    def test_percentiles_bracket_observations(self) -> None:
        histogram = LatencyHistogram()
        for milliseconds in (1, 2, 3, 4, 5, 6, 7, 8, 9, 1000):
            histogram.observe(milliseconds / 1e3)
        assert histogram.count == 10
        assert histogram.percentile(1.0) == pytest.approx(1.0)
        # p50 overestimates by at most one factor-2 bucket.
        assert 0.004 <= histogram.percentile(0.5) <= 0.016
        assert histogram.percentile(0.99) == pytest.approx(1.0)

    def test_empty_histogram_is_all_zeros(self) -> None:
        summary = LatencyHistogram().summary()
        assert summary["count"] == 0
        assert summary["p99_seconds"] == 0.0
        assert summary["mean_seconds"] == 0.0
        assert summary["buckets"] == {}

    def test_negative_observations_clamp(self) -> None:
        histogram = LatencyHistogram()
        histogram.observe(-1.0)
        assert histogram.count == 1
        assert histogram.max_seconds == 0.0

    def test_summary_round_trip(self) -> None:
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.5, 3.0):
            histogram.observe(value)
        rebuilt = LatencyHistogram.from_summary(histogram.summary())
        assert rebuilt.summary() == histogram.summary()

    def test_merge_summaries_recomputes_percentiles(self) -> None:
        fast, slow = LatencyHistogram(), LatencyHistogram()
        for _ in range(99):
            fast.observe(0.001)
        slow.observe(10.0)
        merged = LatencyHistogram.merge_summaries(fast.summary(), slow.summary())
        assert merged["count"] == 100
        assert merged["max_seconds"] == 10.0
        # The single slow outlier is exactly the tail: p99 must see it.
        assert merged["p99_seconds"] < 10.0 or merged["p99_seconds"] == 10.0
        assert merged["p50_seconds"] < 0.01
        assert LatencyHistogram.from_summary(merged).count == 100

    def test_invalid_quantile_rejected(self) -> None:
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestReplayCli:
    def test_generate_then_run_round_trip(self, tmp_path, capsys) -> None:
        from repro.cli import main

        trace_path = str(tmp_path / "trace.jsonl")
        json_path = str(tmp_path / "BENCH_replay.json")
        assert (
            main(
                [
                    "replay",
                    "generate",
                    "--output",
                    trace_path,
                    "--events",
                    "8",
                    "--seed",
                    "3",
                    "--persons",
                    "20",
                    "--messages",
                    "30",
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "replay",
                "run",
                trace_path,
                "--config",
                "threads=threads:2",
                "--config",
                "serial=threads:0",
                "--json",
                json_path,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "byte-identical" in captured.out
        with open(json_path, encoding="utf-8") as handle:
            assert json.load(handle)["metadata"]["identical"] is True

    def test_run_rejects_duplicate_config_names(self, tmp_path, capsys) -> None:
        from repro.cli import main

        trace_path = str(tmp_path / "trace.jsonl")
        main(["replay", "generate", "--output", trace_path, "--events", "2",
              "--persons", "10", "--messages", "10"])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(
                [
                    "replay",
                    "run",
                    trace_path,
                    "--config",
                    "same=threads:2",
                    "--config",
                    "same=threads:0",
                ]
            )
