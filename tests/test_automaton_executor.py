"""The product-graph automaton executor: shapes, parity, streaming, routing.

Complements the three-way sweeps in ``test_differential.py`` with targeted
coverage of the new subsystem itself: the plan → regex decompiler and shape
classifier, cost-based and portfolio selection, fallback attribution, limit
semantics, the frozen-graph int route, the fork boundary of the process pool,
and — the acceptance-criterion test — a cursor proving SHORTEST rows stream
out *before* the closure could possibly have completed.
"""

from __future__ import annotations

import pytest

from graph_corpus import closure_corpus
from repro.algebra.expressions import NodesScan, Recursive, Union
from repro.datasets.generators import cycle_graph
from repro.engine.automaton import AutomatonExecutor, classify_plan, plan_supported
from repro.engine.engine import PathQueryEngine
from repro.engine.executor import (
    EXECUTOR_NAMES,
    MaterializeExecutor,
    choose_executor,
    resolve_executor,
)
from repro.engine.router import PortfolioRouter
from repro.errors import BudgetExceeded
from repro.execution import QueryBudget
from repro.graph.model import PropertyGraph
from repro.optimizer.cost import CostModel
from repro.rpq.compile import CompileOptions, compile_regex
from repro.semantics.restrictors import Restrictor

LABELS = ("Knows", "Likes")
CORPUS = closure_corpus(labels=LABELS)


def _plan(regex: str, restrictor: Restrictor, max_length: int | None = 3):
    return compile_regex(regex, CompileOptions(restrictor=restrictor, max_length=max_length))


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


def test_classifier_covers_compiled_regex_shapes() -> None:
    spec = classify_plan(_plan("(Knows|Likes)+", Restrictor.SHORTEST))
    assert spec is not None and spec.kind == "closure"
    assert spec.restrictor is Restrictor.SHORTEST and spec.max_length == 3

    spec = classify_plan(_plan("Knows*", Restrictor.TRAIL, None))
    assert spec is not None and spec.kind == "closure_with_nodes"

    spec = classify_plan(_plan("Knows/Likes", Restrictor.WALK, None))
    assert spec is not None and spec.kind == "walks" and spec.max_length == 2


def test_classifier_rejects_out_of_envelope_plans() -> None:
    # An unbounded ϕWalk must fall back (the evaluator's cycle guard raises).
    assert classify_plan(_plan("Knows+", Restrictor.WALK, None)) is None
    # ...but the engine default bound makes it native again.
    assert classify_plan(_plan("Knows+", Restrictor.WALK, None), 4) is not None
    # Nested recursion: the inner plan is not ϕ-free.
    nested = Recursive(_plan("Knows+", Restrictor.TRAIL, 2), Restrictor.TRAIL, 2)
    assert classify_plan(nested) is None
    # A union whose right arm is not NodesScan is not the R* shape.
    assert classify_plan(Union(_plan("Knows+", Restrictor.TRAIL, 2), NodesScan())) is not None
    assert plan_supported(nested) is False


def test_classifier_recognizes_all_shortest_crown() -> None:
    engine = PathQueryEngine(CORPUS[0])
    explain = engine.explain(
        "MATCH ALL SHORTEST p = (?x)-[(Knows|Likes)+]->(?y)", max_length=3
    )
    spec = classify_plan(explain.optimized_plan)
    assert spec is not None and spec.crowned and spec.restrictor is Restrictor.SHORTEST


# ---------------------------------------------------------------------------
# Selection and routing
# ---------------------------------------------------------------------------


def test_auto_routes_shortest_heavy_native_plans_to_automaton() -> None:
    graph = CORPUS[0]
    cost_model = CostModel(graph)
    assert choose_executor(_plan("(Knows|Likes)+", Restrictor.SHORTEST), cost_model) == "automaton"
    # Non-SHORTEST recursion keeps its historical choice.
    assert choose_executor(_plan("Knows+", Restrictor.TRAIL, None), cost_model) == "materialize"
    # SHORTEST-heavy but out of envelope (nested ϕ): classical routing.
    nested = Recursive(_plan("Knows+", Restrictor.TRAIL, 2), Restrictor.SHORTEST, 2)
    assert choose_executor(nested, cost_model) != "automaton"


def test_engine_accepts_automaton_executor_name() -> None:
    assert "automaton" in EXECUTOR_NAMES
    assert resolve_executor("automaton").name == "automaton"
    engine = PathQueryEngine(CORPUS[0])
    result = engine.query(
        "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)", executor="automaton"
    )
    assert result.statistics.executor == "automaton"


def test_race_mode_adds_automaton_as_third_member() -> None:
    graph = CORPUS[0]
    cost_model = CostModel(graph)
    router = PortfolioRouter(race_band=None)
    # SHORTEST-heavy native plan: automaton leads, hedged by the classical pick.
    decision = router.decide(_plan("(Knows|Likes)+", Restrictor.SHORTEST), cost_model, "race")
    assert decision.racing and decision.executors[0] == "automaton"
    assert len(decision.executors) == 2
    # A plan with *some* ϕShortest work but a classical favorite races three.
    engine = PathQueryEngine(graph)
    crown = engine.explain(
        "MATCH ALL SHORTEST p = (?x)-[Knows+]->(?y)", max_length=3
    ).optimized_plan
    decision = router.decide(crown, cost_model, "race")
    assert decision.racing
    assert "automaton" in decision.executors
    # Explicit request still forces single dispatch.
    decision = router.decide(crown, cost_model, "race", requested="automaton")
    assert decision.executors == ("automaton",) and not decision.racing


# ---------------------------------------------------------------------------
# Execution semantics
# ---------------------------------------------------------------------------


def test_fallback_delegates_but_keeps_attribution() -> None:
    graph = CORPUS[1]
    nested = Recursive(_plan("Knows+", Restrictor.TRAIL, 2), Restrictor.TRAIL, 2)
    via_automaton = AutomatonExecutor().execute(nested, graph)
    via_materialize = MaterializeExecutor().execute(nested, graph)
    assert via_automaton.paths == via_materialize.paths
    assert via_automaton.statistics.executor == "automaton"


def test_limit_truncates_like_the_pipeline() -> None:
    graph = CORPUS[2]
    plan = _plan("(Knows|Likes)+", Restrictor.SHORTEST)
    full = AutomatonExecutor().execute(plan, graph)
    assert full.total_paths == len(full.paths)
    limit = max(1, len(full.paths) // 2)
    cut = AutomatonExecutor().execute(plan, graph, limit=limit)
    assert len(cut.paths) == limit
    assert cut.truncated and cut.total_paths is None
    assert set(cut.paths) <= set(full.paths)


def test_frozen_graph_uses_int_product_route() -> None:
    graph = CORPUS[3].copy()
    frozen = graph.copy()
    frozen.freeze()
    plan = _plan("(Knows|Likes)+", Restrictor.SHORTEST, None)
    on_object = AutomatonExecutor().execute(plan, graph)
    on_frozen = AutomatonExecutor().execute(plan, frozen)
    assert on_object.paths == on_frozen.paths


# ---------------------------------------------------------------------------
# Streaming (the acceptance-criterion test)
# ---------------------------------------------------------------------------


def test_shortest_cursor_streams_before_closure_completes() -> None:
    """``fetchmany(k)`` returns SHORTEST rows before the closure can finish.

    The proof is by budget arithmetic: the visited cap is set low enough that
    *completing* the product search is impossible (draining the cursor raises
    ``BudgetExceeded``), yet the first rows come out fine — so they were
    produced by streaming level-completion, not by materializing the closure.
    A blocking executor fails the same fetch outright, which is also pinned.
    """
    graph = cycle_graph(24)
    engine = PathQueryEngine(graph)
    text = "MATCH ALL SHORTEST p = (?x)-[Knows+]->(?y)"

    budget = QueryBudget.from_timeout(3600.0, max_visited=120)
    cursor = engine.open_cursor(text, max_length=23, budget=budget)
    assert cursor.executor == "automaton"
    first_rows = cursor.fetchmany(4)
    assert len(first_rows) == 4
    assert all(path.len() <= 1 for path in first_rows)
    with pytest.raises(BudgetExceeded):
        cursor.fetchall()

    # The same budget on the blocking evaluator cannot produce a single row.
    blocking_budget = QueryBudget.from_timeout(3600.0, max_visited=120)
    with pytest.raises(BudgetExceeded):
        engine.open_cursor(
            text, max_length=23, executor="materialize", budget=blocking_budget
        ).fetchmany(4)


def test_shortest_cursor_drains_to_full_result() -> None:
    graph = CORPUS[4]
    engine = PathQueryEngine(graph)
    text = "MATCH ALL SHORTEST p = (?x)-[(Knows|Likes)+]->(?y)"
    streamed = engine.open_cursor(text, max_length=3).fetchall()
    eager = engine.query(text, max_length=3, executor="materialize")
    assert {p.interleaved() for p in streamed} == {
        p.interleaved() for p in eager.paths
    }


def test_shortest_cursor_close_releases_the_stream() -> None:
    engine = PathQueryEngine(CORPUS[5])
    cursor = engine.open_cursor(
        "MATCH ALL SHORTEST p = (?x)-[(Knows|Likes)+]->(?y)", max_length=3
    )
    cursor.fetchone()
    cursor.close()
    assert cursor.closed


# ---------------------------------------------------------------------------
# Fork boundary
# ---------------------------------------------------------------------------


def test_automaton_choice_survives_the_process_pool() -> None:
    from repro.service.service import QueryService

    graph = CORPUS[6]
    service = QueryService(graph, workers=1, execution_mode="processes")
    try:
        outcome = service.submit(
            "MATCH ALL SHORTEST p = (?x)-[(Knows|Likes)+]->(?y)",
            max_length=3,
            executor="automaton",
        ).result()
        assert outcome.ok, outcome.error
        assert outcome.executor == "automaton"
        assert outcome.worker.startswith("proc-")
        engine = PathQueryEngine(graph)
        expected = engine.query(
            "MATCH ALL SHORTEST p = (?x)-[(Knows|Likes)+]->(?y)",
            max_length=3,
            executor="materialize",
        )
        assert outcome.paths == expected.paths
    finally:
        service.close()
