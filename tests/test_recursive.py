"""Tests for the recursive operator ϕ and its five restrictor variants (Section 4, Table 3)."""

from __future__ import annotations

import pytest

from repro.errors import NonTerminatingQueryError
from repro.paths.path import Path
from repro.paths.pathset import PathSet
from repro.paths.predicates import is_acyclic, is_simple, is_trail
from repro.semantics.restrictors import (
    Restrictor,
    filter_by_restrictor,
    recursive_closure,
    recursive_closure_postfilter,
    shortest_paths_per_pair,
)


def _table3_path(graph, *sequence: str) -> Path:
    return Path.from_interleaved(graph, sequence)


class TestWalkClosure:
    def test_walk_on_acyclic_input_terminates_without_bound(self, small_chain) -> None:
        edges = PathSet.edges_of(small_chain)
        closure = recursive_closure(edges, Restrictor.WALK)
        # A chain of 5 nodes has 4 + 3 + 2 + 1 = 10 sub-paths of length >= 1.
        assert len(closure) == 10

    def test_walk_on_cyclic_input_raises_without_bound(self, knows_edges) -> None:
        with pytest.raises(NonTerminatingQueryError):
            recursive_closure(knows_edges, Restrictor.WALK)

    def test_walk_with_bound_terminates_on_cycles(self, knows_edges) -> None:
        closure = recursive_closure(knows_edges, Restrictor.WALK, max_length=4)
        assert all(path.len() <= 4 for path in closure)
        assert len(closure) > len(knows_edges)

    def test_walk_closure_contains_base(self, knows_edges) -> None:
        closure = recursive_closure(knows_edges, Restrictor.WALK, max_length=3)
        for path in knows_edges:
            assert path in closure

    def test_walk_includes_non_trail_paths(self, figure1, knows_edges) -> None:
        closure = recursive_closure(knows_edges, Restrictor.WALK, max_length=4)
        # p4 repeats edge e2 (a walk but not a trail).
        p4 = _table3_path(figure1, "n1", "e1", "n2", "e2", "n3", "e3", "n2", "e2", "n3")
        assert p4 in closure

    def test_zero_length_base_is_fixed_point(self, figure1) -> None:
        nodes = PathSet.nodes_of(figure1)
        assert recursive_closure(nodes, Restrictor.WALK) == nodes


class TestTable3Membership:
    """Membership of the fourteen named paths of Table 3 under each semantics."""

    @pytest.fixture
    def table3(self, figure1):
        make = lambda *seq: _table3_path(figure1, *seq)
        return {
            "p1": make("n1", "e1", "n2"),
            "p2": make("n1", "e1", "n2", "e2", "n3", "e3", "n2"),
            "p3": make("n1", "e1", "n2", "e2", "n3"),
            "p4": make("n1", "e1", "n2", "e2", "n3", "e3", "n2", "e2", "n3"),
            "p5": make("n1", "e1", "n2", "e4", "n4"),
            "p6": make("n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4"),
            "p7": make("n2", "e2", "n3", "e3", "n2"),
            "p8": make("n2", "e2", "n3", "e3", "n2", "e2", "n3", "e3", "n2"),
            "p9": make("n2", "e2", "n3"),
            "p10": make("n2", "e2", "n3", "e3", "n2", "e2", "n3"),
            "p11": make("n2", "e4", "n4"),
            "p12": make("n2", "e2", "n3", "e3", "n2", "e4", "n4"),
            "p13": make("n3", "e3", "n2", "e4", "n4"),
            "p14": make("n3", "e3", "n2", "e2", "n3", "e3", "n2", "e4", "n4"),
        }

    def test_all_table3_paths_are_walks(self, knows_edges, table3) -> None:
        walks = recursive_closure(knows_edges, Restrictor.WALK, max_length=8)
        for name, path in table3.items():
            assert path in walks, f"{name} should be a Knows+ walk"

    def test_trail_membership(self, knows_edges, table3) -> None:
        trails = recursive_closure(knows_edges, Restrictor.TRAIL)
        expected_trails = {"p1", "p2", "p3", "p5", "p6", "p7", "p9", "p11", "p12", "p13"}
        for name, path in table3.items():
            assert (path in trails) == (name in expected_trails), name

    def test_acyclic_membership(self, knows_edges, table3) -> None:
        acyclic = recursive_closure(knows_edges, Restrictor.ACYCLIC)
        expected = {"p1", "p3", "p5", "p9", "p11", "p13"}
        for name, path in table3.items():
            assert (path in acyclic) == (name in expected), name

    def test_simple_membership(self, knows_edges, table3) -> None:
        simple = recursive_closure(knows_edges, Restrictor.SIMPLE)
        # Simple adds the closed cycle p7 to the acyclic paths.
        expected = {"p1", "p3", "p5", "p7", "p9", "p11", "p13"}
        for name, path in table3.items():
            assert (path in simple) == (name in expected), name

    def test_shortest_membership(self, knows_edges, table3) -> None:
        shortest = recursive_closure(knows_edges, Restrictor.SHORTEST)
        # Shortest Knows+ paths per endpoint pair among the Table 3 paths.
        expected = {"p1", "p3", "p5", "p7", "p9", "p11", "p13"}
        for name, path in table3.items():
            assert (path in shortest) == (name in expected), name

    def test_intro_path1_is_simple_answer(self, knows_edges, figure1) -> None:
        simple = recursive_closure(knows_edges, Restrictor.SIMPLE)
        path1 = _table3_path(figure1, "n1", "e1", "n2", "e4", "n4")
        assert path1 in simple


class TestRestrictedClosureInvariants:
    def test_trail_closure_contains_only_trails(self, knows_edges) -> None:
        assert all(is_trail(path) for path in recursive_closure(knows_edges, Restrictor.TRAIL))

    def test_acyclic_closure_contains_only_acyclic(self, knows_edges) -> None:
        assert all(
            is_acyclic(path) for path in recursive_closure(knows_edges, Restrictor.ACYCLIC)
        )

    def test_simple_closure_contains_only_simple(self, knows_edges) -> None:
        assert all(is_simple(path) for path in recursive_closure(knows_edges, Restrictor.SIMPLE))

    def test_closures_are_nested(self, knows_edges) -> None:
        trails = recursive_closure(knows_edges, Restrictor.TRAIL)
        acyclic = recursive_closure(knows_edges, Restrictor.ACYCLIC)
        simple = recursive_closure(knows_edges, Restrictor.SIMPLE)
        # acyclic ⊆ simple ⊆ trail? No: simple ⊆ trail only when no parallel
        # edges close a 2-cycle; but acyclic ⊆ simple always, and acyclic ⊆ trail.
        for path in acyclic:
            assert path in simple
            assert path in trails

    def test_terminates_on_cyclic_graphs(self, small_cycle) -> None:
        edges = PathSet.edges_of(small_cycle)
        for restrictor in (Restrictor.TRAIL, Restrictor.ACYCLIC, Restrictor.SIMPLE, Restrictor.SHORTEST):
            closure = recursive_closure(edges, restrictor)
            assert len(closure) > 0

    def test_max_length_respected_by_restricted_closures(self, knows_edges) -> None:
        trails = recursive_closure(knows_edges, Restrictor.TRAIL, max_length=2)
        assert all(path.len() <= 2 for path in trails)


class TestShortestClosure:
    def test_one_length_per_pair(self, knows_edges) -> None:
        shortest = recursive_closure(knows_edges, Restrictor.SHORTEST)
        best: dict[tuple[str, str], int] = {}
        for path in shortest:
            best.setdefault(path.endpoints(), path.len())
            assert path.len() == best[path.endpoints()]

    def test_all_equally_short_paths_returned(self, diamond) -> None:
        edges = PathSet.edges_of(diamond)
        shortest = recursive_closure(edges, Restrictor.SHORTEST)
        a_to_d = [path for path in shortest if path.endpoints() == ("a", "d")]
        # The direct edge (length 1) beats the two length-2 paths.
        assert len(a_to_d) == 1
        assert a_to_d[0].len() == 1

    def test_ties_are_all_kept(self, small_grid) -> None:
        edges = PathSet.edges_of(small_grid)
        shortest = recursive_closure(edges, Restrictor.SHORTEST)
        corner_paths = [
            path for path in shortest if path.endpoints() == ("v0_0", "v1_1")
        ]
        # Two equal-length (right-down / down-right) shortest paths.
        assert len(corner_paths) == 2
        assert all(path.len() == 2 for path in corner_paths)

    def test_shortest_terminates_on_cycles_without_bound(self, small_cycle) -> None:
        edges = PathSet.edges_of(small_cycle)
        shortest = recursive_closure(edges, Restrictor.SHORTEST)
        # n*(n-1) ordered pairs plus n full cycles back to the start node.
        assert len(shortest) == 4 * 3 + 4

    def test_agreement_with_postfilter_oracle(self, knows_edges) -> None:
        pruned = recursive_closure(knows_edges, Restrictor.SHORTEST)
        oracle = recursive_closure_postfilter(knows_edges, Restrictor.SHORTEST, max_length=6)
        assert pruned == oracle

    def test_dominated_base_paths_are_skipped_not_lost(self, figure1) -> None:
        """Regression for the insert-time domination skip on multigraph bases.

        The base mixes, for the same endpoint pair, paths of different
        lengths: a direct edge n2->n4 (e4) next to the two-edge detour
        n2->n3->n2->... — here modelled directly by composing paths of length
        1 and 2 between identical endpoints.  The dominated longer base path
        must be skipped at heap insert without changing the result.
        """
        direct = Path.from_edge(figure1, "e4")  # n2 -> n4, length 1
        detour = Path.from_interleaved(
            figure1, ("n2", "e2", "n3", "e3", "n2", "e4", "n4")
        )  # n2 -> n4, length 3 — dominated at insert time
        feeder = Path.from_edge(figure1, "e1")  # n1 -> n2
        base = PathSet([feeder, direct, detour])
        shortest = recursive_closure(base, Restrictor.SHORTEST)
        # Per pair only minimum lengths survive, including compositions
        # through the dominated pair's endpoints.
        assert direct in shortest
        assert detour not in shortest
        assert feeder.concat(direct) in shortest
        assert feeder.concat(detour) not in shortest
        oracle = recursive_closure_postfilter(base, Restrictor.SHORTEST, max_length=6)
        assert shortest == oracle

    def test_parallel_edges_of_equal_length_keep_ties(self) -> None:
        """Parallel edges between the same pair are all kept when equally short."""
        from repro.graph.builder import GraphBuilder

        graph = (
            GraphBuilder("parallel")
            .node("a", "Person")
            .node("b", "Person")
            .node("c", "Person")
            .edge("a", "b", "Knows", id="ab1")
            .edge("a", "b", "Knows", id="ab2")
            .edge("b", "c", "Knows", id="bc")
            .build()
        )
        edges = PathSet.edges_of(graph)
        shortest = recursive_closure(edges, Restrictor.SHORTEST)
        a_to_b = [path for path in shortest if path.endpoints() == ("a", "b")]
        a_to_c = [path for path in shortest if path.endpoints() == ("a", "c")]
        assert len(a_to_b) == 2  # both parallel edges tie
        assert len(a_to_c) == 2  # one two-edge composition per parallel edge
        oracle = recursive_closure_postfilter(edges, Restrictor.SHORTEST, max_length=3)
        assert shortest == oracle


class TestPostfilterOracle:
    @pytest.mark.parametrize(
        "restrictor", [Restrictor.TRAIL, Restrictor.ACYCLIC, Restrictor.SIMPLE]
    )
    def test_pruned_equals_postfiltered(self, knows_edges, restrictor) -> None:
        pruned = recursive_closure(knows_edges, restrictor)
        # max_length=4 covers every conforming Knows+ path of Figure 1
        # (only 4 Knows edges exist, so trails have length <= 4).
        oracle = recursive_closure_postfilter(knows_edges, restrictor, max_length=4)
        assert pruned == oracle

    def test_walk_postfilter_is_bounded_walk(self, knows_edges) -> None:
        walks = recursive_closure(knows_edges, Restrictor.WALK, max_length=3)
        assert recursive_closure_postfilter(knows_edges, Restrictor.WALK, max_length=3) == walks


class TestFilterHelpers:
    def test_filter_by_restrictor_walk_is_identity(self, knows_edges) -> None:
        assert filter_by_restrictor(knows_edges, Restrictor.WALK) == knows_edges

    def test_filter_by_restrictor_shortest(self, figure1) -> None:
        p_short = Path.from_edge(figure1, "e4")  # n2 -> n4, length 1
        p_long = Path.from_interleaved(figure1, ("n2", "e2", "n3", "e3", "n2", "e4", "n4"))
        filtered = filter_by_restrictor(PathSet([p_long, p_short]), Restrictor.SHORTEST)
        assert filtered == PathSet([p_short])

    def test_shortest_paths_per_pair_keeps_ties(self, figure1) -> None:
        p_e4 = Path.from_edge(figure1, "e4")   # n2 -> n4 via e4
        p_e10_like = Path.from_interleaved(figure1, ("n2", "e4", "n4"))
        assert shortest_paths_per_pair(PathSet([p_e4, p_e10_like])) == PathSet([p_e4])

    def test_restrictor_parsing(self) -> None:
        assert Restrictor.from_string("trail") is Restrictor.TRAIL
        assert Restrictor.from_string("WALK") is Restrictor.WALK
        with pytest.raises(ValueError):
            Restrictor.from_string("BANANA")
