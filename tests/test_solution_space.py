"""Tests for solution spaces, group-by, order-by and projection (Section 5).

The expectations encode Table 4 (group-by shapes), Table 5 (the worked γST
example), Table 6 (order-by ranks) and Algorithm 1 (projection).
"""

from __future__ import annotations

import pytest

from repro.algebra.solution_space import (
    ALL,
    GroupByKey,
    OrderByKey,
    ProjectionSpec,
    group_by,
    order_by,
    project,
)
from repro.errors import SolutionSpaceError
from repro.paths.path import Path
from repro.paths.pathset import PathSet
from repro.semantics.restrictors import Restrictor, recursive_closure


@pytest.fixture
def knows_trails(knows_edges) -> PathSet:
    """ϕTrail over the Knows edges of Figure 1 — the input of the Table 5 example."""
    return recursive_closure(knows_edges, Restrictor.TRAIL)


class TestGroupByKeys:
    def test_from_string(self) -> None:
        assert GroupByKey.from_string("st") is GroupByKey.ST
        assert GroupByKey.from_string("TS") is GroupByKey.ST  # order normalized
        assert GroupByKey.from_string("") is GroupByKey.NONE
        assert GroupByKey.from_string("stl") is GroupByKey.STL
        with pytest.raises(SolutionSpaceError):
            GroupByKey.from_string("X")

    def test_component_flags(self) -> None:
        assert GroupByKey.SL.uses_source and GroupByKey.SL.uses_length
        assert not GroupByKey.SL.uses_target
        assert GroupByKey.NONE.value == ""


class TestGroupByShapes:
    """Table 4: the solution-space organization induced by each ψ."""

    def test_no_key_single_partition_single_group(self, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.NONE)
        assert space.num_partitions() == 1
        assert space.num_groups() == 1
        assert space.num_paths() == len(knows_trails)

    def test_source_key(self, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.S)
        sources = {path.first() for path in knows_trails}
        assert space.num_partitions() == len(sources)
        # One group per partition.
        assert space.num_groups() == space.num_partitions()

    def test_target_key(self, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.T)
        targets = {path.last() for path in knows_trails}
        assert space.num_partitions() == len(targets)
        assert space.num_groups() == space.num_partitions()

    def test_length_key_single_partition_many_groups(self, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.L)
        lengths = {path.len() for path in knows_trails}
        assert space.num_partitions() == 1
        assert space.num_groups() == len(lengths)

    def test_source_target_key(self, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.ST)
        pairs = {path.endpoints() for path in knows_trails}
        assert space.num_partitions() == len(pairs)
        assert space.num_groups() == space.num_partitions()

    def test_source_target_length_key(self, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.STL)
        triples = {(path.first(), path.last(), path.len()) for path in knows_trails}
        pairs = {path.endpoints() for path in knows_trails}
        assert space.num_partitions() == len(pairs)
        assert space.num_groups() == len(triples)

    def test_source_length_and_target_length(self, knows_trails) -> None:
        space_sl = group_by(knows_trails, GroupByKey.SL)
        assert space_sl.num_partitions() == len({p.first() for p in knows_trails})
        space_tl = group_by(knows_trails, GroupByKey.TL)
        assert space_tl.num_partitions() == len({p.last() for p in knows_trails})
        # Groups subdivide by length inside each partition.
        assert space_sl.num_groups() >= space_sl.num_partitions()

    def test_group_by_accepts_strings(self, knows_trails) -> None:
        assert group_by(knows_trails, "ST").shape() == group_by(knows_trails, GroupByKey.ST).shape()

    def test_all_paths_preserved(self, knows_trails) -> None:
        for key in GroupByKey:
            space = group_by(knows_trails, key)
            assert space.all_paths() == knows_trails

    def test_initial_ranks_are_one(self, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.ST)
        for partition in space.partitions:
            assert partition.rank == 1
            for group in partition.groups:
                assert group.rank == 1
                assert all(rank == 1 for rank in group.path_ranks.values())


class TestTable5Example:
    """The worked γST example of Table 5 (restricted to the paths the paper lists)."""

    def test_partition_of_n1_n2_contains_p1_and_p2(self, figure1, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.ST)
        p1 = Path.from_interleaved(figure1, ("n1", "e1", "n2"))
        p2 = Path.from_interleaved(figure1, ("n1", "e1", "n2", "e2", "n3", "e3", "n2"))
        partition = space.partition_for(p1)
        assert partition is not None
        assert partition is space.partition_for(p2)
        group = space.group_for(p1)
        assert group is space.group_for(p2)
        assert group.min_length() == 1
        assert partition.min_length() == 1

    def test_min_lengths_match_table5(self, figure1, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.ST)
        expectations = {
            ("n1", "n2"): 1,  # part1: p1 (len 1), p2 (len 3)
            ("n1", "n3"): 2,  # part2-equivalent in the paper's numbering
            ("n1", "n4"): 2,  # part3: p5 (len 2), p6 (len 4)
            ("n2", "n2"): 2,  # part4: p7
            ("n2", "n3"): 1,  # part5: p9
            ("n2", "n4"): 1,  # part6: p11 (len 1), p12 (len 3)
            ("n3", "n4"): 2,  # part7: p13
        }
        by_endpoints = {partition.key: partition for partition in space.partitions}
        for (source, target), expected_min in expectations.items():
            partition = by_endpoints[(source, target)]
            assert partition.min_length() == expected_min


class TestOrderBy:
    def test_order_by_path_sets_path_ranks_to_length(self, knows_trails) -> None:
        space = order_by(group_by(knows_trails, GroupByKey.ST), OrderByKey.A)
        for group in space.groups():
            for path in group.paths:
                assert group.path_rank(path) == path.len()
            # Partition/group ranks untouched (Table 6, row A).
        assert all(partition.rank == 1 for partition in space.partitions)

    def test_order_by_group_sets_group_rank_to_min_length(self, knows_trails) -> None:
        space = order_by(group_by(knows_trails, GroupByKey.STL), OrderByKey.G)
        for partition in space.partitions:
            for group in partition.groups:
                assert group.rank == group.min_length()
        assert all(partition.rank == 1 for partition in space.partitions)

    def test_order_by_partition_sets_partition_rank(self, knows_trails) -> None:
        space = order_by(group_by(knows_trails, GroupByKey.ST), OrderByKey.P)
        for partition in space.partitions:
            assert partition.rank == partition.min_length()

    def test_combined_orders(self, knows_trails) -> None:
        space = order_by(group_by(knows_trails, GroupByKey.STL), OrderByKey.PGA)
        for partition in space.partitions:
            assert partition.rank == partition.min_length()
            for group in partition.groups:
                assert group.rank == group.min_length()
                for path in group.paths:
                    assert group.path_rank(path) == path.len()

    def test_order_by_does_not_mutate_input(self, knows_trails) -> None:
        original = group_by(knows_trails, GroupByKey.ST)
        order_by(original, OrderByKey.PGA)
        assert all(partition.rank == 1 for partition in original.partitions)

    def test_order_by_key_parsing(self) -> None:
        assert OrderByKey.from_string("ap") is OrderByKey.PA
        assert OrderByKey.from_string("pga") is OrderByKey.PGA
        with pytest.raises(SolutionSpaceError):
            OrderByKey.from_string("Z")


class TestProjection:
    def test_project_all(self, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.ST)
        assert project(space, ProjectionSpec(ALL, ALL, ALL)) == knows_trails

    def test_project_one_path_per_group_after_order(self, knows_trails) -> None:
        """The Figure 5 pipeline: γST, τA, π(*,*,1) returns one shortest path per pair."""
        space = order_by(group_by(knows_trails, GroupByKey.ST), OrderByKey.A)
        result = project(space, ProjectionSpec(ALL, ALL, 1))
        pairs = {path.endpoints() for path in knows_trails}
        assert len(result) == len(pairs)
        # Each projected path has the minimal length within its endpoint pair.
        by_pair = knows_trails.group_by_endpoints()
        for path in result:
            min_length = min(candidate.len() for candidate in by_pair[path.endpoints()])
            assert path.len() == min_length

    def test_project_without_order_takes_first_inserted(self, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.ST)
        result = project(space, ProjectionSpec(ALL, ALL, 1))
        assert len(result) == len({path.endpoints() for path in knows_trails})

    def test_project_limit_groups(self, knows_trails) -> None:
        space = order_by(group_by(knows_trails, GroupByKey.STL), OrderByKey.G)
        result = project(space, ProjectionSpec(ALL, 1, ALL))
        # All shortest paths per endpoint pair (ALL SHORTEST semantics).
        by_pair = knows_trails.group_by_endpoints()
        expected = sum(
            sum(1 for p in paths if p.len() == min(q.len() for q in paths))
            for paths in by_pair.values()
        )
        assert len(result) == expected

    def test_project_limit_partitions(self, knows_trails) -> None:
        space = order_by(group_by(knows_trails, GroupByKey.ST), OrderByKey.P)
        result = project(space, ProjectionSpec(1, ALL, ALL))
        partitions_by_rank = sorted(space.partitions, key=lambda p: p.rank)
        assert len(result) == len(partitions_by_rank[0].paths())

    def test_count_larger_than_available_keeps_all(self, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.ST)
        assert project(space, ProjectionSpec(999, 999, 999)) == knows_trails

    def test_projection_spec_validation(self) -> None:
        with pytest.raises(SolutionSpaceError):
            ProjectionSpec(0, ALL, ALL)
        with pytest.raises(SolutionSpaceError):
            ProjectionSpec(ALL, -3, ALL)
        with pytest.raises(SolutionSpaceError):
            ProjectionSpec(ALL, ALL, "two")

    def test_projection_accepts_tuples(self, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.ST)
        assert project(space, (ALL, ALL, 1)) == project(space, ProjectionSpec(ALL, ALL, 1))


class TestSolutionSpaceIntrospection:
    def test_shape_and_lookup(self, knows_trails) -> None:
        space = group_by(knows_trails, GroupByKey.ST)
        partitions, groups, paths = space.shape()
        assert partitions == groups
        assert paths == len(knows_trails)
        missing = Path.from_node(next(iter(knows_trails)).graph, "n5")
        assert space.partition_for(missing) is None
        assert space.group_for(missing) is None

    def test_empty_group_min_length_raises(self) -> None:
        from repro.algebra.solution_space import Group, Partition

        with pytest.raises(SolutionSpaceError):
            Group().min_length()
        with pytest.raises(SolutionSpaceError):
            Partition().min_length()
