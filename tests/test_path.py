"""Unit tests for paths and the Section 3.1 path operators."""

from __future__ import annotations

import pytest

from repro.errors import InvalidPathError, PathConcatenationError
from repro.paths import operators
from repro.paths.path import Path


class TestConstruction:
    def test_from_node(self, figure1) -> None:
        path = Path.from_node(figure1, "n1")
        assert path.len() == 0
        assert path.first() == path.last() == "n1"

    def test_from_edge(self, figure1) -> None:
        path = Path.from_edge(figure1, "e1")
        assert path.len() == 1
        assert path.first() == "n1"
        assert path.last() == "n2"

    def test_from_interleaved(self, figure1) -> None:
        path = Path.from_interleaved(figure1, ("n1", "e1", "n2", "e2", "n3"))
        assert path.len() == 2
        assert path.node_ids == ("n1", "n2", "n3")
        assert path.edge_ids == ("e1", "e2")

    def test_from_interleaved_even_length_rejected(self, figure1) -> None:
        with pytest.raises(InvalidPathError):
            Path.from_interleaved(figure1, ("n1", "e1"))

    def test_empty_path_rejected(self, figure1) -> None:
        with pytest.raises(InvalidPathError):
            Path(figure1, [])

    def test_node_edge_count_mismatch(self, figure1) -> None:
        with pytest.raises(InvalidPathError):
            Path(figure1, ["n1", "n2"], [])

    def test_unknown_node_rejected(self, figure1) -> None:
        with pytest.raises(InvalidPathError):
            Path(figure1, ["ghost"])

    def test_disconnected_edge_rejected(self, figure1) -> None:
        # e1 connects n1 to n2, not n1 to n3.
        with pytest.raises(InvalidPathError):
            Path(figure1, ["n1", "n3"], ["e1"])


class TestPathOperators:
    """The First/Last/Node/Edge/Len/Label/Prop operators of Section 3.1."""

    @pytest.fixture
    def path(self, figure1) -> Path:
        # (n1, e1, n2, e2, n3) — Moe knows Lisa knows Bart.
        return Path.from_interleaved(figure1, ("n1", "e1", "n2", "e2", "n3"))

    def test_first_and_last(self, path: Path) -> None:
        assert path.first() == "n1"
        assert path.last() == "n3"
        assert operators.first(path) == "n1"
        assert operators.last(path) == "n3"

    def test_node_positions_are_one_based(self, path: Path) -> None:
        assert path.node(1) == "n1"
        assert path.node(2) == "n2"
        assert path.node(3) == "n3"
        assert operators.node(path, 2) == "n2"

    def test_edge_positions_are_one_based(self, path: Path) -> None:
        assert path.edge(1) == "e1"
        assert path.edge(2) == "e2"
        assert operators.edge(path, 1) == "e1"

    def test_out_of_range_positions(self, path: Path) -> None:
        with pytest.raises(InvalidPathError):
            path.node(0)
        with pytest.raises(InvalidPathError):
            path.node(4)
        with pytest.raises(InvalidPathError):
            path.edge(3)

    def test_len(self, path: Path) -> None:
        assert path.len() == 2
        assert len(path) == 2
        assert operators.length(path) == 2

    def test_label_concatenation(self, path: Path) -> None:
        assert path.label() == "KnowsKnows"
        assert path.label_sequence() == ("Knows", "Knows")

    def test_label_and_prop_of_objects(self, path: Path) -> None:
        assert operators.label(path, "n1") == "Person"
        assert operators.label(path, "e1") == "Knows"
        assert operators.prop(path, "n1", "name") == "Moe"
        assert operators.prop(path, "n1", "missing", "dflt") == "dflt"

    def test_endpoints(self, path: Path) -> None:
        assert path.endpoints() == ("n1", "n3")
        assert path.reverse_endpoints() == ("n3", "n1")

    def test_nodes_and_edges_objects(self, path: Path) -> None:
        assert [node.id for node in path.nodes()] == ["n1", "n2", "n3"]
        assert [edge.id for edge in path.edges()] == ["e1", "e2"]
        assert path.first_node().property("name") == "Moe"
        assert path.last_node().property("name") == "Bart"

    def test_interleaved_round_trip(self, path: Path, figure1) -> None:
        assert Path.from_interleaved(figure1, path.interleaved()) == path


class TestConcatenation:
    def test_concat_matching_endpoints(self, figure1) -> None:
        p1 = Path.from_edge(figure1, "e1")  # n1 -> n2
        p2 = Path.from_edge(figure1, "e2")  # n2 -> n3
        joined = p1.concat(p2)
        assert joined.interleaved() == ("n1", "e1", "n2", "e2", "n3")
        assert operators.concat(p1, p2) == joined
        assert (p1 @ p2) == joined

    def test_concat_mismatch_raises(self, figure1) -> None:
        p1 = Path.from_edge(figure1, "e1")  # n1 -> n2
        p4 = Path.from_edge(figure1, "e3")  # n3 -> n2
        with pytest.raises(PathConcatenationError):
            p1.concat(p4)
        assert not p1.can_concat(p4)

    def test_concat_with_zero_length_identity(self, figure1) -> None:
        p1 = Path.from_edge(figure1, "e1")
        node_path = Path.from_node(figure1, "n2")
        assert p1.concat(node_path) == p1
        left_identity = Path.from_node(figure1, "n1")
        assert left_identity.concat(p1) == p1

    def test_prefix_suffix(self, figure1) -> None:
        path = Path.from_interleaved(figure1, ("n1", "e1", "n2", "e2", "n3"))
        assert path.prefix(1).interleaved() == ("n1", "e1", "n2")
        assert path.prefix(0).interleaved() == ("n1",)
        assert path.suffix(1).interleaved() == ("n2", "e2", "n3")
        assert path.suffix(0).interleaved() == ("n3",)
        with pytest.raises(InvalidPathError):
            path.prefix(3)
        with pytest.raises(InvalidPathError):
            path.suffix(-1)


class TestEqualityAndHashing:
    def test_equality_by_sequence(self, figure1) -> None:
        p1 = Path.from_edge(figure1, "e1")
        p2 = Path(figure1, ["n1", "n2"], ["e1"])
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_inequality(self, figure1) -> None:
        assert Path.from_edge(figure1, "e1") != Path.from_edge(figure1, "e2")
        assert Path.from_node(figure1, "n1") != Path.from_node(figure1, "n2")
        assert Path.from_node(figure1, "n1") != "n1"

    def test_ordering_is_lexicographic_on_interleaved(self, figure1) -> None:
        shorter = Path.from_node(figure1, "n1")
        longer = Path.from_edge(figure1, "e1")
        assert sorted([longer, shorter]) == [shorter, longer]

    def test_usable_in_sets(self, figure1) -> None:
        paths = {Path.from_edge(figure1, "e1"), Path(figure1, ["n1", "n2"], ["e1"])}
        assert len(paths) == 1

    def test_str_matches_paper_notation(self, figure1) -> None:
        path = Path.from_interleaved(figure1, ("n1", "e1", "n2"))
        assert str(path) == "(n1, e1, n2)"
