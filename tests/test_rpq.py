"""Tests for the RPQ regex AST, parser, automaton, and algebra compiler."""

from __future__ import annotations

import pytest

from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import Join, NodesScan, Recursive, Selection, Union
from repro.errors import RegexSyntaxError
from repro.rpq.ast import (
    Alternation,
    AnyLabel,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    Star,
    alternation,
    concat,
)
from repro.rpq.automaton import build_nfa
from repro.rpq.compile import CompileOptions, compile_pattern, compile_regex, label_scan
from repro.rpq.parser import parse_regex
from repro.semantics.restrictors import Restrictor


class TestRegexAST:
    def test_labels_and_nullability(self) -> None:
        expr = Concat(Label("Likes"), Label("Has_creator"))
        assert expr.labels() == {"Likes", "Has_creator"}
        assert not expr.nullable()
        assert Star(expr).nullable()
        assert Plus(expr).nullable() is False
        assert Optional(Label("Knows")).nullable()
        assert Epsilon().nullable()

    def test_min_path_length(self) -> None:
        assert Label("Knows").min_path_length() == 1
        assert Concat(Label("a"), Label("b")).min_path_length() == 2
        assert Alternation(Label("a"), Concat(Label("a"), Label("b"))).min_path_length() == 1
        assert Star(Label("a")).min_path_length() == 0
        assert Plus(Concat(Label("a"), Label("b"))).min_path_length() == 2

    def test_is_recursive(self) -> None:
        assert Plus(Label("Knows")).is_recursive()
        assert Star(Label("Knows")).is_recursive()
        assert not Concat(Label("a"), Label("b")).is_recursive()
        assert not Optional(Label("a")).is_recursive()

    def test_builders(self) -> None:
        assert concat() == Epsilon()
        assert concat(Label("a")) == Label("a")
        assert concat(Label("a"), Label("b"), Label("c")) == Concat(
            Concat(Label("a"), Label("b")), Label("c")
        )
        assert alternation(Label("a"), Label("b")) == Alternation(Label("a"), Label("b"))
        with pytest.raises(ValueError):
            alternation()

    def test_rendering_round_trips(self) -> None:
        for text in ("Knows", "Knows+", "(Knows/Likes)*", "(a|b)/c", "a?", "%"):
            node = parse_regex(text)
            assert parse_regex(str(node)) == node


class TestRegexParser:
    def test_single_label(self) -> None:
        assert parse_regex("Knows") == Label("Knows")
        assert parse_regex(":Knows") == Label("Knows")

    def test_quoted_label_with_space(self) -> None:
        assert parse_regex('"Has creator"') == Label("Has creator")

    def test_concat_and_alternation_precedence(self) -> None:
        # '/' binds tighter than '|'.
        assert parse_regex("a/b|c") == Alternation(Concat(Label("a"), Label("b")), Label("c"))
        assert parse_regex("a/(b|c)") == Concat(Label("a"), Alternation(Label("b"), Label("c")))

    def test_closure_operators(self) -> None:
        assert parse_regex("Knows+") == Plus(Label("Knows"))
        assert parse_regex("Knows*") == Star(Label("Knows"))
        assert parse_regex("Knows?") == Optional(Label("Knows"))
        assert parse_regex("(Likes/Has_creator)+") == Plus(
            Concat(Label("Likes"), Label("Has_creator"))
        )

    def test_paper_intro_regex(self) -> None:
        node = parse_regex("(:Knows+)|((:Likes/:Has_creator)*)")
        assert isinstance(node, Alternation)
        assert node.left == Plus(Label("Knows"))
        assert node.right == Star(Concat(Label("Likes"), Label("Has_creator")))

    def test_wildcard_and_epsilon(self) -> None:
        assert parse_regex("%") == AnyLabel()
        assert parse_regex("()") == Epsilon()

    def test_stacked_quantifiers(self) -> None:
        assert parse_regex("a+*") == Star(Plus(Label("a")))

    @pytest.mark.parametrize("bad", ["", "   ", "a|", "(a", "a)", "/a", "a//b", '"unterminated', "a b"])
    def test_syntax_errors(self, bad: str) -> None:
        with pytest.raises(RegexSyntaxError):
            parse_regex(bad)


class TestAutomaton:
    def test_single_label(self) -> None:
        nfa = build_nfa("Knows")
        assert nfa.accepts(["Knows"])
        assert not nfa.accepts(["Likes"])
        assert not nfa.accepts([])
        assert not nfa.accepts(["Knows", "Knows"])

    def test_plus_and_star(self) -> None:
        plus = build_nfa("Knows+")
        assert plus.accepts(["Knows"])
        assert plus.accepts(["Knows"] * 5)
        assert not plus.accepts([])
        star = build_nfa("Knows*")
        assert star.accepts([])
        assert star.matches_empty_word()
        assert star.accepts(["Knows", "Knows"])

    def test_concat_alternation_optional(self) -> None:
        nfa = build_nfa("(Likes/Has_creator)+|Knows?")
        assert nfa.accepts(["Likes", "Has_creator"])
        assert nfa.accepts(["Likes", "Has_creator", "Likes", "Has_creator"])
        assert nfa.accepts(["Knows"])
        assert nfa.accepts([])  # Knows? matches the empty word
        assert not nfa.accepts(["Likes"])
        assert not nfa.accepts(["Has_creator", "Likes"])

    def test_wildcard(self) -> None:
        nfa = build_nfa("%/Knows")
        assert nfa.accepts(["Anything", "Knows"])
        assert nfa.accepts([None, "Knows"])
        assert not nfa.accepts(["Knows"])

    def test_alphabet(self) -> None:
        assert build_nfa("(a/b)|c*").alphabet() == {"a", "b", "c"}

    def test_word_acceptance_matches_path_labels(self, figure1, knows_edges) -> None:
        from repro.semantics.restrictors import recursive_closure

        nfa = build_nfa("Knows+")
        for path in recursive_closure(knows_edges, Restrictor.TRAIL):
            assert nfa.accepts(path.label_sequence())


class TestCompilation:
    def test_label_compiles_to_selection_over_edges(self) -> None:
        plan = compile_regex("Knows")
        assert plan == label_scan("Knows")
        assert isinstance(plan, Selection)

    def test_concat_compiles_to_join(self) -> None:
        plan = compile_regex("Likes/Has_creator")
        assert isinstance(plan, Join)

    def test_alternation_compiles_to_union(self) -> None:
        assert isinstance(compile_regex("Knows|Likes"), Union)

    def test_plus_compiles_to_recursive(self) -> None:
        plan = compile_regex("Knows+", CompileOptions(restrictor=Restrictor.TRAIL))
        assert isinstance(plan, Recursive)
        assert plan.restrictor is Restrictor.TRAIL

    def test_star_compiles_to_recursive_union_nodes(self) -> None:
        plan = compile_regex("Knows*")
        assert isinstance(plan, Union)
        assert isinstance(plan.left, Recursive)
        assert plan.right == NodesScan()

    def test_optional_compiles_to_union_nodes(self) -> None:
        plan = compile_regex("Knows?")
        assert isinstance(plan, Union)
        assert plan.right == NodesScan()

    def test_epsilon_and_wildcard(self) -> None:
        assert compile_regex("()") == NodesScan()
        from repro.algebra.expressions import EdgesScan

        assert compile_regex("%") == EdgesScan()

    def test_max_length_propagated(self) -> None:
        plan = compile_regex("Knows+", CompileOptions(max_length=7))
        assert isinstance(plan, Recursive)
        assert plan.max_length == 7

    def test_compiled_plan_paths_match_nfa_acceptance(self, figure1) -> None:
        """Every path produced by the compiled plan has a label word accepted by the NFA."""
        regex = "(Likes/Has_creator)+|Knows"
        plan = compile_regex(regex, CompileOptions(restrictor=Restrictor.ACYCLIC))
        nfa = build_nfa(regex)
        for path in evaluate_to_paths(plan, figure1):
            assert nfa.accepts(path.label_sequence())

    def test_compile_pattern_with_endpoint_conditions(self, figure1) -> None:
        from repro.algebra.conditions import prop_of_first, prop_of_last

        plan = compile_pattern(
            "Knows+",
            source_condition=prop_of_first("name", "Moe"),
            target_condition=prop_of_last("name", "Apu"),
            options=CompileOptions(restrictor=Restrictor.SIMPLE),
        )
        result = evaluate_to_paths(plan, figure1)
        assert {path.interleaved() for path in result} == {("n1", "e1", "n2", "e4", "n4")}

    def test_compile_pattern_single_condition(self, figure1) -> None:
        from repro.algebra.conditions import prop_of_first

        plan = compile_pattern(
            "Knows",
            source_condition=prop_of_first("name", "Lisa"),
        )
        result = evaluate_to_paths(plan, figure1)
        assert all(path.first() == "n2" for path in result)
        assert len(result) == 2  # e2 and e4
