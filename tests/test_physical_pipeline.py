"""Tests for the pull-based physical pipeline (logical/physical equivalence)."""

from __future__ import annotations

import pytest

from repro.algebra.conditions import label_of_edge, prop_of_first
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import (
    Difference,
    EdgesScan,
    GroupBy,
    Intersection,
    Join,
    NodesScan,
    OrderBy,
    Projection,
    Recursive,
    Selection,
    Union,
)
from repro.algebra.solution_space import GroupByKey, OrderByKey, ProjectionSpec
from repro.engine.physical import build_pipeline, execute_pipeline
from repro.errors import EvaluationError
from repro.gql.planner import plan_text
from repro.semantics.restrictors import Restrictor


def knows_scan() -> Selection:
    return Selection(label_of_edge(1, "Knows"), EdgesScan())


def figure5_plan() -> Projection:
    return Projection(
        OrderBy(
            GroupBy(Recursive(knows_scan(), Restrictor.TRAIL), GroupByKey.ST),
            OrderByKey.A,
        ),
        ProjectionSpec("*", "*", 1),
    )


class TestEquivalenceWithLogicalEvaluator:
    @pytest.mark.parametrize(
        "plan_factory",
        [
            lambda: NodesScan(),
            lambda: EdgesScan(),
            lambda: knows_scan(),
            lambda: Join(knows_scan(), knows_scan()),
            lambda: Union(knows_scan(), Selection(label_of_edge(1, "Likes"), EdgesScan())),
            lambda: Intersection(
                Recursive(knows_scan(), Restrictor.TRAIL),
                Recursive(knows_scan(), Restrictor.ACYCLIC),
            ),
            lambda: Difference(
                Recursive(knows_scan(), Restrictor.TRAIL),
                Recursive(knows_scan(), Restrictor.ACYCLIC),
            ),
            lambda: Recursive(knows_scan(), Restrictor.SIMPLE),
            lambda: figure5_plan(),
            lambda: Selection(prop_of_first("name", "Moe"), Join(knows_scan(), knows_scan())),
        ],
        ids=[
            "nodes",
            "edges",
            "selection",
            "join",
            "union",
            "intersection",
            "difference",
            "recursive-simple",
            "figure5-pipeline",
            "selection-over-join",
        ],
    )
    def test_pipeline_matches_materializing_evaluator(self, figure1, plan_factory) -> None:
        plan = plan_factory()
        assert execute_pipeline(plan, figure1) == evaluate_to_paths(plan, figure1)

    def test_gql_query_through_pipeline(self, figure1) -> None:
        plan = plan_text(
            'MATCH ALL SIMPLE p = (?x {name: "Moe"})-[(:Knows+)|((:Likes/:Has_creator)+)]->'
            '(?y {name: "Apu"})'
        )
        assert execute_pipeline(plan, figure1) == evaluate_to_paths(plan, figure1)

    def test_default_max_length_applies_to_walk(self, figure1) -> None:
        plan = Recursive(knows_scan(), Restrictor.WALK)
        result = execute_pipeline(plan, figure1, default_max_length=3)
        assert result == evaluate_to_paths(plan, figure1, default_max_length=3)
        assert all(path.len() <= 3 for path in result)


class TestStreaming:
    def test_stream_yields_lazily_with_limit(self, figure1) -> None:
        pipeline = build_pipeline(EdgesScan(), figure1)
        first_three = list(pipeline.stream(limit=3))
        assert len(first_three) == 3
        # Only three paths crossed the scan boundary — the scan did not run to completion.
        assert pipeline.statistics.rows_produced["Edges(G)"] == 3

    def test_stream_without_limit_produces_everything(self, figure1) -> None:
        pipeline = build_pipeline(knows_scan(), figure1)
        assert len(list(pipeline.stream())) == 4

    def test_selection_streams_through_join(self, figure1) -> None:
        plan = Join(knows_scan(), knows_scan())
        pipeline = build_pipeline(plan, figure1)
        next(pipeline.stream(limit=1))
        counters = pipeline.statistics.rows_produced
        assert counters["⋈"] == 1
        # The probe side stops early; only the build side is fully consumed.
        assert counters[f"σ[{label_of_edge(1, 'Knows')}]"] <= 8


class TestStatisticsAndErrors:
    def test_operator_counters(self, figure1) -> None:
        pipeline = build_pipeline(Union(knows_scan(), knows_scan()), figure1)
        result = pipeline.execute()
        assert len(result) == 4
        stats = pipeline.statistics
        assert stats.operators == 5  # union + two selections + two scans
        assert stats.rows_produced["∪"] == 4
        assert stats.total_rows() >= 4 + 8

    def test_solution_space_chain_collapsed_into_one_operator(self, figure1) -> None:
        pipeline = build_pipeline(figure5_plan(), figure1)
        pipeline.execute()
        # Projection+OrderBy+GroupBy execute as a single blocking stage.
        assert pipeline.statistics.operators == 4  # scan, selection, recursion, solution-space stage

    def test_order_by_without_group_by_rejected(self, figure1) -> None:
        plan = OrderBy(knows_scan(), OrderByKey.A)
        with pytest.raises(EvaluationError):
            execute_pipeline(plan, figure1)

    def test_unknown_expression_rejected(self, figure1) -> None:
        class Strange:
            pass

        with pytest.raises(EvaluationError):
            build_pipeline(Strange(), figure1)  # type: ignore[arg-type]
