"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.datasets.generators import chain_graph, cycle_graph, grid_graph, random_graph
from repro.graph.builder import GraphBuilder
from repro.graph.model import PropertyGraph
from repro.paths.pathset import PathSet


@pytest.fixture
def figure1() -> PropertyGraph:
    """The paper's Figure 1 graph (7 nodes, 11 edges)."""
    return figure1_graph()


@pytest.fixture
def knows_edges(figure1: PropertyGraph) -> PathSet:
    """The Knows edges of Figure 1 as length-one paths (the input of Table 3)."""
    return PathSet.edges_of(figure1).filter(
        lambda path: figure1.edge(path.edge(1)).label == "Knows"
    )


@pytest.fixture
def small_chain() -> PropertyGraph:
    """A 5-node acyclic chain."""
    return chain_graph(5)


@pytest.fixture
def small_cycle() -> PropertyGraph:
    """A 4-node directed cycle (non-terminating WALK input)."""
    return cycle_graph(4)


@pytest.fixture
def small_grid() -> PropertyGraph:
    """A 3x3 grid (many equal-length shortest paths)."""
    return grid_graph(3, 3)


@pytest.fixture
def small_random() -> PropertyGraph:
    """A small random multigraph with the Figure 1 label vocabulary."""
    return random_graph(20, 40, seed=5)


@pytest.fixture
def diamond() -> PropertyGraph:
    """A diamond graph: two distinct length-2 paths from a to d plus a direct edge.

    Structure::

        a -Knows-> b -Knows-> d
        a -Knows-> c -Knows-> d
        a -Knows-> d
    """
    return (
        GraphBuilder("diamond")
        .node("a", "Person", name="A")
        .node("b", "Person", name="B")
        .node("c", "Person", name="C")
        .node("d", "Person", name="D")
        .edge("a", "b", "Knows", id="ab")
        .edge("b", "d", "Knows", id="bd")
        .edge("a", "c", "Knows", id="ac")
        .edge("c", "d", "Knows", id="cd")
        .edge("a", "d", "Knows", id="ad")
        .build()
    )
