"""Tests for the PathQueryEngine facade."""

from __future__ import annotations

import pytest

from repro.algebra.conditions import label_of_edge
from repro.algebra.expressions import EdgesScan, Recursive, Selection
from repro.datasets.generators import chain_graph
from repro.engine.engine import PathQueryEngine
from repro.errors import GQLSyntaxError
from repro.semantics.restrictors import Restrictor


@pytest.fixture
def engine(figure1) -> PathQueryEngine:
    return PathQueryEngine(figure1, default_max_length=6)


class TestQueryExecution:
    def test_text_query(self, engine) -> None:
        result = engine.query('MATCH ANY SHORTEST TRAIL p = (?x {name: "Moe"})-[:Knows]->+(?y)')
        assert len(result) == 3
        assert all(path.first() == "n1" for path in result.paths)
        assert result.elapsed_seconds >= 0.0

    def test_intro_query_simple_paths(self, engine) -> None:
        result = engine.query(
            'MATCH ALL SIMPLE p = (?x {name: "Moe"})-[(:Knows+)|((:Likes/:Has_creator)+)]->'
            '(?y {name: "Apu"})'
        )
        assert {path.interleaved() for path in result} == {
            ("n1", "e1", "n2", "e4", "n4"),
            ("n1", "e8", "n6", "e11", "n3", "e7", "n7", "e10", "n4"),
        }

    def test_extended_style_query(self, engine) -> None:
        result = engine.query(
            "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[(:Knows)*]->(?y) "
            "GROUP BY TARGET ORDER BY PATH"
        )
        # One path per distinct target node (7 nodes, all are targets of length-0 paths).
        assert len(result) == 7

    def test_query_plan_direct(self, engine) -> None:
        plan = Recursive(Selection(label_of_edge(1, "Knows"), EdgesScan()), Restrictor.TRAIL)
        result = engine.query_plan(plan)
        assert len(result) == 12
        assert result.plan == plan

    def test_execute_regex(self, engine) -> None:
        paths = engine.execute_regex("Likes/Has_creator", restrictor=Restrictor.TRAIL)
        assert len(paths) == 4
        assert all(path.len() == 2 for path in paths)

    def test_walk_query_uses_default_bound(self, engine) -> None:
        result = engine.query("MATCH ALL WALK p = (?x)-[Knows+]->(?y)")
        assert all(path.len() <= 6 for path in result.paths)

    def test_statistics_populated(self, engine) -> None:
        result = engine.query("MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)")
        assert result.statistics.total_calls() > 0
        assert result.statistics.intermediate_paths >= len(result.paths)

    def test_elapsed_covers_parse_plan_and_execute(self, engine) -> None:
        result = engine.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert result.phase_seconds["parse"] > 0.0
        assert result.phase_seconds["execute"] > 0.0
        assert result.elapsed_seconds >= result.phase_seconds["execute"]

    def test_executor_override_per_query(self, engine) -> None:
        text = "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)"
        materialized = engine.query(text, executor="materialize")
        pipelined = engine.query(text, executor="pipeline")
        assert materialized.executor == "materialize"
        assert pipelined.executor == "pipeline"
        assert materialized.paths == pipelined.paths

    def test_repeated_query_hits_plan_cache(self, engine) -> None:
        text = "MATCH ALL TRAIL p = (?x)-[Likes]->(?y)"
        first = engine.query(text)
        second = engine.query(text)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.paths == first.paths

    def test_iteration_protocol(self, engine) -> None:
        result = engine.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert len(list(result)) == len(result) == 4

    def test_syntax_error_propagates(self, engine) -> None:
        with pytest.raises(GQLSyntaxError):
            engine.query("MATCH OOPS")


class TestOptimization:
    def test_optimizer_enabled_by_default(self, figure1) -> None:
        engine = PathQueryEngine(figure1)
        result = engine.query("MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y)")
        assert "walk-to-shortest" in result.applied_rules
        assert len(result) == 9

    def test_optimizer_can_be_disabled(self, figure1) -> None:
        engine = PathQueryEngine(figure1, optimize=False, default_max_length=5)
        result = engine.query("MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y)")
        assert result.applied_rules == []
        assert result.plan == result.optimized_plan

    def test_optimized_and_unoptimized_agree(self, figure1) -> None:
        text = 'MATCH ALL TRAIL p = (?x)-[Knows/Knows]->(?y) WHERE x.name = "Moe"'
        with_opt = PathQueryEngine(figure1, optimize=True).query(text)
        without_opt = PathQueryEngine(figure1, optimize=False).query(text)
        assert with_opt.paths == without_opt.paths


class TestExplain:
    def test_explain_reports_rules_and_costs(self, engine) -> None:
        explanation = engine.explain("MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y)")
        assert "walk-to-shortest" in explanation.applied_rules
        assert explanation.estimated_cost.total_cost < explanation.estimated_cost_unoptimized.total_cost
        rendered = explanation.render()
        assert "Logical plan:" in rendered
        assert "ϕShortest" in rendered
        assert "Projection" in rendered

    def test_explain_plan_direct(self, engine) -> None:
        plan = Recursive(Selection(label_of_edge(1, "Knows"), EdgesScan()), Restrictor.TRAIL)
        explanation = engine.explain_plan(plan)
        assert explanation.plan == plan
        assert explanation.estimated_cost.total_cost > 0

    def test_explain_without_optimizer(self, figure1) -> None:
        engine = PathQueryEngine(figure1, optimize=False)
        explanation = engine.explain("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert explanation.applied_rules == []


class TestOnOtherGraphs:
    def test_engine_on_chain_graph(self) -> None:
        engine = PathQueryEngine(chain_graph(6))
        result = engine.query("MATCH ALL WALK p = (?x)-[Knows+]->(?y)")
        # A 6-node chain has 5+4+3+2+1 = 15 walks of length >= 1.
        assert len(result) == 15

    def test_engine_reuse_across_queries(self, engine) -> None:
        first = engine.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        second = engine.query("MATCH ALL TRAIL p = (?x)-[Likes]->(?y)")
        assert len(first) == 4
        assert len(second) == 4
