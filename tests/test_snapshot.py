"""Tests for GraphSnapshot views and the PropertyGraph snapshot/freeze API."""

from __future__ import annotations

import pickle

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.engine.engine import PathQueryEngine
from repro.errors import FrozenGraphError, UnknownObjectError
from repro.graph.model import PropertyGraph
from repro.graph.snapshot import GraphSnapshot


@pytest.fixture
def figure1() -> PropertyGraph:
    return figure1_graph()


class TestSnapshotPinning:
    def test_snapshot_is_invariant_under_parent_mutation(self, figure1) -> None:
        snapshot = figure1.snapshot()
        nodes, edges = snapshot.num_nodes(), snapshot.num_edges()
        version = snapshot.version
        figure1.add_node("new", "Person")
        figure1.add_edge("enew", "new", "n1", "Knows")
        assert snapshot.version == version
        assert snapshot.num_nodes() == nodes
        assert snapshot.num_edges() == edges
        assert not snapshot.has_node("new")
        assert not snapshot.has_edge("enew")
        assert "new" not in snapshot
        assert figure1.has_node("new")

    def test_adjacency_filters_post_snapshot_edges(self, figure1) -> None:
        snapshot = figure1.snapshot()
        out_before = [edge.id for edge in snapshot.out_edges("n1")]
        in_before = [edge.id for edge in snapshot.in_edges("n1")]
        figure1.add_node("new", "Person")
        figure1.add_edge("eout", "n1", "new", "Knows")
        figure1.add_edge("ein", "new", "n1", "Knows")
        assert [edge.id for edge in snapshot.out_edges("n1")] == out_before
        assert [edge.id for edge in snapshot.in_edges("n1")] == in_before
        assert snapshot.out_degree("n1") == len(out_before)
        assert snapshot.in_degree("n1") == len(in_before)
        assert figure1.out_degree("n1") == len(out_before) + 1

    def test_label_indexes_filter_by_version(self, figure1) -> None:
        snapshot = figure1.snapshot()
        knows_before = {edge.id for edge in snapshot.edges_by_label("Knows")}
        person_before = {node.id for node in snapshot.nodes_by_label("Person")}
        figure1.add_node("new", "Person")
        figure1.add_edge("enew", "new", "n1", "Knows")
        assert {edge.id for edge in snapshot.edges_by_label("Knows")} == knows_before
        assert {node.id for node in snapshot.nodes_by_label("Person")} == person_before
        assert "Knows" in snapshot.edge_labels()
        assert "Person" in snapshot.node_labels()

    def test_lookup_beyond_version_raises(self, figure1) -> None:
        snapshot = figure1.snapshot()
        figure1.add_node("new", "Person")
        with pytest.raises(UnknownObjectError):
            snapshot.node("new")
        with pytest.raises(UnknownObjectError):
            snapshot.object("new")
        with pytest.raises(UnknownObjectError):
            snapshot.out_edges("new")

    def test_snapshots_at_same_version_are_shared(self, figure1) -> None:
        first = figure1.snapshot()
        assert figure1.snapshot() is first
        figure1.add_node("new")
        second = figure1.snapshot()
        assert second is not first
        assert second.version == first.version + 1
        assert second.snapshot() is second  # snapshot of a snapshot is itself

    def test_len_and_sizes(self, figure1) -> None:
        snapshot = figure1.snapshot()
        assert len(snapshot) == len(figure1)
        assert snapshot.order() == figure1.order()
        assert snapshot.size() == figure1.size()
        assert snapshot.node_ids() == figure1.node_ids()
        assert snapshot.edge_ids() == figure1.edge_ids()
        assert [node.id for node in snapshot.iter_nodes()] == figure1.node_ids()
        assert [edge.id for edge in snapshot.iter_edges()] == figure1.edge_ids()
        assert snapshot.label_of("n1") == figure1.label_of("n1")
        assert snapshot.property_of("n1", "name") == figure1.property_of("n1", "name")


class TestImmutability:
    def test_snapshot_refuses_mutation(self, figure1) -> None:
        snapshot = figure1.snapshot()
        assert snapshot.frozen
        with pytest.raises(FrozenGraphError):
            snapshot.add_node("x")
        with pytest.raises(FrozenGraphError):
            snapshot.add_edge("e", "n1", "n2")
        with pytest.raises(FrozenGraphError):
            snapshot.add_nodes([("x", None, None)])
        with pytest.raises(FrozenGraphError):
            snapshot.add_edges([("e", "n1", "n2", None, None)])
        assert snapshot.freeze() is snapshot

    def test_frozen_graph_refuses_mutation(self, figure1) -> None:
        assert not figure1.frozen
        assert figure1.freeze() is figure1
        assert figure1.frozen
        with pytest.raises(FrozenGraphError):
            figure1.add_node("x")
        with pytest.raises(FrozenGraphError):
            figure1.add_edge("e", "n1", "n2")

    def test_copy_of_frozen_graph_is_mutable(self, figure1) -> None:
        figure1.freeze()
        clone = figure1.copy()
        clone.add_node("x")  # must not raise
        assert clone.has_node("x")


class TestMaterialization:
    def test_copy_materializes_snapshot_state(self, figure1) -> None:
        snapshot = figure1.snapshot()
        figure1.add_node("new", "Person")
        figure1.add_edge("enew", "new", "n1", "Knows")
        clone = snapshot.copy("clone")
        assert clone.num_nodes() == snapshot.num_nodes()
        assert clone.num_edges() == snapshot.num_edges()
        assert not clone.has_node("new")

    def test_subgraph_by_edge_labels(self, figure1) -> None:
        snapshot = figure1.snapshot()
        knows_only = snapshot.subgraph_by_edge_labels(["Knows"])
        assert knows_only.num_nodes() == snapshot.num_nodes()
        assert all(edge.label == "Knows" for edge in knows_only.iter_edges())

    def test_engine_over_snapshot_equals_engine_over_materialized_copy(self, figure1) -> None:
        snapshot = figure1.snapshot()
        figure1.add_edge("extra", "n1", "n3", "Knows")
        text = "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)"
        on_view = PathQueryEngine(snapshot, default_max_length=4).query(text)
        on_copy = PathQueryEngine(snapshot.copy(), default_max_length=4).query(text)
        assert sorted(map(str, on_view.paths)) == sorted(map(str, on_copy.paths))
        live = PathQueryEngine(figure1, default_max_length=4).query(text)
        assert len(live) > len(on_view)  # the extra edge is visible only live

    def test_engine_graph_override_requires_same_lineage(self, figure1) -> None:
        """A foreign graph with a coincidental version must be rejected —
        plan-cache keys and cost models are version-keyed per lineage."""
        engine = PathQueryEngine(figure1)
        text = "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"
        assert engine.query(text, graph=figure1.snapshot()).paths  # same lineage ok
        assert engine.query(text, graph=figure1).paths
        foreign = figure1_graph()  # identical content and version, different object
        with pytest.raises(ValueError, match="snapshot of it"):
            engine.query(text, graph=foreign)
        with pytest.raises(ValueError):
            engine.execute_regex("Knows", graph=foreign.snapshot())

    def test_pickle_roundtrip(self, figure1) -> None:
        snapshot = figure1.snapshot()
        figure1.add_node("new")
        restored = pickle.loads(pickle.dumps(snapshot))
        assert isinstance(restored, GraphSnapshot)
        assert restored.version == snapshot.version
        assert restored.node_ids() == snapshot.node_ids()
        assert not restored.has_node("new")
        restored.parent.add_node("after-restore")  # restored parent got a fresh lock


class TestDegreeCounters:
    def test_degrees_are_index_lookups_not_edge_materializations(self, figure1) -> None:
        """out_degree/in_degree must not build Edge lists (the O(1) contract)."""
        expected_out = {nid: len(figure1.out_edges(nid)) for nid in figure1.node_ids()}
        expected_in = {nid: len(figure1.in_edges(nid)) for nid in figure1.node_ids()}

        def boom(self, node_id):
            raise AssertionError("degree counters must not materialize edge lists")

        original_out, original_in = PropertyGraph.out_edges, PropertyGraph.in_edges
        PropertyGraph.out_edges = boom
        PropertyGraph.in_edges = boom
        try:
            for nid in figure1.node_ids():
                assert figure1.out_degree(nid) == expected_out[nid]
                assert figure1.in_degree(nid) == expected_in[nid]
        finally:
            PropertyGraph.out_edges = original_out
            PropertyGraph.in_edges = original_in

    def test_degree_of_unknown_node_raises(self, figure1) -> None:
        with pytest.raises(UnknownObjectError):
            figure1.out_degree("ghost")
        with pytest.raises(UnknownObjectError):
            figure1.in_degree("ghost")
        snapshot = figure1.snapshot()
        with pytest.raises(UnknownObjectError):
            snapshot.out_degree("ghost")
        with pytest.raises(UnknownObjectError):
            snapshot.in_degree("ghost")
