"""Seeded-random equivalence properties of the closure strategies.

For every restrictor, three independent evaluation paths must agree exactly:

* :func:`recursive_closure` — the incremental production engine (indexed
  frontier expansion, O(1) restrictor checks);
* :func:`recursive_closure_baseline` — the pre-incremental per-round-rebuild
  strategy with full predicate re-scans;
* :func:`recursive_closure_postfilter` — enumerate bounded walks, then filter
  (the ablation oracle);
* the physical pipeline's ``Recursive`` operator and the logical evaluator.

The graphs cover the nasty shapes: cyclic graphs, self-loops, parallel edges
(multigraphs), dense cliques and random multigraphs.  All strategies are
compared under a common ``max_length`` bound, for which the equivalence holds
unconditionally; where the bound provably covers every conforming path, the
unbounded pruned closure is asserted equal as well.
"""

from __future__ import annotations

import pytest

from graph_corpus import closure_corpus
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import EdgesScan, Recursive
from repro.engine.physical import execute_pipeline
from repro.graph.model import PropertyGraph
from repro.paths.pathset import PathSet
from repro.semantics.restrictors import (
    Restrictor,
    recursive_closure,
    recursive_closure_baseline,
    recursive_closure_postfilter,
)

#: Bound used for every bounded comparison; small enough to keep the walk
#: enumeration of the postfilter oracle tractable on ~50 graphs.
COMMON_BOUND = 6

ALL_GRAPHS: list[PropertyGraph] = closure_corpus()

RESTRICTORS = tuple(Restrictor)


def _covering_bound(graph: PropertyGraph, restrictor: Restrictor) -> int | None:
    """A bound that provably covers every conforming closure path, if tractable.

    Trails have at most ``|E|`` edges; acyclic and simple paths at most
    ``|V|``; shortest compositions of single edges at most ``|V|``.  WALK has
    no covering bound on cyclic inputs.
    """
    if restrictor is Restrictor.WALK:
        return None
    if restrictor is Restrictor.TRAIL:
        return len(graph.edge_ids())
    return len(graph.node_ids())


@pytest.mark.parametrize("graph", ALL_GRAPHS, ids=lambda graph: graph.name)
def test_all_strategies_agree_under_common_bound(graph: PropertyGraph) -> None:
    base = PathSet.edges_of(graph)
    for restrictor in RESTRICTORS:
        pruned = recursive_closure(base, restrictor, COMMON_BOUND)
        oracle = recursive_closure_postfilter(base, restrictor, COMMON_BOUND)
        assert pruned == oracle, (graph.name, restrictor)
        baseline = recursive_closure_baseline(base, restrictor, COMMON_BOUND)
        assert pruned == baseline, (graph.name, restrictor)
        plan = Recursive(EdgesScan(), restrictor, COMMON_BOUND)
        assert pruned == execute_pipeline(plan, graph), (graph.name, restrictor)
        assert pruned == evaluate_to_paths(plan, graph), (graph.name, restrictor)


@pytest.mark.parametrize("graph", ALL_GRAPHS, ids=lambda graph: graph.name)
def test_unbounded_pruned_closure_is_covered(graph: PropertyGraph) -> None:
    """Where the covering bound is tractable, the unbounded closure equals it."""
    base = PathSet.edges_of(graph)
    for restrictor in (Restrictor.TRAIL, Restrictor.ACYCLIC, Restrictor.SIMPLE, Restrictor.SHORTEST):
        bound = _covering_bound(graph, restrictor)
        if bound > COMMON_BOUND + 2:
            continue  # walk enumeration for the oracle would be intractable
        unbounded = recursive_closure(base, restrictor)
        oracle = recursive_closure_postfilter(base, restrictor, bound)
        assert unbounded == oracle, (graph.name, restrictor)
        assert unbounded == recursive_closure_baseline(base, restrictor), (
            graph.name,
            restrictor,
        )
