"""Unit tests for the property-graph model (Definition 2.1)."""

from __future__ import annotations

import pytest

from repro.errors import DuplicateObjectError, InvalidEdgeError, UnknownObjectError
from repro.graph.model import PropertyGraph


@pytest.fixture
def graph() -> PropertyGraph:
    g = PropertyGraph("test")
    g.add_node("n1", "Person", {"name": "Moe", "age": 40})
    g.add_node("n2", "Person", {"name": "Lisa"})
    g.add_node("n3", "Message")
    g.add_edge("e1", "n1", "n2", "Knows", {"since": 2010})
    g.add_edge("e2", "n2", "n3", "Likes")
    return g


class TestNodeAccess:
    def test_node_lookup(self, graph: PropertyGraph) -> None:
        node = graph.node("n1")
        assert node.id == "n1"
        assert node.label == "Person"
        assert node.property("name") == "Moe"

    def test_node_property_default(self, graph: PropertyGraph) -> None:
        assert graph.node("n3").property("missing", "fallback") == "fallback"

    def test_unknown_node_raises(self, graph: PropertyGraph) -> None:
        with pytest.raises(UnknownObjectError):
            graph.node("nope")

    def test_has_node(self, graph: PropertyGraph) -> None:
        assert graph.has_node("n1")
        assert not graph.has_node("e1")
        assert not graph.has_node("zzz")

    def test_unlabeled_node(self, graph: PropertyGraph) -> None:
        graph.add_node("n4")
        assert graph.node("n4").label is None


class TestEdgeAccess:
    def test_edge_lookup(self, graph: PropertyGraph) -> None:
        edge = graph.edge("e1")
        assert edge.endpoints() == ("n1", "n2")
        assert edge.label == "Knows"
        assert edge.property("since") == 2010

    def test_unknown_edge_raises(self, graph: PropertyGraph) -> None:
        with pytest.raises(UnknownObjectError):
            graph.edge("e99")

    def test_edge_requires_known_endpoints(self, graph: PropertyGraph) -> None:
        with pytest.raises(InvalidEdgeError):
            graph.add_edge("e3", "n1", "ghost", "Knows")
        with pytest.raises(InvalidEdgeError):
            graph.add_edge("e3", "ghost", "n1", "Knows")

    def test_self_loop_allowed(self, graph: PropertyGraph) -> None:
        edge = graph.add_edge("loop", "n1", "n1", "Knows")
        assert edge.source == edge.target == "n1"

    def test_parallel_edges_allowed(self, graph: PropertyGraph) -> None:
        graph.add_edge("e1b", "n1", "n2", "Knows")
        assert graph.num_edges() == 3


class TestIdentifierDisjointness:
    def test_duplicate_node_id(self, graph: PropertyGraph) -> None:
        with pytest.raises(DuplicateObjectError):
            graph.add_node("n1")

    def test_duplicate_edge_id(self, graph: PropertyGraph) -> None:
        with pytest.raises(DuplicateObjectError):
            graph.add_edge("e1", "n1", "n2")

    def test_node_edge_id_overlap_rejected(self, graph: PropertyGraph) -> None:
        with pytest.raises(DuplicateObjectError):
            graph.add_node("e1")
        with pytest.raises(DuplicateObjectError):
            graph.add_edge("n1", "n1", "n2")


class TestObjectFunctions:
    def test_object_dispatch(self, graph: PropertyGraph) -> None:
        assert graph.object("n1").id == "n1"
        assert graph.object("e1").id == "e1"
        with pytest.raises(UnknownObjectError):
            graph.object("zzz")

    def test_label_of(self, graph: PropertyGraph) -> None:
        assert graph.label_of("n1") == "Person"
        assert graph.label_of("e2") == "Likes"
        assert graph.label_of("n3") == "Message"

    def test_property_of(self, graph: PropertyGraph) -> None:
        assert graph.property_of("n1", "name") == "Moe"
        assert graph.property_of("e1", "since") == 2010
        assert graph.property_of("n1", "missing") is None


class TestAdjacency:
    def test_out_edges(self, graph: PropertyGraph) -> None:
        assert [edge.id for edge in graph.out_edges("n1")] == ["e1"]
        assert [edge.id for edge in graph.out_edges("n3")] == []

    def test_in_edges(self, graph: PropertyGraph) -> None:
        assert [edge.id for edge in graph.in_edges("n2")] == ["e1"]
        assert [edge.id for edge in graph.in_edges("n1")] == []

    def test_degrees(self, graph: PropertyGraph) -> None:
        assert graph.out_degree("n2") == 1
        assert graph.in_degree("n2") == 1
        assert graph.out_degree("n3") == 0

    def test_neighbors(self, graph: PropertyGraph) -> None:
        assert graph.neighbors("n1") == ["n2"]

    def test_adjacency_unknown_node(self, graph: PropertyGraph) -> None:
        with pytest.raises(UnknownObjectError):
            graph.out_edges("ghost")


class TestLabelIndexes:
    def test_nodes_by_label(self, graph: PropertyGraph) -> None:
        assert {node.id for node in graph.nodes_by_label("Person")} == {"n1", "n2"}
        assert graph.nodes_by_label("Forum") == []

    def test_edges_by_label(self, graph: PropertyGraph) -> None:
        assert [edge.id for edge in graph.edges_by_label("Knows")] == ["e1"]

    def test_label_sets(self, graph: PropertyGraph) -> None:
        assert graph.node_labels() == {"Person", "Message"}
        assert graph.edge_labels() == {"Knows", "Likes"}


class TestSizeAndCopy:
    def test_counts(self, graph: PropertyGraph) -> None:
        assert graph.num_nodes() == 3
        assert graph.num_edges() == 2
        assert graph.order() == 3
        assert graph.size() == 2
        assert len(graph) == 5

    def test_contains(self, graph: PropertyGraph) -> None:
        assert "n1" in graph
        assert "e1" in graph
        assert "zzz" not in graph

    def test_copy_is_independent(self, graph: PropertyGraph) -> None:
        clone = graph.copy()
        clone.add_node("extra")
        assert graph.num_nodes() == 3
        assert clone.num_nodes() == 4
        assert clone.node("n1").properties == graph.node("n1").properties

    def test_subgraph_by_edge_labels(self, graph: PropertyGraph) -> None:
        sub = graph.subgraph_by_edge_labels(["Knows"])
        assert sub.num_nodes() == graph.num_nodes()
        assert [edge.id for edge in sub.edges()] == ["e1"]

    def test_bulk_helpers(self) -> None:
        g = PropertyGraph()
        g.add_nodes([("a", "Person", None), ("b", None, {"x": 1})])
        g.add_edges([("e", "a", "b", "Knows", None)])
        assert g.num_nodes() == 2
        assert g.num_edges() == 1
        assert g.node("b").property("x") == 1
