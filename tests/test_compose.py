"""Tests for query composition (Section 2.3: concatenation and union of path queries)."""

from __future__ import annotations

import pytest

from repro.algebra.conditions import label_of_edge
from repro.algebra.expressions import EdgesScan, Join, Projection, Selection, Union
from repro.paths.predicates import is_trail
from repro.semantics.compose import (
    ComposedQuery,
    QueryStep,
    compose_concatenation,
    compose_union,
    evaluate_composition,
    paper_example_composition,
)
from repro.semantics.restrictors import Restrictor
from repro.semantics.selectors import Selector, SelectorKind


def knows_scan() -> Selection:
    return Selection(label_of_edge(1, "Knows"), EdgesScan())


def likes_creator_scan() -> Join:
    return Join(
        Selection(label_of_edge(1, "Likes"), EdgesScan()),
        Selection(label_of_edge(1, "Has_creator"), EdgesScan()),
    )


class TestConcatenation:
    def test_two_step_concatenation_joins_answers(self, figure1) -> None:
        """ALL TRAIL Knows+ followed by ALL TRAIL (Likes/Has_creator)+, whole result ALL TRAIL."""
        query = compose_concatenation(
            Selector(SelectorKind.ALL),
            Restrictor.TRAIL,
            QueryStep(Selector(SelectorKind.ALL), Restrictor.TRAIL, knows_scan()),
            QueryStep(Selector(SelectorKind.ALL), Restrictor.TRAIL, likes_creator_scan()),
        )
        result = evaluate_composition(query, figure1)
        assert len(result) > 0
        for path in result:
            assert is_trail(path)
            # The concatenated paths start with a Knows edge and end with Has_creator.
            assert figure1.edge(path.edge(1)).label == "Knows"
            assert figure1.edge(path.edge(path.len())).label == "Has_creator"

    def test_paper_example_shortest_trail_of_concatenation(self, figure1) -> None:
        """The Section 2.3 example: trails · shortest walks, outer ALL SHORTEST TRAIL."""
        query = paper_example_composition(knows_scan(), likes_creator_scan())
        result = evaluate_composition(query, figure1)
        assert len(result) > 0
        # Outer restrictor TRAIL: no repeated edges in any returned path.
        assert all(is_trail(path) for path in result)
        # Outer ALL SHORTEST: per endpoint pair only minimum-length paths remain.
        by_pair = result.group_by_endpoints()
        for paths in by_pair.values():
            lengths = {path.len() for path in paths}
            assert len(lengths) == 1

    def test_concatenation_respects_endpoint_compatibility(self, figure1) -> None:
        query = compose_concatenation(
            Selector(SelectorKind.ALL),
            Restrictor.WALK,
            QueryStep(Selector(SelectorKind.ALL), Restrictor.TRAIL, knows_scan()),
            QueryStep(Selector(SelectorKind.ALL), Restrictor.TRAIL, knows_scan()),
        )
        result = evaluate_composition(query, figure1)
        # Every result decomposes into two Knows+ trails sharing a middle node;
        # in particular all labels along the path are Knows.
        assert all(set(path.label_sequence()) == {"Knows"} for path in result)

    def test_single_step_composition_equals_step_answer(self, figure1) -> None:
        step = QueryStep(Selector(SelectorKind.ALL), Restrictor.ACYCLIC, knows_scan())
        query = compose_concatenation(Selector(SelectorKind.ALL), Restrictor.WALK, step)
        result = evaluate_composition(query, figure1)
        from repro.algebra.evaluator import evaluate_to_paths

        assert result == evaluate_to_paths(step.plan(), figure1)

    def test_empty_composition_rejected(self) -> None:
        query = ComposedQuery(Selector(SelectorKind.ALL), Restrictor.WALK, ())
        with pytest.raises(ValueError):
            query.plan()


class TestUnionComposition:
    def test_union_of_two_queries(self, figure1) -> None:
        query = compose_union(
            Selector(SelectorKind.ALL),
            Restrictor.WALK,
            QueryStep(Selector(SelectorKind.ALL), Restrictor.ACYCLIC, knows_scan()),
            QueryStep(Selector(SelectorKind.ALL), Restrictor.ACYCLIC, likes_creator_scan()),
        )
        result = evaluate_composition(query, figure1)
        labels = {path.label_sequence()[0] for path in result}
        assert "Knows" in labels
        assert "Likes" in labels

    def test_outer_selector_applies_to_union(self, figure1) -> None:
        query = compose_union(
            Selector(SelectorKind.ANY_SHORTEST),
            Restrictor.WALK,
            QueryStep(Selector(SelectorKind.ALL), Restrictor.TRAIL, knows_scan()),
            QueryStep(Selector(SelectorKind.ALL), Restrictor.TRAIL, likes_creator_scan()),
        )
        result = evaluate_composition(query, figure1)
        assert len(result) == len(result.group_by_endpoints())


class TestComposedPlans:
    def test_plan_is_a_single_algebra_expression(self) -> None:
        query = paper_example_composition(knows_scan(), likes_creator_scan())
        plan = query.plan()
        assert isinstance(plan, Projection)
        # The concatenation appears as a join of the two inner pipelines.
        assert any(isinstance(node, Join) for node in plan.iter_subtree())
        assert sum(1 for node in plan.iter_subtree() if isinstance(node, Projection)) == 3

    def test_inner_steps_keep_their_own_semantics(self, figure1) -> None:
        """ANY SHORTEST WALK inner step terminates thanks to the optimizer rewrite."""
        query = compose_concatenation(
            Selector(SelectorKind.ALL),
            Restrictor.WALK,
            QueryStep(Selector(SelectorKind.ANY_SHORTEST), Restrictor.WALK, knows_scan()),
        )
        result = evaluate_composition(query, figure1)
        assert len(result) == 9  # one shortest Knows+ path per connected pair
