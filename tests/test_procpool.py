"""Correctness, fault-tolerance and isolation tests for process-backed serving.

Covers the ``execution_mode="processes"`` / ``"race"`` backends of
:class:`~repro.service.QueryService` and the
:class:`~repro.service.procpool.ProcessWorkerPool` beneath them:

* byte-identical parity with serial execution over the 50-graph differential
  corpus (the same corpus and random regexes as ``test_differential``);
* portfolio racing: winner attribution, loser cancellation, parity;
* cross-process budget enforcement and the ``cancel`` hook of
  :class:`~repro.execution.QueryBudget`;
* crash containment: a dying worker requeues its claimed task once, a second
  death resolves it as a typed :class:`~repro.service.WorkerDied` outcome
  (attributed separately from timeouts and failures), and the pool refills
  to capacity;
* spawn-on-version-drift reforking and hypothesis-generated interleavings of
  mutations with in-flight process queries (snapshot isolation across the
  fork boundary);
* :meth:`~repro.service.ServiceStatistics.merge` aggregation.
"""

from __future__ import annotations

import random
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from graph_corpus import closure_corpus
from repro.datasets.figure1 import figure1_graph
from repro.engine.engine import PathQueryEngine
from repro.engine.executor import RECURSIVE_COST_THRESHOLD
from repro.engine.router import EXECUTION_MODES, PortfolioRouter
from repro.errors import BudgetExceeded, ServiceError
from repro.execution import QueryBudget
from repro.graph.model import PropertyGraph
from repro.service import QueryService
from repro.service.procpool import CRASH_QUERY, ProcessWorkerPool

LABELS = ("Knows", "Likes")
CORPUS: list[PropertyGraph] = closure_corpus(labels=LABELS)
GRAPH_IDS = [graph.name for graph in CORPUS]

#: Per-query recursion bound (keeps cyclic corpus graphs finite).
BOUND = 3
REGEXES_PER_GRAPH = 2

QUERIES = (
    "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)",
    "MATCH ALL TRAIL p = (?x)-[Knows/Knows]->(?y)",
    "MATCH ALL TRAIL p = (?x)-[Knows|Likes]->(?y)",
    "MATCH ALL ACYCLIC p = (?x)-[Knows+]->(?y)",
)


def _random_regex(rng: random.Random, depth: int) -> str:
    """The regex generator of ``test_differential`` (kept in sync)."""
    if depth == 0 or rng.random() < 0.3:
        return rng.choice(LABELS)
    op = rng.choice(("concat", "concat", "union", "plus", "star"))
    if op == "concat":
        return f"{_random_regex(rng, depth - 1)}/{_random_regex(rng, depth - 1)}"
    if op == "union":
        return f"({_random_regex(rng, depth - 1)}|{_random_regex(rng, depth - 1)})"
    if op == "plus":
        return f"({_random_regex(rng, depth - 1)})+"
    return f"({_random_regex(rng, depth - 1)})*"


def _corpus_queries(index: int) -> list[str]:
    rng = random.Random(2000 + index)
    return [
        f"MATCH ALL TRAIL p = (?x)-[{_random_regex(rng, 2)}]->(?y)"
        for _ in range(REGEXES_PER_GRAPH)
    ]


def _serial_renderings(graph: PropertyGraph, texts: list[str]) -> list[str]:
    with QueryService(graph, workers=0, result_cache_size=0) as serial:
        return [outcome.rendered() for outcome in serial.run_batch(texts, max_length=BOUND)]


# ----------------------------------------------------------------------
# Differential parity over the corpus
# ----------------------------------------------------------------------
@pytest.mark.parametrize("index", range(len(CORPUS)), ids=GRAPH_IDS)
def test_process_mode_is_byte_identical_to_serial(index: int) -> None:
    """Acceptance: process-pool results match serial byte-for-byte."""
    graph = CORPUS[index]
    texts = _corpus_queries(index)
    expected = _serial_renderings(graph, texts)
    with QueryService(
        graph, workers=2, execution_mode="processes", result_cache_size=0
    ) as service:
        outcomes = service.run_batch(texts, max_length=BOUND)
    for text, outcome, want in zip(texts, outcomes, expected):
        assert outcome.ok, (graph.name, text, outcome.error)
        assert outcome.rendered() == want, (graph.name, text)
        assert outcome.worker.startswith("proc-"), outcome.worker


def test_race_mode_is_byte_identical_to_serial_on_figure1() -> None:
    graph = figure1_graph()
    expected = _serial_renderings(graph, list(QUERIES))
    with QueryService(
        graph, workers=2, execution_mode="race", result_cache_size=0
    ) as service:
        outcomes = service.run_batch(list(QUERIES), max_length=BOUND)
        stats = service.statistics()
    for text, outcome, want in zip(QUERIES, outcomes, expected):
        assert outcome.ok, (text, outcome.error)
        assert outcome.rendered() == want, text
        assert outcome.route == "race"
        assert outcome.executor in ("materialize", "pipeline")
    assert stats.races == len(QUERIES)
    assert sum(stats.race_wins.values()) == len(QUERIES)


# ----------------------------------------------------------------------
# Routing and statistics surface
# ----------------------------------------------------------------------
class TestRouting:
    def test_router_single_dispatch_matches_auto_choice(self) -> None:
        graph = figure1_graph()
        engine = PathQueryEngine(graph)
        for text in QUERIES:
            cached = engine.prepare(text)
            decision = PortfolioRouter().decide(
                cached.optimized, engine.cost_model(), execution_mode="processes"
            )
            assert decision.mode == "single"
            assert decision.executors == (engine.select_executor(cached.optimized),)

    def test_explicit_executor_is_never_raced(self) -> None:
        graph = figure1_graph()
        engine = PathQueryEngine(graph)
        cached = engine.prepare(QUERIES[3])
        decision = PortfolioRouter().decide(
            cached.optimized,
            engine.cost_model(),
            execution_mode="race",
            requested="pipeline",
        )
        assert decision.mode == "single"
        assert decision.executors == ("pipeline",)

    def test_race_band_gates_racing_to_the_coin_flip_zone(self) -> None:
        graph = figure1_graph()
        engine = PathQueryEngine(graph)
        cached = engine.prepare(QUERIES[0])  # non-recursive: fraction == 0.0
        narrow = PortfolioRouter(race_band=0.01).decide(
            cached.optimized, engine.cost_model(), execution_mode="race"
        )
        assert narrow.mode == "single"
        wide = PortfolioRouter(race_band=RECURSIVE_COST_THRESHOLD).decide(
            cached.optimized, engine.cost_model(), execution_mode="race"
        )
        assert wide.mode == "race"
        assert len(wide.executors) == 2

    def test_engine_route_convenience(self) -> None:
        graph = figure1_graph()
        engine = PathQueryEngine(graph)
        decision = engine.route(QUERIES[3], execution_mode="race")
        assert decision.racing
        assert set(decision.executors) == {"materialize", "pipeline"}

    def test_invalid_modes_rejected_everywhere(self) -> None:
        graph = figure1_graph()
        with pytest.raises(ValueError):
            PortfolioRouter().decide(None, None, execution_mode="fibers")
        with pytest.raises(ServiceError):
            QueryService(graph, workers=2, execution_mode="fibers")
        with pytest.raises(ServiceError):
            QueryService(graph, workers=0, execution_mode="processes")
        assert EXECUTION_MODES == ("threads", "processes", "race")

    def test_statistics_identify_the_backend(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=2, execution_mode="processes") as service:
            service.run_batch([QUERIES[0]])
            stats = service.statistics()
        assert stats.backend == "process"
        assert stats.execution_mode == "processes"
        assert stats.pool["workers"] == 2
        assert stats.pool["dispatched"] == 1


# ----------------------------------------------------------------------
# Budgets and cancellation across the boundary
# ----------------------------------------------------------------------
class TestBudgets:
    def test_cancel_hook_kills_at_the_next_checkpoint(self) -> None:
        """Unit test for the new ``cancel`` hook (no processes involved)."""
        flip = {"on": False}
        budget = QueryBudget(cancel=lambda: flip["on"])
        budget.charge(10, "warm-up")  # cheap: hook polled at amortized boundaries
        flip["on"] = True
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.checkpoint("loop")
        assert excinfo.value.reason == "cancelled"
        assert excinfo.value.stopped_at == "loop"

    def test_budget_without_cancel_is_unchanged(self) -> None:
        budget = QueryBudget()
        assert budget.unlimited
        assert QueryBudget(cancel=lambda: False).unlimited is False

    def test_max_visited_kill_crosses_the_process_boundary(self) -> None:
        graph = CORPUS[0]
        with QueryService(graph, workers=1, execution_mode="processes") as service:
            outcome = service.submit(
                "MATCH ALL TRAIL p = (?x)-[(Knows|Likes)+]->(?y)", max_visited=3
            ).result(timeout=60)
        assert outcome.timed_out
        assert outcome.budget_reason == "max_visited"
        assert outcome.paths_visited >= 3  # partial progress survived pickling
        assert outcome.stopped_at

    def test_unpicklable_parameter_fails_fast_instead_of_hanging(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=1, execution_mode="processes") as service:
            outcome = service.submit(
                "MATCH ALL TRAIL p = (?x {name: $who})-[Knows]->(?y)",
                params={"who": lambda: "Moe"},  # hashable but not picklable
            ).result(timeout=60)
            # The pool must still be alive for the next query.
            follow_up = service.run_batch([QUERIES[0]])[0]
        assert not outcome.ok
        assert outcome.error is not None
        assert follow_up.ok


# ----------------------------------------------------------------------
# Crash containment
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_crash_is_requeued_then_resolved_as_worker_died(self) -> None:
        graph = figure1_graph()
        with QueryService(
            graph,
            workers=2,
            execution_mode="processes",
            pool_options={"crash_hook": True, "max_requeues": 1},
        ) as service:
            baseline = service.run_batch([QUERIES[3]])[0]
            crash = service.submit(CRASH_QUERY).result(timeout=60)
            # The pool refills asynchronously: the monitor respawns
            # replacements after adjudicating each death.
            deadline = time.monotonic() + 30.0
            while (
                service.statistics().pool["workers_alive"] < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            stats = service.statistics()
            survivor = service.run_batch([QUERIES[3]])[0]
        assert not crash.ok
        assert crash.worker_died is not None
        assert crash.worker_died.requeued  # first death requeued, second resolved
        assert crash.worker_died.pid is not None
        assert "13" in crash.worker_died.reason
        # Attributed separately from timeouts and query failures.
        assert stats.worker_died == 1
        assert stats.failed == 0
        assert stats.timed_out == 0
        assert stats.requeued == 1
        assert stats.pool["worker_deaths"] == 2
        assert stats.pool["workers_alive"] == 2
        assert survivor.ok
        assert survivor.rendered() == baseline.rendered()

    def test_crash_hook_disabled_by_default(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=1, execution_mode="processes") as service:
            outcome = service.submit(CRASH_QUERY).result(timeout=60)
            stats = service.statistics()
        # Without the hook the sentinel is just invalid GQL: a parse error.
        assert outcome.error is not None
        assert outcome.worker_died is None
        assert stats.worker_died == 0
        assert stats.pool["worker_deaths"] == 0


# ----------------------------------------------------------------------
# Version drift and snapshot isolation across the fork
# ----------------------------------------------------------------------
class TestVersionDrift:
    def test_mutation_triggers_exactly_one_refork(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=2, execution_mode="processes") as service:
            before = service.run_batch([QUERIES[0]])[0]
            assert service.statistics().reforks == 0
            graph.add_node("drift-a", "Person")
            graph.add_node("drift-b", "Person")
            graph.add_edge("drift-e", "drift-a", "drift-b", "Knows")
            after = service.run_batch([QUERIES[0], QUERIES[0]])[0]
            stats = service.statistics()
        # Three mutations, one drift observed at dispatch: one refork.
        assert stats.reforks == 1
        assert after.version == before.version + 3
        assert len(after) == len(before) + 1

    def test_old_snapshot_served_by_new_generation(self) -> None:
        """Requeued/pinned tasks at old versions run fine on newer forks."""
        graph = figure1_graph()
        with QueryService(graph, workers=1, execution_mode="processes") as service:
            pinned = service.run_batch([QUERIES[3]])[0]
            graph.add_edge("ee", "n1", "n7", "Knows")
            bumped = service.run_batch([QUERIES[3]])[0]
        assert pinned.ok and bumped.ok
        assert bumped.version > pinned.version
        assert len(bumped) != len(pinned)  # new edge visible only after the pin


EDGE_LABELS = ("Knows", "Likes")


class _MutationLog:
    """Applies mutations to a live graph while recording them for replay."""

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph = graph
        self.base_version = graph.version
        self.ops: list[tuple] = []
        self._counter = 0

    def add_node(self) -> None:
        node_id = f"p{self._counter}"
        self._counter += 1
        self.graph.add_node(node_id, "Person", {"name": node_id})
        self.ops.append(("node", node_id))

    def add_edge(self, source_seed: int, target_seed: int, label_index: int) -> None:
        nodes = self.graph.node_ids()
        source = nodes[source_seed % len(nodes)]
        target = nodes[target_seed % len(nodes)]
        edge_id = f"pe{self._counter}"
        self._counter += 1
        label = EDGE_LABELS[label_index % len(EDGE_LABELS)]
        self.graph.add_edge(edge_id, source, target, label)
        self.ops.append(("edge", edge_id, source, target, label))

    def replay(self, version: int) -> PropertyGraph:
        graph = figure1_graph()
        assert graph.version == self.base_version
        for op in self.ops[: version - self.base_version]:
            if op[0] == "node":
                graph.add_node(op[1], "Person", {"name": op[1]})
            else:
                graph.add_edge(op[1], op[2], op[3], op[4])
        assert graph.version == version
        return graph


_schedule_steps = st.one_of(
    st.tuples(st.just("query"), st.integers(0, len(QUERIES) - 1)),
    st.tuples(st.just("node"), st.just(0)),
    st.tuples(
        st.just("edge"),
        st.integers(0, 10**6),
        st.integers(0, 10**6),
        st.integers(0, 1),
    ),
)


class TestSnapshotIsolationAcrossFork:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(schedule=st.lists(_schedule_steps, min_size=1, max_size=15))
    def test_every_outcome_consistent_with_its_pinned_version(self, schedule) -> None:
        """Mutations interleave with in-flight process queries; every result
        equals a serial evaluation at the version it was pinned to.

        This is the fork-boundary version of the thread-mode isolation
        property: a worker forked at version *v* must answer a query pinned
        to ``u <= v`` as if the graph were frozen at ``u``, and drift past
        *v* must refork rather than leak newer state into old pins.
        """
        graph = figure1_graph()
        log = _MutationLog(graph)
        submitted: list[tuple[str, object]] = []
        with QueryService(
            graph, workers=2, execution_mode="processes", result_cache_size=0
        ) as service:
            for step in schedule:
                if step[0] == "query":
                    text = QUERIES[step[1]]
                    submitted.append((text, service.submit(text, max_length=BOUND)))
                elif step[0] == "node":
                    log.add_node()
                else:
                    log.add_edge(step[1], step[2], step[3])
            outcomes = [(text, ticket.result(timeout=120)) for text, ticket in submitted]
        for text, outcome in outcomes:
            assert outcome.ok, (text, outcome.error)
            replay = log.replay(outcome.version)
            expected = _serial_renderings(replay, [text])[0]
            assert outcome.rendered() == expected, (text, outcome.version)


# ----------------------------------------------------------------------
# Pool lifecycle and statistics aggregation
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_pool_rejects_zero_workers(self) -> None:
        with pytest.raises(ServiceError):
            ProcessWorkerPool(figure1_graph(), 0)

    def test_pool_close_is_idempotent_and_joins_everything(self) -> None:
        pool = ProcessWorkerPool(figure1_graph(), 2)
        assert pool.statistics()["workers_alive"] == 2
        pool.close(deadline=10.0)
        pool.close(deadline=10.0)
        with pytest.raises(ServiceError):
            pool.execute(
                text=QUERIES[0],
                params=None,
                max_length=None,
                executors=("pipeline",),
                limit=None,
                deadline=None,
                max_visited=None,
                version=0,
                num_nodes=0,
                num_edges=0,
            )

    def test_service_close_shuts_the_pool_down(self) -> None:
        graph = figure1_graph()
        service = QueryService(graph, workers=2, execution_mode="processes")
        service.run_batch([QUERIES[0]])
        pool = service._pool
        service.close()
        assert pool._closed
        with pytest.raises(ServiceError):
            service.submit(QUERIES[0])

    def test_statistics_merge_aggregates_two_services(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=2, execution_mode="processes") as a:
            a.run_batch(list(QUERIES))
            stats_a = a.statistics()
        with QueryService(graph, workers=0) as b:
            b.run_batch(list(QUERIES[:2]))
            stats_b = b.statistics()
        merged = stats_a.merge(stats_b)
        assert merged.submitted == stats_a.submitted + stats_b.submitted
        assert merged.executed == stats_a.executed + stats_b.executed
        assert merged.workers == stats_a.workers + stats_b.workers
        assert merged.backend == "process+thread"
        assert merged.execution_mode == "processes+threads"
        assert merged.queued_seconds_max == max(
            stats_a.queued_seconds_max, stats_b.queued_seconds_max
        )
        # Nested dicts merge numerically.
        assert merged.plan_cache["misses"] == (
            stats_a.plan_cache["misses"] + stats_b.plan_cache["misses"]
        )
        # merge() is symmetric on the counters.
        flipped = stats_b.merge(stats_a)
        assert flipped.submitted == merged.submitted
        assert flipped.races == merged.races

    def test_result_cache_serves_process_results(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=2, execution_mode="processes") as service:
            first = service.run_batch([QUERIES[3]])[0]
            second = service.run_batch([QUERIES[3]])[0]
            stats = service.statistics()
        assert not first.result_cache_hit
        assert second.result_cache_hit
        assert second.rendered() == first.rendered()
        assert stats.result_cache_served == 1
        assert stats.pool["dispatched"] == 1  # the hit never reached the pool

    def test_delta_invalidation_survives_the_process_boundary(self) -> None:
        """PR 6 semantics: a disjoint write keeps process-computed entries."""
        graph = figure1_graph()
        with QueryService(graph, workers=2, execution_mode="processes") as service:
            first = service.run_batch([QUERIES[0]])[0]
            graph.add_node("bystander", "Person")  # disjoint from Knows scans
            second = service.run_batch([QUERIES[0]])[0]
            stats = service.statistics()
        assert second.result_cache_hit
        assert second.rendered() == first.rendered()
        assert stats.result_cache_cross_version_hits == 1
