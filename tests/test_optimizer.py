"""Tests for the rewrite rules, the rule driver, and the cost model (Section 7.3)."""

from __future__ import annotations

import pytest

from repro.algebra.conditions import And, label_of_edge, prop_of_first, prop_of_last
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import (
    EdgesScan,
    GroupBy,
    Join,
    NodesScan,
    OrderBy,
    Projection,
    Recursive,
    Selection,
    Union,
)
from repro.algebra.solution_space import GroupByKey, OrderByKey, ProjectionSpec
from repro.optimizer.cost import CostModel, estimate_cost
from repro.optimizer.engine import Optimizer, optimize
from repro.optimizer.rules import (
    MergeSelections,
    PushSelectionBelowUnion,
    PushSelectionIntoJoin,
    RemoveRedundantOrderBy,
    SimplifyUnionDuplicates,
    WalkToShortest,
)
from repro.semantics.restrictors import Restrictor


def knows_scan() -> Selection:
    return Selection(label_of_edge(1, "Knows"), EdgesScan())


class TestPushSelectionBelowUnion:
    def test_rewrite_shape(self) -> None:
        rule = PushSelectionBelowUnion()
        plan = Selection(prop_of_first("name", "Moe"), Union(knows_scan(), EdgesScan()))
        rewritten = rule.apply(plan)
        assert isinstance(rewritten, Union)
        assert isinstance(rewritten.left, Selection)
        assert isinstance(rewritten.right, Selection)

    def test_no_match(self) -> None:
        assert PushSelectionBelowUnion().apply(knows_scan()) is None
        assert PushSelectionBelowUnion().apply(Union(EdgesScan(), NodesScan())) is None

    def test_semantics_preserved(self, figure1) -> None:
        plan = Selection(prop_of_first("name", "Moe"), Union(knows_scan(), EdgesScan()))
        rewritten = PushSelectionBelowUnion().apply(plan)
        assert evaluate_to_paths(plan, figure1) == evaluate_to_paths(rewritten, figure1)


class TestPushSelectionIntoJoin:
    """The Figure 6 pushdown."""

    def test_figure6_rewrite(self) -> None:
        rule = PushSelectionIntoJoin()
        plan = Selection(prop_of_first("name", "Moe"), Join(knows_scan(), knows_scan()))
        rewritten = rule.apply(plan)
        assert isinstance(rewritten, Join)
        assert isinstance(rewritten.left, Selection)
        assert rewritten.left.condition == prop_of_first("name", "Moe")

    def test_last_condition_moves_right(self) -> None:
        plan = Selection(prop_of_last("name", "Apu"), Join(knows_scan(), knows_scan()))
        rewritten = PushSelectionIntoJoin().apply(plan)
        assert isinstance(rewritten, Join)
        assert isinstance(rewritten.right, Selection)

    def test_mixed_conjunction_splits(self) -> None:
        condition = And(prop_of_first("name", "Moe"), prop_of_last("name", "Apu"))
        plan = Selection(condition, Join(knows_scan(), knows_scan()))
        rewritten = PushSelectionIntoJoin().apply(plan)
        assert isinstance(rewritten, Join)
        assert isinstance(rewritten.left, Selection)
        assert isinstance(rewritten.right, Selection)

    def test_non_endpoint_condition_stays(self) -> None:
        plan = Selection(label_of_edge(2, "Knows"), Join(knows_scan(), knows_scan()))
        assert PushSelectionIntoJoin().apply(plan) is None

    def test_remaining_conjunct_stays_above(self) -> None:
        condition = And(prop_of_first("name", "Moe"), label_of_edge(2, "Knows"))
        plan = Selection(condition, Join(knows_scan(), knows_scan()))
        rewritten = PushSelectionIntoJoin().apply(plan)
        assert isinstance(rewritten, Selection)
        assert rewritten.condition == label_of_edge(2, "Knows")
        assert isinstance(rewritten.child, Join)

    def test_semantics_preserved(self, figure1) -> None:
        condition = And(prop_of_first("name", "Moe"), prop_of_last("name", "Apu"))
        plan = Selection(condition, Join(knows_scan(), knows_scan()))
        rewritten = PushSelectionIntoJoin().apply(plan)
        assert evaluate_to_paths(plan, figure1) == evaluate_to_paths(rewritten, figure1)


class TestMergeSelections:
    def test_merge(self) -> None:
        plan = Selection(prop_of_first("name", "Moe"), Selection(label_of_edge(1, "Knows"), EdgesScan()))
        rewritten = MergeSelections().apply(plan)
        assert isinstance(rewritten, Selection)
        assert isinstance(rewritten.condition, And)
        assert isinstance(rewritten.child, EdgesScan)

    def test_semantics_preserved(self, figure1) -> None:
        plan = Selection(prop_of_first("name", "Lisa"), knows_scan())
        rewritten = MergeSelections().apply(plan)
        assert evaluate_to_paths(plan, figure1) == evaluate_to_paths(rewritten, figure1)


class TestRemoveRedundantOrderBy:
    def test_drops_useless_partition_group_ordering(self) -> None:
        """The paper's π(*,*,1)(τPG(γ(...))) example: the τPG disappears."""
        plan = OrderBy(GroupBy(knows_scan(), GroupByKey.NONE), OrderByKey.PG)
        rewritten = RemoveRedundantOrderBy().apply(plan)
        assert isinstance(rewritten, GroupBy)

    def test_keeps_path_ordering(self) -> None:
        plan = OrderBy(GroupBy(knows_scan(), GroupByKey.NONE), OrderByKey.PGA)
        rewritten = RemoveRedundantOrderBy().apply(plan)
        assert isinstance(rewritten, OrderBy)
        assert rewritten.key is OrderByKey.A

    def test_group_ordering_redundant_for_st(self) -> None:
        plan = OrderBy(GroupBy(knows_scan(), GroupByKey.ST), OrderByKey.GA)
        rewritten = RemoveRedundantOrderBy().apply(plan)
        assert rewritten.key is OrderByKey.A

    def test_useful_ordering_untouched(self) -> None:
        plan = OrderBy(GroupBy(knows_scan(), GroupByKey.STL), OrderByKey.PGA)
        assert RemoveRedundantOrderBy().apply(plan) is None

    def test_semantics_preserved(self, figure1) -> None:
        inner = Recursive(knows_scan(), Restrictor.TRAIL)
        plan = Projection(
            OrderBy(GroupBy(inner, GroupByKey.NONE), OrderByKey.PG), ProjectionSpec("*", "*", 1)
        )
        optimized = optimize(plan).optimized
        assert evaluate_to_paths(plan, figure1) == evaluate_to_paths(optimized, figure1)


class TestWalkToShortest:
    def _any_shortest_walk_plan(self, max_length: int | None = None) -> Projection:
        return Projection(
            OrderBy(
                GroupBy(Recursive(knows_scan(), Restrictor.WALK, max_length), GroupByKey.ST),
                OrderByKey.A,
            ),
            ProjectionSpec("*", "*", 1),
        )

    def test_any_shortest_walk_rewritten(self) -> None:
        rewritten = WalkToShortest().apply(self._any_shortest_walk_plan())
        assert rewritten is not None
        recursive = next(n for n in rewritten.iter_subtree() if isinstance(n, Recursive))
        assert recursive.restrictor is Restrictor.SHORTEST

    def test_all_shortest_walk_rewritten(self) -> None:
        plan = Projection(
            OrderBy(
                GroupBy(Recursive(knows_scan(), Restrictor.WALK), GroupByKey.STL),
                OrderByKey.G,
            ),
            ProjectionSpec("*", 1, "*"),
        )
        rewritten = WalkToShortest().apply(plan)
        assert rewritten is not None

    def test_shortest_k_not_rewritten(self) -> None:
        plan = Projection(
            OrderBy(
                GroupBy(Recursive(knows_scan(), Restrictor.WALK), GroupByKey.ST),
                OrderByKey.A,
            ),
            ProjectionSpec("*", "*", 2),
        )
        assert WalkToShortest().apply(plan) is None

    def test_trail_recursion_not_rewritten(self) -> None:
        plan = Projection(
            OrderBy(
                GroupBy(Recursive(knows_scan(), Restrictor.TRAIL), GroupByKey.ST),
                OrderByKey.A,
            ),
            ProjectionSpec("*", "*", 1),
        )
        assert WalkToShortest().apply(plan) is None

    def test_rewrite_restores_termination(self, figure1) -> None:
        """The unbounded ANY SHORTEST WALK plan only terminates after the rewrite."""
        plan = self._any_shortest_walk_plan(max_length=None)
        optimized = optimize(plan).optimized
        result = evaluate_to_paths(optimized, figure1)
        assert len(result) == 9  # one shortest Knows+ path per connected pair

    def test_rewrite_preserves_results_with_bound(self, figure1) -> None:
        plan = self._any_shortest_walk_plan(max_length=4)
        optimized = optimize(plan).optimized
        assert evaluate_to_paths(plan, figure1) == evaluate_to_paths(optimized, figure1)

    def test_selection_between_projection_and_recursion_handled(self) -> None:
        inner = Selection(prop_of_first("name", "Moe"), Recursive(knows_scan(), Restrictor.WALK))
        plan = Projection(
            OrderBy(GroupBy(inner, GroupByKey.ST), OrderByKey.A), ProjectionSpec("*", "*", 1)
        )
        rewritten = WalkToShortest().apply(plan)
        assert rewritten is not None
        recursive = next(n for n in rewritten.iter_subtree() if isinstance(n, Recursive))
        assert recursive.restrictor is Restrictor.SHORTEST


class TestSimplifyUnionDuplicates:
    def test_identical_operands_collapse(self) -> None:
        plan = Union(knows_scan(), knows_scan())
        assert SimplifyUnionDuplicates().apply(plan) == knows_scan()

    def test_distinct_operands_untouched(self) -> None:
        assert SimplifyUnionDuplicates().apply(Union(knows_scan(), EdgesScan())) is None


class TestOptimizerDriver:
    def test_reaches_fixpoint_and_records_rules(self) -> None:
        plan = Selection(
            And(prop_of_first("name", "Moe"), prop_of_last("name", "Apu")),
            Union(Join(knows_scan(), knows_scan()), Join(knows_scan(), knows_scan())),
        )
        result = optimize(plan)
        assert result.changed
        assert "simplify-union-duplicates" in result.applied_rules
        assert result.passes >= 1

    def test_no_rules_applied_on_atoms(self) -> None:
        result = optimize(EdgesScan())
        assert not result.changed
        assert result.optimized == EdgesScan()

    def test_custom_rule_set(self) -> None:
        plan = Union(knows_scan(), knows_scan())
        result = Optimizer(rules=[SimplifyUnionDuplicates()]).optimize(plan)
        assert result.optimized == knows_scan()

    def test_optimized_plan_is_equivalent(self, figure1) -> None:
        plan = Selection(
            And(prop_of_first("name", "Moe"), prop_of_last("name", "Apu")),
            Union(
                Recursive(knows_scan(), Restrictor.SIMPLE),
                Recursive(
                    Join(
                        Selection(label_of_edge(1, "Likes"), EdgesScan()),
                        Selection(label_of_edge(1, "Has_creator"), EdgesScan()),
                    ),
                    Restrictor.SIMPLE,
                ),
            ),
        )
        result = optimize(plan)
        assert evaluate_to_paths(plan, figure1) == evaluate_to_paths(result.optimized, figure1)


class TestCostModel:
    def test_atom_cardinalities(self, figure1) -> None:
        model = CostModel(figure1)
        assert model.estimate(NodesScan()).output_cardinality == 7
        assert model.estimate(EdgesScan()).output_cardinality == 11

    def test_selection_uses_label_selectivity(self, figure1) -> None:
        model = CostModel(figure1)
        estimate = model.estimate(knows_scan())
        assert estimate.output_cardinality == pytest.approx(11 * 4 / 11)

    def test_pushdown_reduces_estimated_cost(self, figure1) -> None:
        plan = Selection(prop_of_first("name", "Moe"), Join(knows_scan(), knows_scan()))
        optimized = optimize(plan).optimized
        model = CostModel(figure1)
        assert model.estimate(optimized).total_cost < model.estimate(plan).total_cost
        assert model.compare(optimized, plan) == -1

    def test_walk_to_shortest_reduces_estimated_cost(self, figure1) -> None:
        plan = Projection(
            OrderBy(
                GroupBy(Recursive(knows_scan(), Restrictor.WALK), GroupByKey.ST),
                OrderByKey.A,
            ),
            ProjectionSpec("*", "*", 1),
        )
        optimized = optimize(plan).optimized
        assert estimate_cost(optimized, figure1).total_cost < estimate_cost(plan, figure1).total_cost

    def test_compare_equal_plans(self, figure1) -> None:
        assert CostModel(figure1).compare(knows_scan(), knows_scan()) == 0
