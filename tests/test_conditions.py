"""Tests for the selection-condition language (Section 3.1)."""

from __future__ import annotations

import pytest

from repro.algebra.conditions import (
    And,
    Comparator,
    LabelCondition,
    LengthCondition,
    Not,
    Or,
    PropertyCondition,
    Target,
    TrueCondition,
    label_of_edge,
    label_of_first,
    label_of_last,
    label_of_node,
    length_at_least,
    length_at_most,
    length_equals,
    prop_of_edge,
    prop_of_first,
    prop_of_last,
    prop_of_node,
)
from repro.errors import ConditionError
from repro.paths.path import Path


@pytest.fixture
def moe_to_bart(figure1) -> Path:
    """(n1, e1, n2, e2, n3): Moe -Knows-> Lisa -Knows-> Bart."""
    return Path.from_interleaved(figure1, ("n1", "e1", "n2", "e2", "n3"))


class TestLabelConditions:
    def test_label_of_edge(self, moe_to_bart) -> None:
        assert label_of_edge(1, "Knows").evaluate(moe_to_bart)
        assert not label_of_edge(1, "Likes").evaluate(moe_to_bart)

    def test_label_of_node(self, moe_to_bart) -> None:
        assert label_of_node(1, "Person").evaluate(moe_to_bart)
        assert not label_of_node(1, "Message").evaluate(moe_to_bart)

    def test_label_of_first_and_last(self, moe_to_bart) -> None:
        assert label_of_first("Person").evaluate(moe_to_bart)
        assert label_of_last("Person").evaluate(moe_to_bart)
        assert not label_of_last("Message").evaluate(moe_to_bart)

    def test_out_of_range_position_is_false(self, moe_to_bart) -> None:
        assert not label_of_edge(3, "Knows").evaluate(moe_to_bart)
        assert not label_of_node(4, "Person").evaluate(moe_to_bart)

    def test_inequality_comparator(self, moe_to_bart) -> None:
        assert label_of_edge(1, "Likes", Comparator.NE).evaluate(moe_to_bart)

    def test_position_required(self) -> None:
        with pytest.raises(ConditionError):
            LabelCondition(Target.EDGE, "Knows", None)
        with pytest.raises(ConditionError):
            LabelCondition(Target.NODE, "Person", 0)


class TestPropertyConditions:
    def test_first_and_last_properties(self, moe_to_bart) -> None:
        assert prop_of_first("name", "Moe").evaluate(moe_to_bart)
        assert prop_of_last("name", "Bart").evaluate(moe_to_bart)
        assert not prop_of_last("name", "Apu").evaluate(moe_to_bart)

    def test_positional_properties(self, moe_to_bart) -> None:
        assert prop_of_node(2, "name", "Lisa").evaluate(moe_to_bart)
        assert prop_of_edge(1, "since", 2010).evaluate(moe_to_bart)
        assert not prop_of_edge(2, "since", 2010).evaluate(moe_to_bart)

    def test_missing_property_is_false(self, moe_to_bart) -> None:
        assert not prop_of_first("salary", 10).evaluate(moe_to_bart)

    def test_numeric_comparators(self, moe_to_bart) -> None:
        assert prop_of_edge(1, "since", 2015, Comparator.LT).evaluate(moe_to_bart)
        assert prop_of_edge(1, "since", 2010, Comparator.GE).evaluate(moe_to_bart)
        assert not prop_of_edge(1, "since", 2000, Comparator.LE).evaluate(moe_to_bart)

    def test_incomparable_types_are_false(self, moe_to_bart) -> None:
        assert not prop_of_first("name", 42, Comparator.LT).evaluate(moe_to_bart)

    def test_position_required(self) -> None:
        with pytest.raises(ConditionError):
            PropertyCondition(Target.NODE, "name", "Moe", None)


class TestLengthConditions:
    def test_equality(self, moe_to_bart, figure1) -> None:
        assert length_equals(2).evaluate(moe_to_bart)
        assert not length_equals(1).evaluate(moe_to_bart)
        assert length_equals(0).evaluate(Path.from_node(figure1, "n1"))

    def test_bounds(self, moe_to_bart) -> None:
        assert length_at_most(2).evaluate(moe_to_bart)
        assert length_at_most(5).evaluate(moe_to_bart)
        assert not length_at_most(1).evaluate(moe_to_bart)
        assert length_at_least(2).evaluate(moe_to_bart)
        assert not length_at_least(3).evaluate(moe_to_bart)

    def test_negative_length_rejected(self) -> None:
        with pytest.raises(ConditionError):
            LengthCondition(-1)


class TestBooleanCombinators:
    def test_and_or_not(self, moe_to_bart) -> None:
        knows_first = label_of_edge(1, "Knows")
        moe_first = prop_of_first("name", "Moe")
        apu_last = prop_of_last("name", "Apu")

        assert And(knows_first, moe_first).evaluate(moe_to_bart)
        assert not And(knows_first, apu_last).evaluate(moe_to_bart)
        assert Or(apu_last, moe_first).evaluate(moe_to_bart)
        assert not Or(apu_last, Not(moe_first)).evaluate(moe_to_bart)
        assert Not(apu_last).evaluate(moe_to_bart)

    def test_operator_overloads(self, moe_to_bart) -> None:
        condition = label_of_edge(1, "Knows") & prop_of_first("name", "Moe")
        assert isinstance(condition, And)
        assert condition.evaluate(moe_to_bart)
        condition = prop_of_last("name", "Apu") | prop_of_last("name", "Bart")
        assert isinstance(condition, Or)
        assert condition.evaluate(moe_to_bart)
        assert (~prop_of_last("name", "Apu")).evaluate(moe_to_bart)

    def test_true_condition(self, moe_to_bart) -> None:
        assert TrueCondition().evaluate(moe_to_bart)
        assert str(TrueCondition()) == "true"

    def test_condition_is_callable(self, moe_to_bart) -> None:
        assert label_of_edge(1, "Knows")(moe_to_bart)


class TestStructuralEqualityAndRendering:
    def test_equality(self) -> None:
        assert label_of_edge(1, "Knows") == label_of_edge(1, "Knows")
        assert label_of_edge(1, "Knows") != label_of_edge(2, "Knows")
        assert prop_of_first("name", "Moe") == prop_of_first("name", "Moe")

    def test_string_rendering_matches_paper_notation(self) -> None:
        assert str(label_of_edge(1, "Knows")) == "label(edge(1)) = 'Knows'"
        assert str(prop_of_first("name", "Moe")) == "first.name = 'Moe'"
        assert str(length_equals(3)) == "len() = 3"
        rendered = str(label_of_edge(1, "Knows") & prop_of_last("name", "Apu"))
        assert "AND" in rendered
