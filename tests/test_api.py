"""Tests for the client API: ``connect`` / Database / Session / PreparedQuery / ResultCursor.

Four contracts are locked down here:

* **Facade behavior** — sessions pin snapshots, defaults apply and override,
  lifecycles are enforced, the service shares the database's plan cache.
* **Parameterized prepared queries** — ``$name`` placeholders thread from the
  lexer to the plan; fifty distinct bindings of one prepared text incur
  exactly one parse/plan/optimize (the acceptance criterion) and never serve
  each other's results.
* **Cursor parity** — ``fetchmany`` / ``fetchall`` / iteration over the
  50-graph corpus is identical to ``engine.query(...).paths`` for both
  executors, including LIMIT pushdown and mid-stream ``BudgetExceeded``.
* **Bounded streaming** — a pipeline cursor consuming a handful of rows of a
  huge walk query does a correspondingly small amount of work (the other
  acceptance criterion), verified through ``ExecutionStatistics``.
"""

from __future__ import annotations

import pytest

import repro
from graph_corpus import closure_corpus
from repro.api import Database, PreparedQuery, Session, connect
from repro.datasets.figure1 import figure1_graph
from repro.datasets.generators import cycle_graph
from repro.engine.engine import PathQueryEngine
from repro.errors import (
    BudgetExceeded,
    GQLSyntaxError,
    NonTerminatingQueryError,
    ParameterError,
    ServiceError,
)
from repro.execution import QueryBudget
from repro.graph.model import PropertyGraph

PARAM_QUERY = 'MATCH ANY SHORTEST TRAIL p = (?x {name: $name})-[:Knows]->+(?y)'
CONSTANT_QUERY = 'MATCH ANY SHORTEST TRAIL p = (?x {{name: "{value}"}})-[:Knows]->+(?y)'

CORPUS: list[PropertyGraph] = closure_corpus()

#: Queries swept over the corpus by the cursor-parity suite: a streaming
#: join shape, every-restrictor recursion, and the selector pipelines.
PARITY_QUERIES = (
    "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)",
    "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)",
    "MATCH ALL ACYCLIC p = (?x)-[Knows*]->(?y)",
    "MATCH ALL WALK p = (?x)-[Knows+]->(?y)",
    "MATCH ANY SHORTEST TRAIL p = (?x)-[Knows+]->(?y)",
)
PARITY_BOUND = 4


def rendering(paths) -> list[str]:
    """Canonical sorted rendering used for byte-identical comparisons."""
    return sorted(str(path) for path in paths)


@pytest.fixture
def db() -> Database:
    return connect(figure1_graph())


class TestConnect:
    def test_connect_returns_database(self, db) -> None:
        assert isinstance(db, Database)
        assert db.graph.name == "figure1"

    def test_connect_without_graph_starts_empty(self) -> None:
        db = connect()
        assert db.graph.num_nodes() == 0
        db.graph.add_node("a", "Person")
        assert db.graph.num_nodes() == 1

    def test_connect_rejects_unknown_executor(self) -> None:
        with pytest.raises(ValueError, match="unknown executor"):
            connect(figure1_graph(), executor="quantum")

    def test_close_is_idempotent_and_final(self, db) -> None:
        db.close()
        db.close()
        with pytest.raises(ServiceError, match="closed"):
            db.session()
        with pytest.raises(ServiceError, match="closed"):
            db.execute("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")

    def test_context_manager_closes(self) -> None:
        with connect(figure1_graph()) as db:
            assert not db.closed
        assert db.closed

    def test_database_execute_returns_open_cursor(self, db) -> None:
        cursor = db.execute("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert not cursor.closed
        assert len(cursor.fetchall()) == 4

    def test_database_query_materializes(self, db) -> None:
        result = db.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert len(result.paths) == 4

    def test_cost_model_and_snapshot(self, db) -> None:
        assert db.cost_model() is db.engine.cost_model()
        snapshot = db.snapshot()
        assert snapshot.version == db.graph.version


class TestSession:
    def test_session_pins_version_at_open(self, db) -> None:
        with db.session() as session:
            pinned = session.version
            before = rendering(session.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)").paths)
            db.graph.add_node("nx", "Person", {"name": "New"})
            db.graph.add_edge("ex", "n1", "nx", "Knows")
            after = rendering(session.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)").paths)
            assert session.version == pinned
            assert after == before
        with db.session() as fresh:
            assert fresh.version > pinned
            grown = rendering(fresh.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)").paths)
            assert len(grown) == len(before) + 1

    def test_session_default_limit_applies_and_overrides(self, db) -> None:
        with db.session(limit=2) as session:
            assert session.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)").truncated
            assert len(session.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")) == 2
            # Per-call override wins; explicit None clears the default.
            assert len(session.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)", limit=3)) == 3
            assert len(session.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)", limit=None)) == 4

    def test_session_default_executor(self, db) -> None:
        with db.session(executor="pipeline") as session:
            cursor = session.execute("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
            assert cursor.executor == "pipeline"
            cursor.close()

    def test_session_timeout_budget_kills(self, db) -> None:
        with db.session(timeout=0.0) as session:
            with pytest.raises(BudgetExceeded):
                session.query("MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)")

    def test_closed_session_rejects_queries(self, db) -> None:
        session = db.session()
        session.close()
        with pytest.raises(ServiceError, match="closed"):
            session.execute("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")

    def test_closing_session_closes_open_cursors(self, db) -> None:
        session = db.session()
        cursor = session.execute("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        assert cursor.fetchone() is not None
        session.close()
        assert cursor.closed
        assert cursor.fetchone() is None

    def test_session_explain(self, db) -> None:
        with db.session() as session:
            explanation = session.explain("MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)")
            assert "Optimized plan" in explanation.render()


class TestParameterParsing:
    def test_parameters_collected_in_order(self) -> None:
        query = repro.parse_query(
            'MATCH ALL TRAIL p = (?x {name: $a})-[Knows]->(?y {name: $b}) '
            'WHERE x.last_name = $c OR y.name = $a'
        )
        assert query.parameters == ("a", "b", "c")

    def test_parameter_in_edge_pattern_rejected(self) -> None:
        with pytest.raises(GQLSyntaxError, match="edge pattern"):
            repro.parse_query("MATCH ALL TRAIL p = (?x)-[$label]->(?y)")

    def test_bare_dollar_rejected(self) -> None:
        with pytest.raises(GQLSyntaxError, match="parameter name"):
            repro.parse_query("MATCH ALL TRAIL p = (?x {name: $})-[Knows]->(?y)")

    def test_numeric_parameter_name_rejected(self) -> None:
        with pytest.raises(GQLSyntaxError, match="parameter name"):
            repro.parse_query("MATCH ALL TRAIL p = (?x {name: $1})-[Knows]->(?y)")


class TestParameterBindingValidation:
    def test_missing_binding_raises(self, db) -> None:
        with db.session() as session:
            with pytest.raises(ParameterError, match=r"missing binding\(s\) for \$name"):
                session.query(PARAM_QUERY)

    def test_unknown_binding_raises(self, db) -> None:
        with db.session() as session:
            with pytest.raises(ParameterError, match=r"unknown parameter\(s\) \$who"):
                session.query(PARAM_QUERY, {"name": "Moe", "who": "?"})

    def test_bindings_for_parameterless_query_raise(self, db) -> None:
        with db.session() as session:
            with pytest.raises(ParameterError, match="declares no parameters"):
                session.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)", {"name": "Moe"})

    def test_engine_shim_accepts_params_directly(self) -> None:
        engine = PathQueryEngine(figure1_graph())
        result = engine.query(PARAM_QUERY, params={"name": "Moe"})
        assert len(result.paths) == 3


class TestPreparedQuery:
    def test_prepare_reports_parameters(self, db) -> None:
        with db.session() as session:
            prepared = session.prepare(PARAM_QUERY)
            assert prepared.parameters == ("name",)
            assert isinstance(prepared, PreparedQuery)

    def test_bindings_match_constant_substitution(self, db) -> None:
        with db.session() as session:
            prepared = session.prepare(PARAM_QUERY)
            for value in ("Moe", "Lisa", "Bart", "Apu", "Nobody"):
                bound = rendering(prepared.execute(name=value).fetchall())
                constant = rendering(
                    session.query(CONSTANT_QUERY.format(value=value)).paths
                )
                assert bound == constant, value

    def test_mapping_and_keyword_bindings_are_equivalent(self, db) -> None:
        with db.session() as session:
            prepared = session.prepare(PARAM_QUERY)
            by_mapping = rendering(prepared.execute({"name": "Moe"}).fetchall())
            by_keyword = rendering(prepared.execute(name="Moe").fetchall())
            assert by_mapping == by_keyword

    def test_fifty_bindings_share_one_plan(self, db) -> None:
        """Acceptance: 50 distinct bindings, exactly one parse/plan/optimize."""
        with db.session() as session:
            prepared = session.prepare(PARAM_QUERY)
            misses_after_prepare = db.plan_cache.misses
            hits_before = db.plan_cache.hits
            for index in range(50):
                prepared.execute(name=f"binding-{index}").fetchall()
            assert db.plan_cache.misses == misses_after_prepare  # zero re-plans
            assert db.plan_cache.hits - hits_before >= 49

    def test_distinct_bindings_never_collide(self, db) -> None:
        with db.session() as session:
            prepared = session.prepare(PARAM_QUERY)
            moe = rendering(prepared.execute(name="Moe").fetchall())
            lisa = rendering(prepared.execute(name="Lisa").fetchall())
            moe_again = rendering(prepared.execute(name="Moe").fetchall())
            assert moe != lisa
            assert moe == moe_again

    def test_prepared_query_works_on_both_executors(self, db) -> None:
        with db.session() as session:
            prepared = session.prepare(PARAM_QUERY)
            results = {
                executor: rendering(
                    session.execute(PARAM_QUERY, {"name": "Moe"}, executor=executor).fetchall()
                )
                for executor in ("materialize", "pipeline")
            }
            assert results["materialize"] == results["pipeline"]
            assert prepared.parameters == ("name",)

    def test_database_prepare_follows_live_graph(self, db) -> None:
        prepared = db.prepare('MATCH ALL TRAIL p = (?x {name: $name})-[Knows]->(?y)')
        before = len(prepared.execute(name="Moe").fetchall())
        db.graph.add_node("nx", "Person", {"name": "Moe"})
        db.graph.add_edge("ex", "nx", "n2", "Knows")
        after = len(prepared.execute(name="Moe").fetchall())
        assert after == before + 1


class TestResultCursor:
    QUERY = "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"

    def test_fetch_surface(self, db) -> None:
        with db.session() as session:
            cursor = session.execute(self.QUERY)
            first = cursor.fetchone()
            assert first is not None
            two = cursor.fetchmany(2)
            assert len(two) == 2
            rest = cursor.fetchall()
            assert cursor.rows_returned == 1 + 2 + len(rest) == 4
            assert cursor.closed
            assert cursor.fetchone() is None
            assert cursor.fetchmany(3) == []
            assert cursor.fetchall() == []

    def test_iteration_is_lazy_and_single_pass(self, db) -> None:
        with db.session() as session:
            cursor = session.execute(self.QUERY)
            seen = [str(path) for path in cursor]
            assert len(seen) == 4
            assert list(cursor) == []  # exhausted

    def test_fetchmany_rejects_negative(self, db) -> None:
        cursor = db.execute(self.QUERY)
        with pytest.raises(ValueError):
            cursor.fetchmany(-1)

    def test_bindings_rows_and_table(self, db) -> None:
        with db.session() as session:
            rows = list(session.execute(self.QUERY).bindings())
            assert len(rows) == 4
            assert {row.labels for row in rows} == {("Knows",)}
            table = session.execute(self.QUERY).to_table()
            assert len(table) == 4
            assert sorted(row.to_dict()["source"] for row in table)[0] == "n1"

    def test_context_manager_and_idempotent_close(self, db) -> None:
        with db.execute(self.QUERY) as cursor:
            assert cursor.fetchone() is not None
        assert cursor.closed
        cursor.close()

    def test_metadata_finalizes_on_exhaustion(self, db) -> None:
        with db.session() as session:
            cursor = session.execute(self.QUERY, executor="pipeline")
            assert cursor.elapsed_seconds == 0.0
            cursor.fetchall()
            assert cursor.truncated is False
            assert cursor.total_paths == 4
            assert cursor.elapsed_seconds > 0.0
            assert cursor.statistics.executor == "pipeline"
            assert cursor.graph_version == session.version

    def test_pipeline_limit_truncation_probe(self, db) -> None:
        with db.session() as session:
            cursor = session.execute(self.QUERY, executor="pipeline", limit=2)
            assert len(cursor.fetchall()) == 2
            assert cursor.truncated is True
            assert cursor.total_paths is None
            exact = session.execute(self.QUERY, executor="pipeline", limit=4)
            assert len(exact.fetchall()) == 4
            assert exact.truncated is False
            assert exact.total_paths == 4

    def test_materialize_limit_reports_total(self, db) -> None:
        with db.session() as session:
            cursor = session.execute(self.QUERY, executor="materialize", limit=2)
            assert len(cursor.fetchall()) == 2
            assert cursor.truncated is True
            assert cursor.total_paths == 4

    def test_abandoned_pipeline_cursor_has_unknown_truncation(self, db) -> None:
        with db.session() as session:
            cursor = session.execute(self.QUERY, executor="pipeline")
            cursor.fetchone()
            cursor.close()
            assert cursor.truncated is None

    def test_cache_hit_flag(self, db) -> None:
        with db.session() as session:
            first = session.execute(self.QUERY)
            first.fetchall()
            second = session.execute(self.QUERY)
            second.fetchall()
            assert not first.cache_hit
            assert second.cache_hit

    def test_max_results_budget_trips_on_fetch(self, db) -> None:
        with db.session(max_results=2) as session:
            cursor = session.execute(self.QUERY, executor="pipeline")
            assert len(cursor.fetchmany(2)) == 2
            with pytest.raises(BudgetExceeded, match="max_results"):
                cursor.fetchone()
            assert cursor.closed


class TestCursorThreadSafety:
    """close() from any thread, any number of times — the network front-end's
    teardown contract (the event loop reclaims a cursor while an executor
    thread is suspended inside ``fetchmany``)."""

    LONG_WALK = "MATCH ALL WALK p = (?x)-[Knows]->*(?y)"

    def test_double_close_is_idempotent(self, db) -> None:
        cursor = db.execute("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        cursor.fetchone()
        cursor.close()
        cursor.close()
        cursor.close()
        assert cursor.closed

    def test_concurrent_close_from_many_threads(self) -> None:
        import threading

        db = connect(cycle_graph(8))
        try:
            with db.session() as session:
                cursor = session.execute(
                    self.LONG_WALK, executor="pipeline", max_length=600
                )
                cursor.fetchmany(16)
                errors: list[BaseException] = []

                def slam() -> None:
                    try:
                        cursor.close()
                    except BaseException as exc:  # pragma: no cover - the bug
                        errors.append(exc)

                threads = [threading.Thread(target=slam) for _ in range(8)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=10)
                assert errors == []
                assert cursor.closed
                # Statistics finalized exactly once, to the pre-close count.
                assert cursor.rows_returned == 16
        finally:
            db.close()

    def test_close_during_fetchmany_returns_partial_batch(self) -> None:
        """A close racing a suspended fetchmany must neither raise nor hang:
        the fetch hands back whatever it had pulled so far."""
        import threading
        import time

        db = connect(cycle_graph(8))
        try:
            with db.session() as session:
                cursor = session.execute(
                    self.LONG_WALK, executor="pipeline", max_length=600
                )
                outcome: dict = {}

                def pull() -> None:
                    try:
                        outcome["rows"] = cursor.fetchmany(100_000)
                    except BaseException as exc:  # pragma: no cover - the bug
                        outcome["error"] = exc

                puller = threading.Thread(target=pull)
                puller.start()
                time.sleep(0.02)  # let the fetch get mid-flight
                cursor.close()
                puller.join(timeout=10)
                assert not puller.is_alive()
                assert "error" not in outcome
                assert isinstance(outcome["rows"], list)
                assert cursor.closed
        finally:
            db.close()

    def test_close_unblocks_repeated_fetch_loop(self) -> None:
        """A reader looping fetchmany sees a clean end-of-stream (empty
        batch), not an exception, after another thread closes the cursor."""
        import threading

        db = connect(cycle_graph(8))
        try:
            with db.session() as session:
                cursor = session.execute(
                    self.LONG_WALK, executor="pipeline", max_length=600
                )
                stopped = threading.Event()

                def reader() -> None:
                    while cursor.fetchmany(64):
                        pass
                    stopped.set()

                thread = threading.Thread(target=reader)
                thread.start()
                cursor.close()
                assert stopped.wait(timeout=10)
                thread.join(timeout=10)
        finally:
            db.close()


class TestCursorParity:
    """fetchmany/fetchall/iterator over the corpus == engine.query(...).paths."""

    @pytest.mark.parametrize("graph", CORPUS, ids=lambda graph: graph.name)
    def test_cursor_matches_query_on_corpus(self, graph: PropertyGraph) -> None:
        db = connect(graph, default_max_length=PARITY_BOUND)
        engine = PathQueryEngine(graph, default_max_length=PARITY_BOUND, plan_cache_size=0)
        with db.session(max_length=PARITY_BOUND) as session:
            for text in PARITY_QUERIES:
                for executor in ("materialize", "pipeline"):
                    expected = rendering(
                        engine.query(text, max_length=PARITY_BOUND, executor=executor).paths
                    )
                    drained = rendering(
                        session.execute(text, executor=executor).fetchall()
                    )
                    assert drained == expected, (graph.name, text, executor, "fetchall")
                    iterated = rendering(session.execute(text, executor=executor))
                    assert iterated == expected, (graph.name, text, executor, "iter")
                    chunks: list = []
                    chunked = session.execute(text, executor=executor)
                    while True:
                        batch = chunked.fetchmany(3)
                        if not batch:
                            break
                        chunks.extend(batch)
                    assert rendering(chunks) == expected, (graph.name, text, executor, "fetchmany")

    @pytest.mark.parametrize("graph", CORPUS[:10], ids=lambda graph: graph.name)
    def test_cursor_limit_matches_query_limit(self, graph: PropertyGraph) -> None:
        db = connect(graph, default_max_length=PARITY_BOUND)
        engine = PathQueryEngine(graph, default_max_length=PARITY_BOUND, plan_cache_size=0)
        text = "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)"
        for executor in ("materialize", "pipeline"):
            for limit in (0, 1, 3, 1000):
                expected = engine.query(
                    text, max_length=PARITY_BOUND, executor=executor, limit=limit
                )
                cursor = db.execute(
                    text, executor=executor, limit=limit, max_length=PARITY_BOUND
                )
                got = cursor.fetchall()
                assert rendering(got) == rendering(expected.paths), (graph.name, executor, limit)
                assert cursor.truncated == expected.truncated, (graph.name, executor, limit)

    def test_mid_stream_budget_exceeded_parity(self) -> None:
        """A visited-paths cap kills the cursor mid-stream exactly like query()."""
        graph = cycle_graph(6)
        db = connect(graph)
        text = "MATCH ALL WALK p = (?x)-[Knows]->*(?y)"
        with db.session(max_length=12) as session:
            with pytest.raises(BudgetExceeded):
                session.query(text, max_visited=40)
            cursor = session.execute(text, executor="pipeline", max_visited=40)
            with pytest.raises(BudgetExceeded) as info:
                cursor.fetchall()
            assert cursor.closed
            assert info.value.reason == "max_visited"
            # Partial progress was finalized into the cursor's statistics.
            assert cursor.statistics.budget_paths_visited > 0
            assert cursor.statistics.budget_stopped_at != ""


class TestOrderByOrdering:
    ORDERED_QUERY = (
        "MATCH ALL PARTITIONS ALL GROUPS ALL PATHS TRAIL p = "
        "(?x)-[Knows/Likes | Likes]->(?y) GROUP BY TARGET ORDER BY PATH"
    )

    def test_order_by_order_is_identical_across_executors(self, db) -> None:
        """ORDER BY defines a caller-visible order; streaming must not drop it.

        Regression: the solution-space pass-through must block on OrderBy —
        a cursor/jsonl consumer of an ORDER BY query gets the τ-ordering
        whichever executor runs the plan.
        """
        with db.session() as session:
            materialized = [str(p) for p in session.query(self.ORDERED_QUERY, executor="materialize").paths]
            pipelined = [str(p) for p in session.query(self.ORDERED_QUERY, executor="pipeline").paths]
            streamed = [str(p) for p in session.execute(self.ORDERED_QUERY, executor="pipeline")]
        assert pipelined == materialized  # ordered lists, not just sets
        assert streamed == materialized

    def test_all_selector_still_streams(self, db) -> None:
        """The GQL ALL selector (no ORDER BY) keeps the bounded-memory path."""
        with db.session() as session:
            cursor = session.execute(
                "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)", executor="pipeline"
            )
            cursor.fetchmany(2)
            bounded = cursor.statistics.intermediate_paths
            cursor.close()
            full = session.query(
                "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)", executor="pipeline"
            ).statistics.intermediate_paths
        assert bounded < full


class TestCursorResourceRelease:
    def test_limit_stop_closes_the_pipeline_source(self, db) -> None:
        """A limit-stopped cursor unwinds the suspended generator chain."""
        with db.session() as session:
            cursor = session.execute(
                "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)", executor="pipeline", limit=2
            )
            assert len(cursor.fetchall()) == 2
            assert cursor.closed
            assert cursor._source.gi_frame is None  # generator actually closed

    def test_explicit_close_closes_the_pipeline_source(self, db) -> None:
        with db.session() as session:
            cursor = session.execute(
                "MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)", executor="pipeline"
            )
            cursor.fetchone()
            cursor.close()
            assert cursor._source.gi_frame is None

    def test_budget_kill_closes_the_pipeline_source(self) -> None:
        db = connect(cycle_graph(6))
        with db.session(max_length=12) as session:
            cursor = session.execute(
                "MATCH ALL WALK p = (?x)-[Knows]->*(?y)",
                executor="pipeline",
                max_visited=40,
            )
            with pytest.raises(BudgetExceeded):
                cursor.fetchall()
            assert cursor._source.gi_frame is None


class TestBoundedStreaming:
    """Acceptance: a pipeline cursor pulling few rows does little work."""

    def test_fetchmany_of_huge_walk_is_bounded(self) -> None:
        graph = cycle_graph(6)
        text = "MATCH ALL WALK p = (?x)-[Knows]->*(?y)"
        db = connect(graph, default_max_length=18)
        with db.session() as session:
            cursor = session.execute(text, executor="pipeline")
            assert len(cursor.fetchmany(5)) == 5
            streamed_work = cursor.statistics.intermediate_paths
            cursor.close()
            full = session.query(text, executor="pipeline")
            full_work = full.statistics.intermediate_paths
        assert len(full.paths) > 100
        # The cursor's peak visited-paths counter is bounded: a small
        # multiple of the rows fetched, nowhere near the full evaluation.
        assert streamed_work < full_work / 5
        assert streamed_work <= 5 * (graph.num_edges() + graph.num_nodes() + 5)

    def test_unbounded_walk_streams_where_query_cannot(self) -> None:
        """A cyclic unbounded WALK is infinite — yet a cursor can sip from it."""
        graph = cycle_graph(4)
        db = connect(graph)
        text = "MATCH ALL WALK p = (?x)-[Knows]->*(?y)"
        with pytest.raises(NonTerminatingQueryError):
            db.query(text, executor="pipeline")
        cursor = db.execute(text, executor="pipeline")
        first = cursor.fetchmany(4)
        assert len(first) == 4
        cursor.close()

    def test_streamed_rows_prefix_full_result(self) -> None:
        graph = cycle_graph(5)
        db = connect(graph, default_max_length=10)
        text = "MATCH ALL TRAIL p = (?x)-[Knows]->+(?y)"
        with db.session() as session:
            streamed = [str(p) for p in session.execute(text, executor="pipeline").fetchmany(7)]
            full = {str(p) for p in session.query(text, executor="pipeline").paths}
        assert set(streamed) <= full
        assert len(streamed) == len(set(streamed)) == 7


class TestDatabaseService:
    def test_service_shares_plan_cache(self, db) -> None:
        with db.session() as session:
            session.prepare(PARAM_QUERY)
        service = db.service(workers=0)
        outcome = service.submit(PARAM_QUERY, params={"name": "Moe"}).result()
        assert outcome.ok
        assert outcome.plan_cache_hit  # prepared through the session, hit in the service
        db.close()

    def test_service_is_created_once(self, db) -> None:
        assert db.service(workers=0) is db.service(workers=2)
        db.close()

    def test_database_submit_convenience(self, db) -> None:
        db.service(workers=0)
        outcome = db.submit("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)").result()
        assert outcome.ok and len(outcome) == 4
        db.close()

    def test_close_closes_service(self, db) -> None:
        service = db.service(workers=1)
        db.close()
        with pytest.raises(ServiceError):
            service.submit("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")


class TestPublicSurfaceIntegration:
    def test_top_level_quickstart_shape(self) -> None:
        db = repro.connect(repro.figure1_graph())
        with db.session() as session:
            prepared = session.prepare(PARAM_QUERY)
            paths = [str(path) for path in prepared.execute(name="Moe")]
        assert paths
        assert all(path.startswith("(n1") for path in paths)

    def test_bind_paths_exported(self) -> None:
        db = repro.connect(repro.figure1_graph())
        result = db.query("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)")
        table = repro.bind_paths(result.paths)
        assert isinstance(table, repro.BindingTable)
        assert all(isinstance(row, repro.PathBinding) for row in table)
