"""Concurrency, snapshot-isolation and cache-correctness tests for the service.

The acceptance property (ISSUE 3): a concurrent batch of queries over a
mutating graph returns byte-identical results to the same batch run serially
against the corresponding snapshots.  The suite locks that down three ways:

* hypothesis-generated interleavings of ``add_node``/``add_edge`` mutations
  and query submissions, each outcome replayed against a serial
  reconstruction of the graph at the outcome's pinned version;
* a free-running mutator thread racing a querying thread;
* deterministic regressions for the shared plan cache (never serves across a
  version bump, works disabled, evicts LRU-first) and the result cache
  (never serves across a version bump).
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.figure1 import figure1_graph
from repro.engine.engine import PathQueryEngine
from repro.errors import ServiceError
from repro.graph.model import PropertyGraph
from repro.service import QueryService, QueryTicket, StripedLRUCache

#: The query mix used throughout: streaming scans, joins, unions, recursion.
QUERIES = (
    "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)",
    "MATCH ALL TRAIL p = (?x)-[Knows/Knows]->(?y)",
    "MATCH ALL TRAIL p = (?x)-[Knows|Likes]->(?y)",
    "MATCH ALL ACYCLIC p = (?x)-[Knows+]->(?y)",
)

EDGE_LABELS = ("Knows", "Likes")


def _canonical(paths) -> tuple[str, ...]:
    return tuple(str(path) for path in paths.sorted())


def _serial_result(graph: PropertyGraph, text: str) -> tuple[str, ...]:
    """Evaluate ``text`` on a quiescent graph with a cache-free engine."""
    result = PathQueryEngine(graph, plan_cache_size=0).query(text)
    return _canonical(result.paths)


class _MutationLog:
    """Applies mutations to a live graph while recording them for replay."""

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph = graph
        self.base_version = graph.version
        self.ops: list[tuple] = []
        self._counter = 0

    def add_node(self) -> None:
        node_id = f"h{self._counter}"
        self._counter += 1
        self.graph.add_node(node_id, "Person", {"name": node_id})
        self.ops.append(("node", node_id))

    def add_edge(self, source_seed: int, target_seed: int, label_index: int) -> None:
        nodes = self.graph.node_ids()
        source = nodes[source_seed % len(nodes)]
        target = nodes[target_seed % len(nodes)]
        edge_id = f"he{self._counter}"
        self._counter += 1
        label = EDGE_LABELS[label_index % len(EDGE_LABELS)]
        self.graph.add_edge(edge_id, source, target, label)
        self.ops.append(("edge", edge_id, source, target, label))

    def replay(self, version: int) -> PropertyGraph:
        """Rebuild the graph exactly as it was at ``version``."""
        graph = figure1_graph()
        assert graph.version == self.base_version
        for op in self.ops[: version - self.base_version]:
            if op[0] == "node":
                graph.add_node(op[1], "Person", {"name": op[1]})
            else:
                graph.add_edge(op[1], op[2], op[3], op[4])
        assert graph.version == version
        return graph


_schedule_steps = st.one_of(
    st.tuples(st.just("query"), st.integers(0, len(QUERIES) - 1)),
    st.tuples(st.just("node"), st.just(0)),
    st.tuples(
        st.just("edge"),
        st.integers(0, 10**6),
        st.integers(0, 10**6),
        st.integers(0, 1),
    ),
)


class TestSnapshotIsolation:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=st.lists(_schedule_steps, min_size=1, max_size=25))
    def test_every_outcome_consistent_with_a_single_version(self, schedule) -> None:
        """Each result equals a serial evaluation at the version it was pinned to.

        The result cache is disabled so every submission reaches the engine,
        which makes the plan-cache accounting at the end exact: the service
        runs in legacy ``invalidation="version"`` mode, so with the version
        inside the cache key, hits can never exceed ``lookups - distinct
        keys`` — a single plan served across a version bump would break that
        bound.
        """
        graph = figure1_graph()
        log = _MutationLog(graph)
        submitted: list[tuple[str, object]] = []
        with QueryService(
            graph, workers=2, result_cache_size=0, invalidation="version"
        ) as service:
            for step in schedule:
                if step[0] == "query":
                    text = QUERIES[step[1]]
                    submitted.append((text, service.submit(text)))
                elif step[0] == "node":
                    log.add_node()
                else:
                    log.add_edge(step[1], step[2], step[3])
            outcomes = [(text, ticket.result()) for text, ticket in submitted]
            stats = service.statistics()

        distinct_keys = set()
        for text, outcome in outcomes:
            assert outcome.ok, outcome
            replay = log.replay(outcome.version)
            assert outcome.path_strings() == _serial_result(replay, text)
            distinct_keys.add((text, outcome.version))

        lookups = len(outcomes)
        assert stats.plan_cache["hits"] + stats.plan_cache["misses"] == lookups
        # Every distinct (text, version) key must miss at least once; two
        # workers racing the same fresh key can both miss (benign), but a hit
        # across a version bump would push hits beyond this bound.
        assert stats.plan_cache["misses"] >= len(distinct_keys)
        assert stats.plan_cache["hits"] <= lookups - len(distinct_keys)

    def test_single_worker_plan_cache_accounting_is_exact(self) -> None:
        """With one worker the miss-per-distinct-key accounting is an equality.

        Legacy ``invalidation="version"`` mode: version-stamped keys make the
        arithmetic exact (delta mode deliberately reuses plans across bumps).
        """
        graph = figure1_graph()
        log = _MutationLog(graph)
        with QueryService(
            graph, workers=1, result_cache_size=0, invalidation="version"
        ) as service:
            tickets = []
            for round_index in range(3):
                tickets.extend(service.submit(text) for text in QUERIES)
                tickets.extend(service.submit(text) for text in QUERIES)
                log.add_node()
            outcomes = [ticket.result() for ticket in tickets]
            stats = service.statistics()
        assert all(outcome.ok for outcome in outcomes)
        distinct = {(outcome.text, outcome.version) for outcome in outcomes}
        assert stats.plan_cache["misses"] == len(distinct)
        assert stats.plan_cache["hits"] == len(outcomes) - len(distinct)

    def test_concurrent_batch_is_byte_identical_to_serial_snapshots(self) -> None:
        """The acceptance criterion, verbatim.

        Mutations and submissions interleave on the producer thread while
        four workers drain concurrently; each query's result must be
        byte-identical to a serial run against the snapshot that was current
        at its submission.
        """
        graph = figure1_graph()
        log = _MutationLog(graph)
        batch = [QUERIES[index % len(QUERIES)] for index in range(36)]
        snapshots = []
        tickets = []
        with QueryService(graph, workers=4) as service:
            for index, text in enumerate(batch):
                if index % 3 == 0:
                    log.add_node()
                if index % 4 == 1:
                    log.add_edge(index, 2 * index + 1, index)
                snapshots.append(graph.snapshot())
                tickets.append(service.submit(text))
            outcomes = [ticket.result() for ticket in tickets]

        for text, snapshot, outcome in zip(batch, snapshots, outcomes):
            assert outcome.version == snapshot.version
            serial = PathQueryEngine(graph, plan_cache_size=0).query(text, graph=snapshot)
            assert outcome.rendered().encode() == "\n".join(_canonical(serial.paths)).encode()

    def test_free_running_mutator_thread(self) -> None:
        """Queries racing a real mutator thread still pin consistent versions."""
        graph = figure1_graph()
        log = _MutationLog(graph)
        stop = threading.Event()

        def mutate() -> None:
            seed = 0
            while not stop.is_set():
                log.add_node()
                log.add_edge(seed, seed + 3, seed)
                seed += 1

        mutator = threading.Thread(target=mutate)
        mutator.start()
        try:
            with QueryService(graph, workers=3, result_cache_size=0) as service:
                outcomes = []
                for round_index in range(10):
                    tickets = [service.submit(text) for text in QUERIES]
                    outcomes.extend(ticket.result() for ticket in tickets)
        finally:
            stop.set()
            mutator.join()
        for outcome in outcomes:
            assert outcome.ok, outcome
            replay = log.replay(outcome.version)
            assert outcome.path_strings() == _serial_result(replay, outcome.text)


class TestPlanCacheRegression:
    TEXT = "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"

    def test_mid_batch_mutation_is_never_stale(self) -> None:
        """Mutating between submissions must not return results for the old graph."""
        graph = figure1_graph()
        with QueryService(graph, workers=0) as service:
            before = service.submit(self.TEXT).result()
            graph.add_node("fresh", "Person")
            graph.add_edge("efresh", "n1", "fresh", "Knows")
            after = service.submit(self.TEXT).result()
            stats = service.statistics()
        assert len(after) == len(before) + 1
        assert not after.result_cache_hit
        # Plans are version-independent, so delta invalidation reuses the
        # cached plan across the bump — staleness is prevented at the result
        # layer (the new Knows edge intersects the cached footprint).
        assert after.plan_cache_hit
        assert stats.plan_cache["hits"] == 1
        assert stats.plan_cache["misses"] == 1

    def test_result_cache_never_crosses_a_version_bump(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=0) as service:
            first = service.submit(self.TEXT).result()
            repeat = service.submit(self.TEXT).result()
            assert repeat.result_cache_hit
            assert repeat.rendered() == first.rendered()
            graph.add_edge("eknows", "n1", "n3", "Knows")
            bumped = service.submit(self.TEXT).result()
        assert not bumped.result_cache_hit
        assert len(bumped) == len(first) + 1

    def test_mutating_a_served_outcome_does_not_poison_the_cache(self) -> None:
        """Outcomes never alias the cached PathSet (defensive copies both ways)."""
        with QueryService(figure1_graph(), workers=0) as service:
            first = service.submit(self.TEXT).result()
            baseline = first.rendered()
            likes = service.submit("MATCH ALL TRAIL p = (?x)-[Likes]->(?y)").result()
            first.paths.update(likes.paths)  # vandalize the computing caller's copy
            hit = service.submit(self.TEXT).result()
            assert hit.result_cache_hit
            assert hit.rendered() == baseline
            hit.paths.update(likes.paths)  # vandalize a served hit too
            assert service.submit(self.TEXT).result().rendered() == baseline

    def test_concurrent_inline_submitters_are_serialized(self) -> None:
        """workers=0 shares one engine; racing submitters must still be safe."""
        graph = figure1_graph()
        with QueryService(graph, workers=0, result_cache_size=0) as service:
            failures: list[str] = []

            def hammer(offset: int) -> None:
                for index in range(10):
                    graph.add_node(f"inline-{offset}-{index}")
                    outcome = service.submit(QUERIES[index % len(QUERIES)]).result()
                    if not outcome.ok:
                        failures.append(outcome.error or "?")

            threads = [threading.Thread(target=hammer, args=(n,)) for n in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not failures, failures

    def test_plan_cache_disabled_still_correct(self) -> None:
        graph = figure1_graph()
        with QueryService(
            graph, workers=2, plan_cache_size=0, result_cache_size=0
        ) as service:
            outcomes = service.run_batch([self.TEXT] * 6)
            stats = service.statistics()
        expected = _serial_result(graph, self.TEXT)
        assert all(outcome.path_strings() == expected for outcome in outcomes)
        assert stats.plan_cache["entries"] == 0
        assert stats.plan_cache["hits"] == 0

    def test_striped_cache_evicts_lru_first(self) -> None:
        cache = StripedLRUCache(maxsize=2, stripes=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert cache.evictions == 1
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.get("b") is None

    def test_striped_cache_surface(self) -> None:
        cache = StripedLRUCache(maxsize=8, stripes=4)
        assert cache.stripes == 4
        for index in range(8):
            cache.put(("key", index), index)
        assert len(cache) <= 8
        assert cache.stats()["entries"] == len(cache)
        cache.clear()
        assert len(cache) == 0
        assert StripedLRUCache(maxsize=2, stripes=8).stripes == 2  # clamped
        assert StripedLRUCache(maxsize=0).stripes == 1
        with pytest.raises(ValueError):
            StripedLRUCache(stripes=0)

    def test_zero_capacity_cache_never_stores(self) -> None:
        cache = StripedLRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert cache.misses == 1
        assert len(cache) == 0


class TestParameterizedCacheKeys:
    """Parameterized submissions: one shared plan, never-shared results.

    The cache-poisoning contract for prepared queries: the plan cache is
    keyed on the *parameterized* text (distinct bindings share one plan),
    while the result cache carries the bindings in its key, so two bindings
    can never serve each other's results — including across graph-version
    bumps, where both caches must start cold.
    """

    PARAM_TEXT = "MATCH ALL TRAIL p = (?x {name: $name})-[Knows]->(?y)"

    @staticmethod
    def _constant(value: str) -> str:
        return 'MATCH ALL TRAIL p = (?x {name: "%s"})-[Knows]->(?y)' % value

    def test_two_bindings_share_one_plan_but_not_results(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=0) as service:
            moe = service.submit(self.PARAM_TEXT, params={"name": "Moe"}).result()
            lisa = service.submit(self.PARAM_TEXT, params={"name": "Lisa"}).result()
            moe_again = service.submit(self.PARAM_TEXT, params={"name": "Moe"}).result()
            stats = service.statistics()
        assert moe.ok and lisa.ok
        # One parse/plan/optimize total: the second binding hit the plan cache.
        assert stats.plan_cache["misses"] == 1
        assert not moe.plan_cache_hit and lisa.plan_cache_hit
        # Results are binding-specific and correct.
        assert moe.path_strings() == _serial_result(graph, self._constant("Moe"))
        assert lisa.path_strings() == _serial_result(graph, self._constant("Lisa"))
        assert moe.path_strings() != lisa.path_strings()
        # The repeat of Moe's binding is served from the result cache — with
        # Moe's result, not Lisa's (the binding is part of the key).
        assert moe_again.result_cache_hit
        assert moe_again.rendered() == moe.rendered()
        assert moe.params == (("name", "Moe"),)

    def test_bindings_never_cross_a_version_bump(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=0) as service:
            before_moe = service.submit(self.PARAM_TEXT, params={"name": "Moe"}).result()
            before_lisa = service.submit(self.PARAM_TEXT, params={"name": "Lisa"}).result()
            graph.add_node("moe2", "Person", {"name": "Moe"})
            graph.add_edge("emoe2", "moe2", "n3", "Knows")
            after_moe = service.submit(self.PARAM_TEXT, params={"name": "Moe"}).result()
            after_lisa = service.submit(self.PARAM_TEXT, params={"name": "Lisa"}).result()
            stats = service.statistics()
        # Delta invalidation keeps the shared parameterized plan across the
        # bump: one text → one plan-cache miss in total, every later lookup
        # (either binding, either version) is a hit.
        assert stats.plan_cache["misses"] == 1
        # Neither binding was served a pre-bump result.
        assert not after_moe.result_cache_hit and not after_lisa.result_cache_hit
        assert after_moe.version > before_moe.version
        assert len(after_moe) == len(before_moe) + 1  # the new Moe edge
        assert after_lisa.rendered() == before_lisa.rendered()  # unaffected binding
        assert after_moe.rendered() != before_moe.rendered()

    def test_binding_order_does_not_split_result_cache_entries(self) -> None:
        text = (
            "MATCH ALL TRAIL p = (?x {name: $a})-[Knows]->(?y {name: $b})"
        )
        with QueryService(figure1_graph(), workers=0) as service:
            first = service.submit(text, params={"a": "Moe", "b": "Lisa"}).result()
            swapped = service.submit(text, params={"b": "Lisa", "a": "Moe"}).result()
        assert first.ok and swapped.ok
        assert swapped.result_cache_hit  # canonicalized key: same bindings, same entry
        assert swapped.rendered() == first.rendered()

    def test_unhashable_binding_bypasses_result_cache(self) -> None:
        with QueryService(figure1_graph(), workers=0) as service:
            first = service.submit(self.PARAM_TEXT, params={"name": ["not", "hashable"]}).result()
            repeat = service.submit(self.PARAM_TEXT, params={"name": ["not", "hashable"]}).result()
        assert first.ok and repeat.ok  # executed, empty result, no crash
        assert not first.result_cache_hit and not repeat.result_cache_hit
        assert repeat.params == ()

    def test_missing_binding_is_a_failure_not_a_crash(self) -> None:
        with QueryService(figure1_graph(), workers=0) as service:
            outcome = service.submit(self.PARAM_TEXT).result()
        assert not outcome.ok
        assert outcome.error is not None
        assert "ParameterError" in outcome.error


class TestServiceAPI:
    TEXT = "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"

    def test_expired_deadline_times_out_without_executing(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=1) as service:
            outcome = service.submit(self.TEXT, deadline=-1.0).result()
            stats = service.statistics()
        assert outcome.timed_out
        assert not outcome.ok
        assert stats.timed_out == 1
        assert stats.executed == 0

    def test_ticket_result_timeout(self) -> None:
        with pytest.raises(TimeoutError):
            QueryTicket().result(timeout=0.01)

    def test_submit_after_close_raises(self) -> None:
        service = QueryService(figure1_graph(), workers=1)
        service.close()
        service.close()  # idempotent
        with pytest.raises(ServiceError):
            service.submit(self.TEXT)

    def test_invalid_configuration_rejected(self) -> None:
        with pytest.raises(ServiceError):
            QueryService(figure1_graph(), workers=-1)
        with pytest.raises(ServiceError):
            QueryService(figure1_graph(), executor="vectorized")

    def test_worker_survives_bad_queries(self) -> None:
        with QueryService(figure1_graph(), workers=1) as service:
            bad = service.submit("THIS IS NOT GQL").result()
            good = service.submit(self.TEXT).result()
            stats = service.statistics()
        assert bad.error is not None and not bad.ok
        assert good.ok and len(good) == 4
        assert stats.failed == 1
        assert stats.completed == 2

    def test_submit_many_preserves_order(self) -> None:
        texts = [QUERIES[index % len(QUERIES)] for index in range(8)]
        with QueryService(figure1_graph(), workers=3) as service:
            outcomes = service.run_batch(texts)
        assert [outcome.text for outcome in outcomes] == texts

    def test_statistics_shape(self) -> None:
        with QueryService(figure1_graph(), workers=2) as service:
            service.run_batch([self.TEXT] * 5)
            stats = service.statistics()
        assert stats.submitted == 5
        assert stats.completed == 5
        assert stats.executed + stats.result_cache_served == 5
        assert stats.workers == 2
        assert stats.backend == "thread"
        assert stats.result_cache["hits"] == stats.result_cache_served


class TestDeadlineKillPath:
    """ISSUE 4 acceptance: deadlines kill in-flight queries, not just queued ones.

    The heavy workload is a Walk recursion over the cyclic LDBC-like Knows
    network with a generous bound — unbudgeted it runs for many seconds
    (``max_length=7`` measures > 5 s on the reference host), which is exactly
    the query that used to wedge a worker past its deadline.
    """

    HEAVY = "MATCH ALL WALK p = (?x)-[Knows+]->(?y)"
    HEAVY_MAX_LENGTH = 7
    DEADLINE = 0.1

    @pytest.fixture(scope="class")
    def ldbc_graph(self):
        from repro.datasets.ldbc import ldbc_like_graph

        return ldbc_like_graph()

    def test_in_flight_kill_within_a_small_multiple_of_the_deadline(self, ldbc_graph) -> None:
        with QueryService(graph=ldbc_graph, workers=1) as service:
            started = time.monotonic()
            outcome = service.submit(
                self.HEAVY, max_length=self.HEAVY_MAX_LENGTH, deadline=self.DEADLINE
            ).result(timeout=30)
            wall = time.monotonic() - started
            stats = service.statistics()
        assert outcome.timed_out and not outcome.ok
        assert outcome.budget_reason == "deadline"
        # The kill lands at the first budget checkpoint after the deadline —
        # on the reference host within 1.1x; the bound here leaves slack for
        # loaded CI hosts while still proving the query did not run to
        # completion (which takes two orders of magnitude longer).
        assert wall < 10 * self.DEADLINE
        # Partial progress is populated: the query was genuinely in flight.
        assert outcome.stopped_at not in ("", "queue")
        assert outcome.paths_visited > 0
        assert outcome.depth_reached >= 1
        assert stats.timed_out_in_flight == 1
        assert stats.timed_out_at_dequeue == 0

    def test_worker_survives_the_kill_and_serves_the_next_request(self, ldbc_graph) -> None:
        with QueryService(graph=ldbc_graph, workers=1) as service:
            killed = service.submit(
                self.HEAVY, max_length=self.HEAVY_MAX_LENGTH, deadline=self.DEADLINE
            ).result(timeout=30)
            follow_up = service.submit(
                "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"
            ).result(timeout=30)
            stats = service.statistics()
        assert killed.timed_out
        assert follow_up.ok and len(follow_up) > 0
        assert stats.completed == 2
        assert stats.executed == 1

    def test_budget_killed_queries_never_poison_the_caches(self, ldbc_graph) -> None:
        with QueryService(graph=ldbc_graph, workers=1) as service:
            killed = service.submit(self.HEAVY, max_length=4, max_visited=1_000).result(
                timeout=30
            )
            assert killed.timed_out and killed.budget_reason == "max_visited"
            # Same query text/options without a budget: must compute the full
            # result, not serve a cached partial one.
            full = service.submit(self.HEAVY, max_length=4).result(timeout=60)
            repeat = service.submit(self.HEAVY, max_length=4).result(timeout=60)
        reference = PathQueryEngine(ldbc_graph, plan_cache_size=0).query(
            self.HEAVY, max_length=4
        )
        assert full.ok and not full.result_cache_hit
        assert full.path_strings() == _canonical(reference.paths)
        # The *complete* outcome is cacheable as usual.
        assert repeat.result_cache_hit
        assert repeat.path_strings() == full.path_strings()

    def test_max_visited_kill_is_deterministic(self, ldbc_graph) -> None:
        with QueryService(graph=ldbc_graph, workers=1) as service:
            outcome = service.submit(
                self.HEAVY, max_length=self.HEAVY_MAX_LENGTH, max_visited=10_000
            ).result(timeout=30)
        assert outcome.timed_out
        assert outcome.budget_reason == "max_visited"
        assert outcome.paths_visited > 10_000

    def test_dequeue_timeout_reports_queue_wait(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=1) as service:
            outcome = service.submit(
                "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)", deadline=-1.0
            ).result(timeout=10)
            stats = service.statistics()
        assert outcome.timed_out
        assert outcome.stopped_at == "queue"
        assert outcome.budget_reason == "deadline"
        # The satellite fix: queue wait is stamped and attributed instead of
        # being folded into a zero elapsed_seconds.
        assert outcome.queued_seconds >= 0.0
        assert outcome.elapsed_seconds == 0.0
        assert stats.timed_out_at_dequeue == 1
        assert stats.timed_out_in_flight == 0
        assert stats.queued_seconds_max >= outcome.queued_seconds

    def test_queued_seconds_populated_on_success(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=1) as service:
            outcome = service.submit("MATCH ALL TRAIL p = (?x)-[Knows]->(?y)").result(
                timeout=10
            )
            stats = service.statistics()
        assert outcome.ok
        assert outcome.queued_seconds >= 0.0
        assert stats.queued_seconds_total >= outcome.queued_seconds

    def test_default_max_visited_applies_to_every_submission(self, ldbc_graph) -> None:
        with QueryService(
            graph=ldbc_graph, workers=1, default_max_visited=1_000
        ) as service:
            outcome = service.submit(self.HEAVY, max_length=4).result(timeout=30)
        assert outcome.timed_out and outcome.budget_reason == "max_visited"


class TestDeltaAwareResultCache:
    """Cross-version result serving: writes only evict what they can change."""

    TEXT = "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)"

    def test_disjoint_mutation_serves_across_the_bump(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=0) as service:
            first = service.submit(self.TEXT).result()
            graph.add_edge("elikes", "n1", "n3", "Likes")  # disjoint label
            graph.add_node("fresh", "Person")  # node inserts don't touch edge scans
            served = service.submit(self.TEXT).result()
            stats = service.statistics()
        assert served.result_cache_hit
        assert served.version == graph.version  # re-stamped at the serving version
        assert served.version > first.version
        assert served.rendered() == first.rendered()
        assert stats.result_cache_cross_version_hits == 1
        assert stats.result_cache_delta_rejected == 0
        assert stats.invalidation == "delta"

    def test_affecting_mutation_recomputes(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=0) as service:
            first = service.submit(self.TEXT).result()
            graph.add_edge("eknows", "n1", "n3", "Knows")  # intersects the footprint
            recomputed = service.submit(self.TEXT).result()
            stats = service.statistics()
        assert not recomputed.result_cache_hit
        assert len(recomputed) == len(first) + 1
        assert stats.result_cache_delta_rejected == 1
        assert stats.result_cache_cross_version_hits == 0

    def test_property_update_only_evicts_property_readers(self) -> None:
        graph = figure1_graph()
        reader = "MATCH ALL TRAIL p = (?x {name: 'Moe'})-[Knows]->(?y)"
        with QueryService(graph, workers=0) as service:
            plain_before = service.submit(self.TEXT).result()
            reader_before = service.submit(reader).result()
            graph.set_node_property("n2", "name", "Renamed")
            plain_after = service.submit(self.TEXT).result()
            reader_after = service.submit(reader).result()
            stats = service.statistics()
        assert plain_after.result_cache_hit  # label-only query: unaffected
        assert plain_after.rendered() == plain_before.rendered()
        assert not reader_after.result_cache_hit  # reads node properties
        assert reader_after.ok and reader_before.ok
        assert stats.result_cache_cross_version_hits == 1
        assert stats.result_cache_delta_rejected == 1

    def test_expired_journal_falls_back_to_recompute(self, monkeypatch) -> None:
        monkeypatch.setattr("repro.graph.model.JOURNAL_CAPACITY", 2)
        graph = figure1_graph()
        with QueryService(graph, workers=0) as service:
            service.submit(self.TEXT).result()
            for index in range(3):  # push the window past the journal capacity
                graph.add_node(f"filler{index}", "Filler")
            repeat = service.submit(self.TEXT).result()
            stats = service.statistics()
        # The delta window expired, so the service must recompute even though
        # none of the mutations could have changed the result.
        assert not repeat.result_cache_hit
        assert stats.result_cache_delta_rejected == 1

    def test_version_mode_keeps_legacy_semantics(self) -> None:
        graph = figure1_graph()
        with QueryService(graph, workers=0, invalidation="version") as service:
            first = service.submit(self.TEXT).result()
            graph.add_edge("elikes", "n1", "n3", "Likes")
            second = service.submit(self.TEXT).result()
            stats = service.statistics()
        assert not second.result_cache_hit  # any write evicts everything
        assert second.rendered() == first.rendered()
        assert stats.invalidation == "version"
        assert stats.result_cache_cross_version_hits == 0
        assert stats.result_cache_delta_rejected == 0

    def test_invalid_invalidation_mode_is_rejected(self) -> None:
        with pytest.raises(ServiceError, match="invalidation"):
            QueryService(figure1_graph(), workers=0, invalidation="sometimes")
        with pytest.raises(ValueError, match="invalidation"):
            PathQueryEngine(figure1_graph(), invalidation="sometimes")

    def test_cross_version_hit_still_isolated_from_mutation(self) -> None:
        """A served cross-version outcome must not alias the cached PathSet."""
        graph = figure1_graph()
        with QueryService(graph, workers=0) as service:
            first = service.submit(self.TEXT).result()
            baseline = first.rendered()
            graph.add_node("bystander", "Person")
            served = service.submit(self.TEXT).result()
            assert served.result_cache_hit
            likes = service.submit("MATCH ALL TRAIL p = (?x)-[Likes]->(?y)").result()
            served.paths.update(likes.paths)  # vandalize the served copy
            again = service.submit(self.TEXT).result()
        assert again.rendered() == baseline
