"""Tests for the binding table (tabular view of path results, group variables)."""

from __future__ import annotations

from repro.algebra.conditions import label_of_edge
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import EdgesScan, Recursive, Selection
from repro.engine.results import BindingTable, PathBinding, bind_paths
from repro.paths.path import Path
from repro.semantics.restrictors import Restrictor


def knows_trails(graph):
    plan = Recursive(Selection(label_of_edge(1, "Knows"), EdgesScan()), Restrictor.TRAIL)
    return evaluate_to_paths(plan, graph)


class TestPathBinding:
    def test_from_path_collects_group_variables(self, figure1) -> None:
        path = Path.from_interleaved(figure1, ("n1", "e1", "n2", "e2", "n3"))
        binding = PathBinding.from_path(path)
        assert binding.source == "n1"
        assert binding.target == "n3"
        assert binding.length == 2
        assert binding.nodes == ("n1", "n2", "n3")
        assert binding.edges == ("e1", "e2")
        assert binding.labels == ("Knows", "Knows")

    def test_property_access(self, figure1) -> None:
        binding = PathBinding.from_path(Path.from_interleaved(figure1, ("n1", "e1", "n2")))
        assert binding.source_property("name") == "Moe"
        assert binding.target_property("name") == "Lisa"
        assert binding.node_property(2, "name") == "Lisa"
        assert binding.source_property("missing", "dflt") == "dflt"

    def test_to_dict_round_trip(self, figure1) -> None:
        binding = PathBinding.from_path(Path.from_edge(figure1, "e1"))
        record = binding.to_dict()
        assert record["source"] == "n1"
        assert record["edges"] == ["e1"]
        assert record["labels"] == ["Knows"]


class TestBindingTable:
    def test_one_row_per_path(self, figure1) -> None:
        paths = knows_trails(figure1)
        table = bind_paths(paths)
        assert len(table) == len(paths)
        assert all(isinstance(row, PathBinding) for row in table)

    def test_columns(self, figure1) -> None:
        table = bind_paths(knows_trails(figure1))
        columns = table.columns("source", "target", "length")
        assert ("n1", "n2", 1) in columns

    def test_endpoints_deduplicates(self, figure1) -> None:
        paths = knows_trails(figure1)
        table = bind_paths(paths)
        assert len(table.endpoints()) == len({p.endpoints() for p in paths})

    def test_project_properties(self, figure1) -> None:
        table = bind_paths(knows_trails(figure1))
        records = table.project_properties(source_properties=("name",), target_properties=("name",))
        moe_rows = [r for r in records if r["source.name"] == "Moe"]
        assert moe_rows
        assert all("target.name" in r and "length" in r for r in records)

    def test_sort_and_filter(self, figure1) -> None:
        table = bind_paths(knows_trails(figure1))
        shortest_first = table.sort_by(lambda row: row.length)
        assert shortest_first.rows[0].length <= shortest_first.rows[-1].length
        only_moe = table.filter(lambda row: row.source_property("name") == "Moe")
        assert len(only_moe) == 5  # the five Knows+ trails starting at Moe
        assert all(row.source == "n1" for row in only_moe)

    def test_group_sizes_match_gamma_st_partitions(self, figure1) -> None:
        from repro.algebra.solution_space import GroupByKey, group_by

        paths = knows_trails(figure1)
        table = bind_paths(paths)
        space = group_by(paths, GroupByKey.ST)
        assert len(table.group_sizes()) == space.num_partitions()
        assert sum(table.group_sizes().values()) == len(paths)

    def test_empty_table(self) -> None:
        table = BindingTable()
        assert len(table) == 0
        assert table.endpoints() == []
        assert table.group_sizes() == {}
