"""Tests for selector semantics (Table 1) and the Table 7 algebra pipelines."""

from __future__ import annotations

import pytest

from repro.algebra.solution_space import ALL, GroupByKey, OrderByKey
from repro.paths.pathset import PathSet
from repro.semantics.restrictors import Restrictor, recursive_closure
from repro.semantics.selectors import Selector, SelectorKind, apply_selector, selector_plan


@pytest.fixture
def knows_trails(knows_edges) -> PathSet:
    return recursive_closure(knows_edges, Restrictor.TRAIL)


class TestSelectorParsing:
    @pytest.mark.parametrize(
        "text, kind, k",
        [
            ("ALL", SelectorKind.ALL, None),
            ("ANY SHORTEST", SelectorKind.ANY_SHORTEST, None),
            ("ALL SHORTEST", SelectorKind.ALL_SHORTEST, None),
            ("ANY", SelectorKind.ANY, None),
            ("ANY 3", SelectorKind.ANY_K, 3),
            ("SHORTEST 2", SelectorKind.SHORTEST_K, 2),
            ("SHORTEST 2 GROUP", SelectorKind.SHORTEST_K_GROUP, 2),
            ("any shortest", SelectorKind.ANY_SHORTEST, None),
        ],
    )
    def test_parse(self, text: str, kind: SelectorKind, k: int | None) -> None:
        selector = Selector.parse(text)
        assert selector.kind is kind
        assert selector.k == k

    def test_parse_rejects_garbage(self) -> None:
        with pytest.raises(ValueError):
            Selector.parse("SOME OF THEM")
        with pytest.raises(ValueError):
            Selector.parse("")

    def test_k_validation(self) -> None:
        with pytest.raises(ValueError):
            Selector(SelectorKind.ANY_K)          # missing k
        with pytest.raises(ValueError):
            Selector(SelectorKind.SHORTEST_K, 0)  # non-positive k
        with pytest.raises(ValueError):
            Selector(SelectorKind.ALL, 3)         # spurious k

    def test_round_trip_str(self) -> None:
        for text in ("ALL", "ANY SHORTEST", "ANY 2", "SHORTEST 3", "SHORTEST 3 GROUP"):
            assert str(Selector.parse(text)) == text

    def test_determinism_classification(self) -> None:
        assert Selector.parse("ALL").kind.is_deterministic
        assert Selector.parse("ALL SHORTEST").kind.is_deterministic
        assert Selector.parse("SHORTEST 2 GROUP").kind.is_deterministic
        assert not Selector.parse("ANY").kind.is_deterministic
        assert not Selector.parse("ANY SHORTEST").kind.is_deterministic
        assert not Selector.parse("SHORTEST 2").kind.is_deterministic


class TestTable7Pipelines:
    """The group-by / order-by / projection triples of Table 7."""

    def test_all(self) -> None:
        plan = selector_plan(Selector(SelectorKind.ALL))
        assert plan.group_key is GroupByKey.NONE
        assert plan.order_key is None
        assert (plan.projection.partitions, plan.projection.groups, plan.projection.paths) == (
            ALL,
            ALL,
            ALL,
        )

    def test_any_shortest(self) -> None:
        plan = selector_plan(Selector(SelectorKind.ANY_SHORTEST))
        assert plan.group_key is GroupByKey.ST
        assert plan.order_key is OrderByKey.A
        assert plan.projection.paths == 1

    def test_all_shortest(self) -> None:
        plan = selector_plan(Selector(SelectorKind.ALL_SHORTEST))
        assert plan.group_key is GroupByKey.STL
        assert plan.order_key is OrderByKey.G
        assert plan.projection.groups == 1

    def test_any(self) -> None:
        plan = selector_plan(Selector(SelectorKind.ANY))
        assert plan.group_key is GroupByKey.ST
        assert plan.order_key is None
        assert plan.projection.paths == 1

    def test_any_k(self) -> None:
        plan = selector_plan(Selector(SelectorKind.ANY_K, 4))
        assert plan.projection.paths == 4
        assert plan.order_key is None

    def test_shortest_k(self) -> None:
        plan = selector_plan(Selector(SelectorKind.SHORTEST_K, 4))
        assert plan.order_key is OrderByKey.A
        assert plan.projection.paths == 4

    def test_shortest_k_group(self) -> None:
        plan = selector_plan(Selector(SelectorKind.SHORTEST_K_GROUP, 3))
        assert plan.group_key is GroupByKey.STL
        assert plan.order_key is OrderByKey.G
        assert plan.projection.groups == 3


class TestApplySelector:
    """Set-level selector application against the Table 1 informal semantics."""

    def test_all_returns_everything(self, knows_trails) -> None:
        assert apply_selector(knows_trails, Selector(SelectorKind.ALL)) == knows_trails

    def test_any_shortest_one_shortest_per_pair(self, knows_trails) -> None:
        result = apply_selector(knows_trails, Selector(SelectorKind.ANY_SHORTEST))
        by_pair = knows_trails.group_by_endpoints()
        assert len(result) == len(by_pair)
        for path in result:
            assert path.len() == min(p.len() for p in by_pair[path.endpoints()])

    def test_all_shortest_keeps_ties(self, small_grid) -> None:
        edges = PathSet.edges_of(small_grid)
        walks = recursive_closure(edges, Restrictor.ACYCLIC)
        result = apply_selector(walks, Selector(SelectorKind.ALL_SHORTEST))
        corner = [p for p in result if p.endpoints() == ("v0_0", "v1_1")]
        assert len(corner) == 2  # both right-down and down-right survive

    def test_any_one_per_pair(self, knows_trails) -> None:
        result = apply_selector(knows_trails, Selector(SelectorKind.ANY))
        assert len(result) == len(knows_trails.group_by_endpoints())

    def test_any_k_caps_per_pair(self, knows_trails) -> None:
        result = apply_selector(knows_trails, Selector(SelectorKind.ANY_K, 2))
        by_pair = knows_trails.group_by_endpoints()
        expected = sum(min(2, len(paths)) for paths in by_pair.values())
        assert len(result) == expected

    def test_shortest_k_returns_k_shortest(self, knows_trails) -> None:
        result = apply_selector(knows_trails, Selector(SelectorKind.SHORTEST_K, 2))
        by_pair = knows_trails.group_by_endpoints()
        for pair, paths in by_pair.items():
            selected = [p for p in result if p.endpoints() == pair]
            expected_lengths = sorted(p.len() for p in paths)[: min(2, len(paths))]
            assert sorted(p.len() for p in selected) == expected_lengths

    def test_shortest_k_group_returns_whole_length_groups(self, knows_trails) -> None:
        result = apply_selector(knows_trails, Selector(SelectorKind.SHORTEST_K_GROUP, 1))
        by_pair = knows_trails.group_by_endpoints()
        # k=1 keeps exactly the full set of minimum-length paths per pair.
        expected = sum(
            sum(1 for p in paths if p.len() == min(q.len() for q in paths))
            for paths in by_pair.values()
        )
        assert len(result) == expected

    def test_fewer_than_k_keeps_all(self, knows_trails) -> None:
        result = apply_selector(knows_trails, Selector(SelectorKind.ANY_K, 100))
        assert result == knows_trails
