"""The seeded 50-graph property-test corpus shared by equivalence suites.

The corpus covers the nasty shapes for path semantics: cyclic graphs,
self-loops, parallel edges (multigraphs), dense cliques and random
multigraphs.  ``test_closure_equivalence`` runs the closure strategies over
it; ``test_executor`` runs the engine facade with both executors over it;
``test_differential`` runs randomly generated RPQs through every evaluation
route over a two-label variant (single-label regexes cannot distinguish the
routes' label handling).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.datasets.generators import complete_graph, cycle_graph, grid_graph, random_graph
from repro.graph.model import PropertyGraph

__all__ = ["NUM_RANDOM_GRAPHS", "closure_corpus", "frozen_twin"]

NUM_RANDOM_GRAPHS = 45


def _random_graph_for_seed(seed: int, labels: Sequence[str]) -> PropertyGraph:
    """A small random multigraph; odd seeds additionally allow self-loops."""
    rng = random.Random(seed)
    num_nodes = rng.randint(3, 6)
    num_edges = rng.randint(num_nodes, num_nodes + 4)
    return random_graph(
        num_nodes,
        num_edges,
        labels=tuple(labels),
        seed=seed,
        name=f"rand-{seed}",
        allow_self_loops=bool(seed % 2),
    )


def _structured_graphs() -> list[PropertyGraph]:
    return [
        cycle_graph(3),
        cycle_graph(5),
        complete_graph(3),
        complete_graph(4),
        grid_graph(2, 3),
    ]


def closure_corpus(labels: Sequence[str] = ("Knows",)) -> list[PropertyGraph]:
    """Build the full 50-graph corpus (45 seeded random + 5 structured).

    ``labels`` is the edge-label vocabulary of the 45 random graphs (the five
    structured graphs always use the single default label).
    """
    return [
        _random_graph_for_seed(seed, labels) for seed in range(NUM_RANDOM_GRAPHS)
    ] + _structured_graphs()


def frozen_twin(graph: PropertyGraph) -> PropertyGraph:
    """An independently frozen copy of ``graph`` for frozen-vs-mutable sweeps.

    The copy shares nothing mutable with the original, so freezing it (which
    builds the columnar core and rejects writes) cannot contaminate results
    computed on the mutable source.
    """
    twin = graph.copy()
    twin.freeze()
    return twin
