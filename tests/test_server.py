"""End-to-end tests for the network front-end (`repro.server`).

The load-bearing contract is **wire parity**: a query through
:class:`~repro.server.ReproClient` must be byte-identical to the same query
through an in-process :class:`~repro.api.Session` at the same graph version
— over the whole 50-graph corpus, under concurrent clients, and while
writers mutate the live graph (the hypothesis suite stretches the service's
snapshot-isolation acceptance property across the socket).

The failure paths get the same weight as the happy ones:

* a client that disconnects mid-stream must not leak the server-side cursor
  (its suspended generator stack) — asserted via ``track_cursors``;
* admission-control rejection is a typed 429-shaped frame that raises
  :class:`~repro.errors.ServiceOverloadedError` client-side, never a hang;
* a budget kill crosses the wire as :class:`~repro.errors.BudgetExceeded`
  *with* its partial progress, same as in-process;
* shutdown drains: during the drain window new queries get a typed
  ``shutdown`` error, not a dropped connection.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from graph_corpus import closure_corpus
from repro.api import connect
from repro.datasets.figure1 import figure1_graph
from repro.datasets.generators import cycle_graph
from repro.engine.engine import PathQueryEngine
from repro.errors import BudgetExceeded, ServiceError, ServiceOverloadedError
from repro.graph.model import PropertyGraph
from repro.server import ProtocolError, RemoteQueryError, ReproClient, ReproServer
from repro.server.protocol import decode_frame, encode_frame

QUERIES = (
    "MATCH ALL TRAIL p = (?x)-[Knows]->(?y)",
    "MATCH ALL TRAIL p = (?x)-[Knows/Knows]->(?y)",
    "MATCH ALL ACYCLIC p = (?x)-[Knows+]->(?y)",
)

#: A walk over a cyclic graph.  Only the pipeline executor evaluates it
#: lazily; the materializing one refuses with NonTerminatingQueryError,
#: and even the pipeline raises mid-stream once its cycle detector trips
#: unless the query is length-capped.
UNBOUNDED_WALK = "MATCH ALL WALK p = (?x)-[Knows]->*(?y)"

#: Capped-but-huge variant: on ``cycle_graph(8)`` this is ~4800 rows and
#: >10 MB of path text — finite, so it never errors, but far more than the
#: kernel socket buffers hold, so an unread stream parks the server at
#: ``drain()`` with the cursor suspended.  The back-pressure hog of choice.
LONG_WALK_OPTIONS = {"executor": "pipeline", "max_length": 600}


def _hog_frame(request_id: int = 1) -> dict:
    """A raw streaming frame for the huge capped walk (never read it)."""
    return {
        "op": "query",
        "id": request_id,
        "text": UNBOUNDED_WALK,
        "stream": True,
        **LONG_WALK_OPTIONS,
    }

EDGE_LABELS = ("Knows", "Likes")


def _serial(graph: PropertyGraph, text: str, params=None) -> str:
    """Cache-free in-process evaluation, canonically rendered."""
    result = PathQueryEngine(graph, plan_cache_size=0).query(text, params=params)
    return "\n".join(str(path) for path in result.paths.sorted())


@pytest.fixture
def served_figure1():
    db = connect(figure1_graph())
    server = ReproServer(db, track_cursors=True).start()
    try:
        yield db, server
    finally:
        server.stop()
        db.close()


class TestWireParity:
    def test_corpus_byte_identity(self) -> None:
        """Wire results equal in-process session results over all 50 graphs."""
        for graph in closure_corpus():
            db = connect(graph)
            server = ReproServer(db).start()
            try:
                with ReproClient(server.host, server.port) as client:
                    for text in QUERIES:
                        remote = client.query(text)
                        with db.session() as session:
                            local = "\n".join(
                                str(path)
                                for path in session.query(text).paths.sorted()
                            )
                        assert remote.rendered() == local, (graph.name, text)
            finally:
                server.stop()
                db.close()

    def test_streaming_path_matches_service_path(self, served_figure1) -> None:
        _, server = served_figure1
        with ReproClient(server.host, server.port) as client:
            for text in QUERIES:
                service_rows = client.query(text)
                streamed = sorted(
                    row["path"] for row in client.query_iter(text, fetch_size=2)
                )
                assert sorted(service_rows.paths()) == streamed

    def test_concurrent_clients_byte_identical(self, served_figure1) -> None:
        db, server = served_figure1
        expected = {text: _serial(db.graph, text) for text in QUERIES}
        failures: list = []

        def worker() -> None:
            try:
                with ReproClient(server.host, server.port) as client:
                    for _ in range(3):
                        for text in QUERIES:
                            remote = client.query(text)
                            if remote.rendered() != expected[text]:
                                failures.append((text, remote.rendered()))
            except Exception as error:  # noqa: BLE001 - surfaced via failures
                failures.append(("exception", repr(error)))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

    def test_prepared_statement_parity(self, served_figure1) -> None:
        db, server = served_figure1
        text = "MATCH ANY SHORTEST TRAIL p = (?x {name: $name})-[:Knows]->+(?y)"
        with ReproClient(server.host, server.port) as client:
            parameters = client.prepare("who", text)
            assert parameters == ["name"]
            remote = client.execute("who", {"name": "Moe"})
            assert remote.rendered() == _serial(db.graph, text, params={"name": "Moe"})

    def test_session_pinned_across_mutation(self, served_figure1) -> None:
        """A connected client keeps seeing its pinned version; refresh re-pins."""
        db, server = served_figure1
        text = QUERIES[0]
        with ReproClient(server.host, server.port) as client:
            before = client.query(text)
            pinned = before.version
            db.graph.add_node("zz", "Person", {"name": "zz"})
            db.graph.add_edge("zze", "zz", "n1", "Knows")
            after_mutation = client.query(text)
            assert after_mutation.version == pinned
            assert after_mutation.rendered() == before.rendered()
            new_version = client.refresh()
            assert new_version > pinned
            refreshed = client.query(text)
            assert refreshed.version == new_version
            assert refreshed.rendered() == _serial(db.graph, text)


class TestStreamingDisconnect:
    def test_abort_mid_stream_closes_server_cursor(self) -> None:
        """A dropped client mid-walk must not leak the suspended generator."""
        db = connect(cycle_graph(8))
        server = ReproServer(db, fetch_size=8, track_cursors=True).start()
        try:
            client = ReproClient(server.host, server.port)
            stream = client.query_iter(UNBOUNDED_WALK, **LONG_WALK_OPTIONS)
            for _ in range(4):  # sip a few rows of the huge stream
                next(stream)
            assert len(server.open_cursors()) == 1
            client.abort()
            deadline = time.monotonic() + 10.0
            while server.open_cursors() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server.open_cursors() == []
        finally:
            server.stop()
            db.close()

    def test_no_cursor_leak_after_clean_streams(self, served_figure1) -> None:
        _, server = served_figure1
        with ReproClient(server.host, server.port) as client:
            for _ in range(5):
                list(client.query_iter(QUERIES[0]))
        assert server.open_cursors() == []

    def test_unread_client_suspends_not_crashes(self) -> None:
        """TCP back-pressure suspends the stream; teardown still reclaims it."""
        db = connect(cycle_graph(8))
        server = ReproServer(db, fetch_size=64, track_cursors=True).start()
        try:
            client = ReproClient(server.host, server.port)
            # Submit the huge walk and never read a byte: the server
            # fills the socket buffer and parks at drain().
            client._send(_hog_frame())
            deadline = time.monotonic() + 10.0
            while not server.open_cursors() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert len(server.open_cursors()) == 1
            client.abort()
            deadline = time.monotonic() + 10.0
            while server.open_cursors() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server.open_cursors() == []
        finally:
            server.stop()
            db.close()


class TestAdmissionControl:
    def test_rejection_is_a_typed_frame_not_a_hang(self) -> None:
        db = connect(cycle_graph(8))
        server = ReproServer(db, max_inflight=1, fetch_size=64).start()
        try:
            hog = ReproClient(server.host, server.port)
            # Saturate the single inflight slot with an unread huge
            # stream (the server parks on TCP back-pressure).
            hog._send(_hog_frame())
            deadline = time.monotonic() + 10.0
            while server._inflight == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server._inflight == 1
            with ReproClient(server.host, server.port) as rejected:
                started = time.monotonic()
                with pytest.raises(ServiceOverloadedError) as caught:
                    rejected.query(QUERIES[0])
                assert time.monotonic() - started < 5.0  # typed reject, no hang
                assert caught.value.pending == 1
                assert caught.value.capacity == 1
            assert server.statistics()["rejected"] >= 1
            hog.abort()
            # Once the hog unwinds, the slot frees and queries flow again.
            deadline = time.monotonic() + 10.0
            while server._inflight and time.monotonic() < deadline:
                time.sleep(0.02)
            with ReproClient(server.host, server.port) as client:
                assert client.query(QUERIES[0]).count > 0
        finally:
            server.stop()
            db.close()

    def test_http_face_returns_429(self) -> None:
        db = connect(cycle_graph(8))
        server = ReproServer(db, max_inflight=1, fetch_size=64).start()
        try:
            hog = ReproClient(server.host, server.port)
            hog._send(_hog_frame())
            deadline = time.monotonic() + 10.0
            while server._inflight == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            request = urllib.request.Request(
                f"http://{server.host}:{server.port}/query",
                data=json.dumps({"text": QUERIES[0]}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=10)
            assert caught.value.code == 429
            body = json.loads(caught.value.read())
            assert body["capacity"] == 1
            hog.abort()
        finally:
            server.stop()
            db.close()


class TestBudgetOverTheWire:
    def test_budget_kill_carries_partial_progress(self, served_figure1) -> None:
        _, server = served_figure1
        with ReproClient(server.host, server.port) as client:
            with pytest.raises(BudgetExceeded) as caught:
                client.query("MATCH ALL TRAIL p = (?x)-[Knows+]->(?y)", max_visited=2)
            assert caught.value.reason == "max_visited"
            assert caught.value.paths_visited >= 2
            assert caught.value.stopped_at  # names the operator, not empty

    def test_streaming_budget_kill_is_typed(self) -> None:
        db = connect(cycle_graph(3))
        server = ReproServer(db, fetch_size=4).start()
        try:
            with ReproClient(server.host, server.port) as client:
                stream = client.query_iter(
                    UNBOUNDED_WALK, max_visited=16, **LONG_WALK_OPTIONS
                )
                with pytest.raises(BudgetExceeded) as caught:
                    for _ in stream:
                        pass
                assert caught.value.reason == "max_visited"
                assert caught.value.paths_visited >= 16
        finally:
            server.stop()
            db.close()

    def test_deadline_already_expired(self, served_figure1) -> None:
        _, server = served_figure1
        with ReproClient(server.host, server.port) as client:
            with pytest.raises(BudgetExceeded) as caught:
                client.query(QUERIES[0], deadline=-1.0)
            assert caught.value.reason == "deadline"


class TestProtocolErrors:
    def test_malformed_frame_gets_typed_error(self, served_figure1) -> None:
        _, server = served_figure1
        with socket.create_connection((server.host, server.port), timeout=10) as raw:
            raw.sendall(b"this is not json\n")
            reply = decode_frame(raw.makefile("rb").readline())
        assert reply["type"] == "error"
        assert reply["code"] == "protocol"
        assert reply["status"] == 400

    def test_unknown_op(self, served_figure1) -> None:
        _, server = served_figure1
        with socket.create_connection((server.host, server.port), timeout=10) as raw:
            raw.sendall(encode_frame({"op": "frobnicate", "id": 9}))
            reply = decode_frame(raw.makefile("rb").readline())
        assert reply["type"] == "error"
        assert reply["code"] == "protocol"
        assert reply["id"] == 9

    def test_query_error_is_typed_and_connection_survives(self, served_figure1) -> None:
        _, server = served_figure1
        with ReproClient(server.host, server.port) as client:
            with pytest.raises(RemoteQueryError) as caught:
                client.query("MATCH THIS IS NOT GQL")
            assert caught.value.status == 400
            # Connection is still usable after a query error.
            assert client.query(QUERIES[0]).count > 0

    def test_unknown_prepared_statement(self, served_figure1) -> None:
        _, server = served_figure1
        with ReproClient(server.host, server.port) as client:
            with pytest.raises(RemoteQueryError, match="unknown prepared statement"):
                client.execute("nope", {"name": "Moe"})

    def test_prepare_rejects_bad_query(self, served_figure1) -> None:
        _, server = served_figure1
        with ReproClient(server.host, server.port) as client:
            with pytest.raises(RemoteQueryError):
                client.prepare("bad", "MATCH NOT A QUERY")


class TestHttpFace:
    def test_health_stats_query(self, served_figure1) -> None:
        db, server = served_figure1
        base = f"http://{server.host}:{server.port}"
        health = json.load(urllib.request.urlopen(f"{base}/health", timeout=10))
        assert health["status"] == "ok"
        assert health["version"] == db.graph.version

        request = urllib.request.Request(
            f"{base}/query",
            data=json.dumps({"text": QUERIES[0]}).encode(),
            headers={"Content-Type": "application/json"},
        )
        result = json.load(urllib.request.urlopen(request, timeout=10))
        assert result["count"] == len(result["rows"])
        assert sorted(row["path"] for row in result["rows"]) == sorted(
            _serial(db.graph, QUERIES[0]).split("\n")
        )

        stats = json.load(urllib.request.urlopen(f"{base}/stats", timeout=10))
        assert stats["queries"] >= 1
        assert stats["latency"]["wire_seconds"]["count"] >= 1

    def test_http_errors(self, served_figure1) -> None:
        _, server = served_figure1
        base = f"http://{server.host}:{server.port}"
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"{base}/nothing-here", timeout=10)
        assert caught.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"{base}/query", timeout=10)  # GET, not POST
        assert caught.value.code == 405
        request = urllib.request.Request(
            f"{base}/query",
            data=json.dumps({"text": "MATCH NOT GQL"}).encode(),
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 400


class TestLifecycle:
    def test_ephemeral_port_and_reuse(self) -> None:
        db = connect(figure1_graph())
        server = ReproServer(db).start()
        port = server.port
        assert port != 0
        server.stop()
        # A second server binds a fresh port fine after a clean stop.
        second = ReproServer(db).start()
        assert second.port != 0
        second.stop()
        db.close()

    def test_stop_is_idempotent(self) -> None:
        db = connect(figure1_graph())
        server = ReproServer(db).start()
        server.stop()
        server.stop()
        db.close()

    def test_draining_refuses_new_queries_typed(self, served_figure1) -> None:
        _, server = served_figure1
        with ReproClient(server.host, server.port) as client:
            assert client.query(QUERIES[0]).count > 0
            server._draining = True
            try:
                with pytest.raises(ServiceError, match="draining"):
                    client.query(QUERIES[0])
            finally:
                server._draining = False

    def test_wire_statistics_accumulate(self, served_figure1) -> None:
        _, server = served_figure1
        with ReproClient(server.host, server.port) as client:
            for _ in range(4):
                client.query(QUERIES[0])
            list(client.query_iter(QUERIES[0]))
            stats = client.stats()
        assert stats["queries"] >= 5
        assert stats["streamed_pages"] >= 1
        assert stats["rows_sent"] > 0
        wire = stats["latency"]["wire_seconds"]
        assert wire["count"] >= 5
        assert wire["p95_seconds"] >= wire["p50_seconds"] >= 0.0
        assert stats["service"]["submitted"] >= 4

    def test_start_twice_rejected(self) -> None:
        db = connect(figure1_graph())
        with ReproServer(db) as server:
            with pytest.raises(ServiceError, match="already started"):
                server.start()
        db.close()


_socket_steps = st.one_of(
    st.tuples(st.just("query"), st.integers(0, len(QUERIES) - 1)),
    st.tuples(st.just("refresh"), st.just(0)),
    st.tuples(st.just("node"), st.just(0)),
    st.tuples(
        st.just("edge"),
        st.integers(0, 10**6),
        st.integers(0, 10**6),
        st.integers(0, 1),
    ),
)


class TestSnapshotIsolationOverTheWire:
    """The service suite's acceptance property, stretched across the socket."""

    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(schedule=st.lists(_socket_steps, min_size=1, max_size=15))
    def test_every_response_consistent_with_its_pinned_version(self, schedule) -> None:
        graph = figure1_graph()
        base_version = graph.version
        ops: list[tuple] = []
        counter = 0

        def replay(version: int) -> PropertyGraph:
            rebuilt = figure1_graph()
            for op in ops[: version - base_version]:
                if op[0] == "node":
                    rebuilt.add_node(op[1], "Person", {"name": op[1]})
                else:
                    rebuilt.add_edge(op[1], op[2], op[3], op[4])
            assert rebuilt.version == version
            return rebuilt

        db = connect(graph)
        server = ReproServer(db).start()
        responses: list[tuple[str, int, str]] = []
        try:
            with ReproClient(server.host, server.port) as client:
                for step in schedule:
                    if step[0] == "query":
                        text = QUERIES[step[1]]
                        remote = client.query(text)
                        responses.append((text, remote.version, remote.rendered()))
                    elif step[0] == "refresh":
                        client.refresh()
                    elif step[0] == "node":
                        node_id = f"h{counter}"
                        counter += 1
                        graph.add_node(node_id, "Person", {"name": node_id})
                        ops.append(("node", node_id))
                    else:
                        nodes = graph.node_ids()
                        source = nodes[step[1] % len(nodes)]
                        target = nodes[step[2] % len(nodes)]
                        edge_id = f"he{counter}"
                        counter += 1
                        label = EDGE_LABELS[step[3] % len(EDGE_LABELS)]
                        graph.add_edge(edge_id, source, target, label)
                        ops.append(("edge", edge_id, source, target, label))
        finally:
            server.stop()
            db.close()

        for text, version, rendered in responses:
            assert rendered == _serial(replay(version), text), (text, version)


class TestCliListen:
    def test_serve_listen_subprocess(self) -> None:
        """`repro serve --listen` binds, answers over the wire, drains on SIGINT."""
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--workers",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("listening on "), line
            host, port = line.split()[-1].rsplit(":", 1)
            with ReproClient(host, int(port)) as client:
                remote = client.query(QUERIES[0])
                assert remote.count > 0
            proc.send_signal(signal.SIGINT)
            proc.communicate(timeout=30)
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
