"""Tests for the extended-GQL lexer, parser and planner (Section 7.1)."""

from __future__ import annotations

import pytest

from repro.algebra.conditions import LengthCondition, PropertyCondition
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import GroupBy, OrderBy, Projection, Recursive, Selection
from repro.algebra.printer import to_algebra_notation, to_plan_tree
from repro.algebra.solution_space import ALL, GroupByKey, OrderByKey
from repro.errors import GQLSyntaxError
from repro.gql.lexer import TokenKind, tokenize
from repro.gql.parser import parse_query
from repro.gql.planner import plan_query, plan_text
from repro.rpq.ast import Concat, Label, Plus, Star
from repro.semantics.restrictors import Restrictor
from repro.semantics.selectors import SelectorKind

PAPER_QUERY = (
    "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS "
    "TRAIL p = (?x)-[(:Knows)*]->(?y) "
    "GROUP BY TARGET ORDER BY PATH"
)


class TestLexer:
    def test_keywords_are_case_insensitive(self) -> None:
        tokens = tokenize("match All shortest")
        assert [token.value for token in tokens[:-1]] == ["MATCH", "ALL", "SHORTEST"]
        assert all(token.kind == TokenKind.KEYWORD for token in tokens[:-1])

    def test_identifiers_strings_numbers(self) -> None:
        tokens = tokenize('person42 "Moe Szyslak" 17')
        assert tokens[0].kind == TokenKind.IDENTIFIER
        assert tokens[1].kind == TokenKind.STRING
        assert tokens[1].value == "Moe Szyslak"
        assert tokens[2].kind == TokenKind.NUMBER

    def test_multi_char_punctuation(self) -> None:
        tokens = tokenize("-> <= >= !=")
        assert [token.value for token in tokens[:-1]] == ["->", "<=", ">=", "!="]

    def test_positions_tracked(self) -> None:
        tokens = tokenize("MATCH\n  ALL")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unterminated_string(self) -> None:
        with pytest.raises(GQLSyntaxError):
            tokenize('MATCH "oops')

    def test_unexpected_character(self) -> None:
        with pytest.raises(GQLSyntaxError):
            tokenize("MATCH $")


class TestParserExtendedStyle:
    def test_paper_sample_query(self) -> None:
        query = parse_query(PAPER_QUERY)
        assert query.projection is not None
        assert (query.projection.partitions, query.projection.groups, query.projection.paths) == (
            ALL,
            ALL,
            1,
        )
        assert query.restrictor is Restrictor.TRAIL
        assert query.group_by is GroupByKey.T
        assert query.order_by is OrderByKey.A
        assert query.selector is None
        assert query.pattern.regex == Star(Label("Knows"))
        assert query.pattern.source.variable == "x"
        assert query.pattern.target.variable == "y"

    def test_numeric_projection_counts(self) -> None:
        query = parse_query(
            "MATCH 2 PARTITIONS 3 GROUPS 4 PATHS WALK p = (?x)-[Knows]->(?y)"
        )
        assert (query.projection.partitions, query.projection.groups, query.projection.paths) == (
            2,
            3,
            4,
        )

    def test_group_by_multiple_keys(self) -> None:
        query = parse_query(
            "MATCH ALL PARTITIONS ALL GROUPS ALL PATHS TRAIL p = (?x)-[Knows]->(?y) "
            "GROUP BY SOURCE TARGET LENGTH ORDER BY PARTITION GROUP PATH"
        )
        assert query.group_by is GroupByKey.STL
        assert query.order_by is OrderByKey.PGA

    def test_shortest_restrictor(self) -> None:
        query = parse_query(
            "MATCH ALL PARTITIONS ALL GROUPS ALL PATHS SHORTEST p = (?x)-[Knows+]->(?y)"
        )
        assert query.restrictor is Restrictor.SHORTEST


class TestParserSelectorStyle:
    def test_any_shortest_trail(self) -> None:
        query = parse_query("MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->+(?y)")
        assert query.selector is not None
        assert query.selector.kind is SelectorKind.ANY_SHORTEST
        assert query.restrictor is Restrictor.TRAIL
        # The ]->+ form applies Kleene plus to the bracketed regex.
        assert query.pattern.regex == Plus(Label("Knows"))

    def test_plain_restrictor_defaults_to_all_selector_in_planner(self) -> None:
        query = parse_query("MATCH SIMPLE p = (?x)-[Knows+]->(?y)")
        assert query.selector is None
        assert query.restrictor is Restrictor.SIMPLE

    def test_selector_with_k(self) -> None:
        query = parse_query("MATCH SHORTEST 3 WALK p = (?x)-[Knows+]->(?y)")
        assert query.selector.kind is SelectorKind.SHORTEST_K
        assert query.selector.k == 3

    def test_shortest_k_group_selector(self) -> None:
        query = parse_query("MATCH SHORTEST 2 GROUP ACYCLIC p = (?x)-[Knows+]->(?y)")
        assert query.selector.kind is SelectorKind.SHORTEST_K_GROUP
        assert query.restrictor is Restrictor.ACYCLIC

    def test_any_k_selector(self) -> None:
        query = parse_query("MATCH ANY 5 TRAIL p = (?x)-[Knows+]->(?y)")
        assert query.selector.kind is SelectorKind.ANY_K
        assert query.selector.k == 5

    def test_missing_restrictor_defaults_to_walk(self) -> None:
        query = parse_query("MATCH ALL SHORTEST p = (?x)-[Knows+]->(?y)")
        assert query.selector.kind is SelectorKind.ALL_SHORTEST
        assert query.restrictor is Restrictor.WALK


class TestNodePatternsAndWhere:
    def test_inline_properties(self) -> None:
        query = parse_query(
            'MATCH ALL TRAIL p = (?x :Person {name: "Moe", age: 40})-[Knows+]->(?y {name: "Apu"})'
        )
        assert query.pattern.source.label == "Person"
        assert query.pattern.source.properties == {"name": "Moe", "age": 40}
        assert query.pattern.target.properties == {"name": "Apu"}

    def test_anonymous_nodes(self) -> None:
        query = parse_query("MATCH ALL TRAIL p = ()-[Knows]->()")
        assert query.pattern.source.variable is None
        assert query.pattern.target.variable is None

    def test_where_clause_with_variables(self) -> None:
        query = parse_query(
            'MATCH ALL TRAIL p = (?x)-[Knows+]->(?y) WHERE x.name = "Moe" AND y.name = "Apu"'
        )
        assert query.pattern.where is not None

    def test_where_clause_paper_functions(self) -> None:
        query = parse_query(
            'MATCH ALL TRAIL p = (?x)-[Knows+]->(?y) '
            'WHERE label(edge(1)) = "Knows" AND len() <= 3 AND NOT (first.name = "Bart")'
        )
        assert query.pattern.where is not None

    def test_where_unknown_variable_rejected(self) -> None:
        with pytest.raises(GQLSyntaxError):
            parse_query('MATCH ALL TRAIL p = (?x)-[Knows]->(?y) WHERE z.name = "Moe"')

    def test_where_positional_properties(self) -> None:
        query = parse_query(
            'MATCH ALL TRAIL p = (?x)-[Knows+]->(?y) WHERE node(2).name = "Lisa" AND edge(1).since >= 2005'
        )
        conjuncts = query.pattern.where
        assert conjuncts is not None


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "FETCH ALL TRAIL p = (?x)-[Knows]->(?y)",          # wrong verb
            "MATCH ALL PARTITIONS TRAIL p = (?x)-[Knows]->(?y)",  # incomplete projection
            "MATCH ALL TRAIL p = (?x)-[Knows]-(?y)",           # missing arrow
            "MATCH ALL TRAIL p = (?x)-[]->(?y)",               # empty regex
            "MATCH ALL TRAIL p = (?x)-[Knows]->(?y) ORDER BY", # empty order by
            "MATCH ALL TRAIL p = (?x)-[Knows]->(?y) extra",    # trailing tokens
            "MATCH ALL TRAIL p = (?x-[Knows]->(?y)",           # malformed node
        ],
    )
    def test_rejected(self, bad: str) -> None:
        with pytest.raises(GQLSyntaxError):
            parse_query(bad)


class TestPlanner:
    def test_paper_query_plan_notation(self) -> None:
        plan = plan_text(PAPER_QUERY)
        assert to_algebra_notation(plan) == (
            "π(*,*,1)(τA(γT((ϕTrail(σ[label(edge(1)) = 'Knows'](Edges(G))) ∪ Nodes(G)))))"
        )

    def test_paper_query_plan_tree_header(self) -> None:
        tree = to_plan_tree(plan_text(PAPER_QUERY))
        assert tree.splitlines()[0] == "1 Projection (ALL PARTITIONS ALL GROUPS 1 PATHS)"
        assert "OrderBy (Path)" in tree
        assert "Group (Target)" in tree

    def test_selector_style_plan_uses_table7(self) -> None:
        plan = plan_text("MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->+(?y)")
        assert isinstance(plan, Projection)
        assert isinstance(plan.child, OrderBy)
        assert isinstance(plan.child.child, GroupBy)
        assert plan.child.child.key is GroupByKey.ST

    def test_endpoint_constraints_become_selection(self) -> None:
        plan = plan_text('MATCH ALL TRAIL p = (?x {name: "Moe"})-[Knows+]->(?y :Person)')
        selections = [node for node in plan.iter_subtree() if isinstance(node, Selection)]
        # One selection from the label scan plus one for the endpoints.
        assert len(selections) >= 2

    def test_plan_evaluates_on_figure1(self, figure1) -> None:
        plan = plan_text(
            'MATCH ALL SIMPLE p = (?x {name: "Moe"})-[(:Knows+)|((:Likes/:Has_creator)+)]->'
            '(?y {name: "Apu"})'
        )
        result = evaluate_to_paths(plan, figure1)
        assert {path.interleaved() for path in result} == {
            ("n1", "e1", "n2", "e4", "n4"),
            ("n1", "e8", "n6", "e11", "n3", "e7", "n7", "e10", "n4"),
        }

    def test_where_clause_is_applied(self, figure1) -> None:
        plan = plan_text(
            'MATCH ALL TRAIL p = (?x)-[Knows+]->(?y) WHERE x.name = "Moe" AND len() = 1'
        )
        result = evaluate_to_paths(plan, figure1)
        assert {path.interleaved() for path in result} == {("n1", "e1", "n2")}

    def test_max_length_forwarded_to_walk(self, figure1) -> None:
        plan = plan_text("MATCH ALL WALK p = (?x)-[Knows+]->(?y)", max_length=2)
        recursive = next(node for node in plan.iter_subtree() if isinstance(node, Recursive))
        assert recursive.max_length == 2
        result = evaluate_to_paths(plan, figure1)
        assert all(path.len() <= 2 for path in result)

    def test_group_by_defaults_to_no_key(self) -> None:
        plan = plan_text("MATCH ALL PARTITIONS ALL GROUPS ALL PATHS TRAIL p = (?x)-[Knows]->(?y)")
        group = next(node for node in plan.iter_subtree() if isinstance(node, GroupBy))
        assert group.key is GroupByKey.NONE
