"""Delta-aware invalidation units: journal, GraphDelta.affects, footprints.

Three layers, bottom to top:

* the graph's bounded mutation journal and ``delta_between`` (coverage
  window, expiry, fast-forward after snapshot restore);
* :meth:`GraphDelta.affects` — the single intersection test every cache uses;
* :func:`repro.engine.footprint.plan_footprint` — the static analysis that
  narrows a plan to the label classes and property reads it depends on, and
  its conservative (universal) fallbacks.

Cross-version cache *serving* built on these pieces is exercised in
``tests/test_service.py``; this file pins the underlying semantics.
"""

from __future__ import annotations

import pytest

from repro.algebra.conditions import (
    And,
    Comparator,
    LabelCondition,
    Not,
    Or,
    PropertyCondition,
    Target,
)
from repro.algebra.expressions import EdgesScan, Join, NodesScan, Selection, Union
from repro.datasets.figure1 import figure1_graph
from repro.engine.engine import PathQueryEngine
from repro.engine.footprint import plan_footprint
from repro.graph.delta import UNIVERSAL_FOOTPRINT, UNLABELED, GraphDelta, QueryFootprint
from repro.graph.model import PropertyGraph
from repro.service.cache import StripedLRUCache


def _graph() -> PropertyGraph:
    graph = PropertyGraph(name="delta-test")
    graph.add_node("a", "Person", {"name": "A"})  # v1
    graph.add_node("b", "Person")  # v2
    graph.add_node("c")  # v3 (unlabeled)
    graph.add_edge("ab", "a", "b", "Knows")  # v4
    graph.add_edge("bc", "b", "c")  # v5 (unlabeled)
    graph.set_node_property("a", "name", "A'")  # v6
    graph.set_edge_property("ab", "weight", 2)  # v7
    return graph


class TestJournalAndDeltaBetween:
    def test_full_window(self) -> None:
        graph = _graph()
        delta = graph.delta_between(0, 7)
        assert delta is not None
        assert delta.node_labels == {"Person", UNLABELED}
        assert delta.edge_labels == {"Knows", UNLABELED}
        assert delta.node_property_labels == {"Person"}
        assert delta.edge_property_labels == {"Knows"}
        assert delta.node_ids == {"a", "b", "c"}
        assert delta.edge_ids == {"ab", "bc"}
        assert not delta.empty

    def test_partial_window_is_exclusive_inclusive(self) -> None:
        graph = _graph()
        delta = graph.delta_between(4, 6)
        assert delta is not None
        assert delta.edge_labels == {UNLABELED}  # v5 only: "bc" is unlabeled
        assert delta.node_labels == frozenset()
        assert delta.node_property_labels == {"Person"}  # v6
        assert delta.edge_property_labels == frozenset()  # v7 excluded

    def test_empty_and_degenerate_windows(self) -> None:
        graph = _graph()
        assert graph.delta_between(7, 7).empty
        assert graph.delta_between(9, 3).empty
        assert graph.delta_between(7).empty  # default to_version = current

    def test_expired_window_returns_none(self, monkeypatch) -> None:
        monkeypatch.setattr("repro.graph.model.JOURNAL_CAPACITY", 3)
        graph = _graph()  # 7 mutations through a 3-entry journal
        assert graph.delta_between(0, graph.version) is None
        assert graph.delta_between(3, graph.version) is None  # floor is 4
        recent = graph.delta_between(4, graph.version)
        assert recent is not None
        assert recent.node_property_labels == {"Person"}

    def test_fast_forward_clears_coverage(self) -> None:
        graph = _graph()
        graph._fast_forward_version(20)
        assert graph.version == 20
        assert graph.delta_between(7, 20) is None  # history is gone, say so
        with pytest.raises(ValueError):
            graph._fast_forward_version(5)  # versions never go backwards
        graph.add_node("post", "Person")  # journaling resumes at v21
        delta = graph.delta_between(20, 21)
        assert delta is not None and delta.node_labels == {"Person"}


class TestAffects:
    KNOWS_EDGES = QueryFootprint(edge_labels=frozenset(("Knows",)))

    def _delta(self, **kwargs) -> GraphDelta:
        return GraphDelta(from_version=0, to_version=1, **kwargs)

    def test_disjoint_edge_label_does_not_affect(self) -> None:
        delta = self._delta(edge_labels=frozenset(("Likes",)))
        assert not delta.affects(self.KNOWS_EDGES)

    def test_matching_edge_label_affects(self) -> None:
        delta = self._delta(edge_labels=frozenset(("Knows",)))
        assert delta.affects(self.KNOWS_EDGES)

    def test_unlabeled_insert_cannot_match_a_concrete_label(self) -> None:
        delta = self._delta(edge_labels=frozenset((UNLABELED,)))
        assert not delta.affects(self.KNOWS_EDGES)
        assert delta.affects(QueryFootprint(edge_universal=True))

    def test_node_insert_does_not_affect_edge_scans(self) -> None:
        delta = self._delta(node_labels=frozenset(("Person",)))
        assert not delta.affects(self.KNOWS_EDGES)
        assert delta.affects(QueryFootprint(node_universal=True))
        assert delta.affects(QueryFootprint(node_labels=frozenset(("Person",))))

    def test_property_updates_only_affect_property_readers(self) -> None:
        delta = self._delta(node_property_labels=frozenset(("Person",)))
        assert not delta.affects(self.KNOWS_EDGES)
        assert delta.affects(QueryFootprint(reads_node_properties=True))
        edge_delta = self._delta(edge_property_labels=frozenset(("Knows",)))
        assert not edge_delta.affects(QueryFootprint(reads_node_properties=True))
        assert edge_delta.affects(QueryFootprint(reads_edge_properties=True))

    def test_none_footprint_is_universal(self) -> None:
        assert self._delta(edge_labels=frozenset((UNLABELED,))).affects(None)
        assert not self._delta().affects(None)  # empty delta affects nothing

    def test_universal_footprint_intersects_any_nonempty_delta(self) -> None:
        for kwargs in (
            {"edge_labels": frozenset((UNLABELED,))},
            {"node_labels": frozenset((UNLABELED,))},
            {"node_property_labels": frozenset((UNLABELED,))},
            {"edge_property_labels": frozenset((UNLABELED,))},
        ):
            assert self._delta(**kwargs).affects(UNIVERSAL_FOOTPRINT)

    def test_merge_unions_adjacent_windows(self) -> None:
        first = GraphDelta(1, 3, edge_labels=frozenset(("Knows",)))
        second = GraphDelta(3, 5, node_labels=frozenset(("Person",)))
        merged = first.merge(second)
        assert (merged.from_version, merged.to_version) == (1, 5)
        assert merged.edge_labels == {"Knows"}
        assert merged.node_labels == {"Person"}


class TestPlanFootprints:
    def _knows(self, position: int = 1) -> LabelCondition:
        return LabelCondition(target=Target.EDGE, value="Knows", position=position)

    def test_label_restricted_edge_scan(self) -> None:
        plan = Selection(self._knows(), EdgesScan())
        footprint = plan_footprint(plan)
        assert footprint.edge_labels == {"Knows"}
        assert not footprint.edge_universal
        assert not footprint.reads_node_properties

    def test_bare_scans_are_universal(self) -> None:
        assert plan_footprint(EdgesScan()).edge_universal
        assert plan_footprint(NodesScan()).node_universal

    def test_and_intersects_or_unions_not_proves_nothing(self) -> None:
        likes = LabelCondition(target=Target.EDGE, value="Likes", position=1)
        both = Selection(And(self._knows(), likes), EdgesScan())
        assert plan_footprint(both).edge_labels == frozenset()  # Knows ∩ Likes
        either = Selection(Or(self._knows(), likes), EdgesScan())
        assert plan_footprint(either).edge_labels == {"Knows", "Likes"}
        negated = Selection(Not(self._knows()), EdgesScan())
        assert plan_footprint(negated).edge_universal
        half_or = Selection(Or(self._knows(), Not(likes)), EdgesScan())
        assert plan_footprint(half_or).edge_universal

    def test_stacked_selections_intersect(self) -> None:
        plan = Selection(self._knows(), Selection(self._knows(), EdgesScan()))
        assert plan_footprint(plan).edge_labels == {"Knows"}

    def test_property_condition_sets_read_flags(self) -> None:
        node_prop = PropertyCondition(
            target=Target.FIRST, property_name="name", value="Moe"
        )
        plan = Selection(node_prop, Selection(self._knows(), EdgesScan()))
        footprint = plan_footprint(plan)
        assert footprint.reads_node_properties
        assert not footprint.reads_edge_properties
        assert footprint.edge_labels == {"Knows"}

    def test_non_string_label_value_is_universal(self) -> None:
        # An unbound $param (or any non-string) cannot prove a restriction.
        bogus = LabelCondition(target=Target.EDGE, value=42, position=1)
        assert plan_footprint(Selection(bogus, EdgesScan())).edge_universal

    def test_composite_plans_union_children(self) -> None:
        knows = Selection(self._knows(), EdgesScan())
        nodes = Selection(
            LabelCondition(target=Target.FIRST, value="Person"), NodesScan()
        )
        footprint = plan_footprint(Union(Join(nodes, knows), knows))
        assert footprint.edge_labels == {"Knows"}
        assert footprint.node_labels == {"Person"}
        assert not footprint.edge_universal and not footprint.node_universal

    def test_union_and_describe(self) -> None:
        left = QueryFootprint(edge_labels=frozenset(("Knows",)))
        right = QueryFootprint(node_universal=True, reads_edge_properties=True)
        merged = left.union(right)
        assert merged.edge_labels == {"Knows"}
        assert merged.node_universal and merged.reads_edge_properties
        assert "edges:{Knows}" in merged.describe()
        assert "nodes:*" in merged.describe()

    def test_engine_records_footprints_on_results(self) -> None:
        engine = PathQueryEngine(figure1_graph())
        for executor in ("materialize", "pipeline"):
            result = engine.query(
                "MATCH ALL TRAIL p = (?x {name: 'Moe'})-[Knows]->(?y)",
                executor=executor,
            )
            footprint = result.statistics.footprint
            assert footprint is not None, executor
            assert footprint.edge_labels == {"Knows"}, executor
            assert footprint.reads_node_properties, executor


class TestStripedCacheClearAtomicity:
    def test_clear_then_put_survives(self) -> None:
        cache = StripedLRUCache(maxsize=8, stripes=2)
        cache.put("key", "value")
        cache.clear()
        assert len(cache) == 0
        cache.put("key", "after")  # began after the clear: must survive
        assert cache.get("key") == "after"

    def test_put_that_began_before_a_clear_undoes_itself(self, monkeypatch) -> None:
        cache = StripedLRUCache(maxsize=8, stripes=2)
        index = cache._index("key")
        shard = cache._shards[index]
        real_put = shard.put

        def racing_put(key, entry):
            # A clear() sweeps this stripe and bumps the generation while the
            # put holds the stripe lock — exactly the interleaving that leaked
            # entries before the generation counter.
            real_put(key, entry)
            shard.clear()
            with cache._generation_lock:
                cache._generation += 1
            monkeypatch.undo()

        monkeypatch.setattr(shard, "put", racing_put)
        cache.put("key", "stale")
        assert cache.get("key") is None
        assert len(cache) == 0

    def test_remove_and_per_stripe_stats(self) -> None:
        cache = StripedLRUCache(maxsize=32, stripes=4)
        for value in range(6):
            cache.put(f"k{value}", value)
        cache.get("k0")
        cache.get("missing")
        cache.remove("k1")
        assert "k1" not in cache
        stats = cache.stats()
        per_stripe = stats["per_stripe"]
        assert len(per_stripe) == 4
        assert sum(stripe["entries"] for stripe in per_stripe) == len(cache) == 5
        assert sum(stripe["hits"] for stripe in per_stripe) == stats["hits"] == 1
        assert sum(stripe["misses"] for stripe in per_stripe) == stats["misses"] == 1
