"""repro — a path-based algebra for graph query languages.

Reference implementation of *"Path-based Algebraic Foundations of Graph Query
Languages"* (EDBT 2025): a query algebra whose carriers are sets of paths,
covering the core operators (selection, join, union), the recursive operator
ϕ under the five GQL path semantics, and the extended operators (group-by,
order-by, projection) that express GQL selectors and restrictors.

Quick start::

    from repro import PathQueryEngine, figure1_graph

    engine = PathQueryEngine(figure1_graph())
    result = engine.query(
        'MATCH ANY SHORTEST TRAIL p = (?x {name: "Moe"})-[:Knows]->+(?y)'
    )
    for path in result.paths:
        print(path)
"""

from repro.algebra import (
    EdgesScan,
    Evaluator,
    Expression,
    GroupBy,
    GroupByKey,
    Join,
    NodesScan,
    OrderBy,
    OrderByKey,
    Projection,
    ProjectionSpec,
    Recursive,
    Selection,
    SolutionSpace,
    Union,
    evaluate,
    evaluate_to_paths,
    group_by,
    order_by,
    project,
    to_algebra_notation,
    to_plan_tree,
)
from repro.datasets import figure1_graph, ldbc_like_graph
from repro.engine import (
    ExecutionStatistics,
    Executor,
    ExplainResult,
    MaterializeExecutor,
    PathQueryEngine,
    PipelineExecutor,
    PlanCache,
    QueryResult,
)
from repro.graph import Edge, GraphBuilder, GraphSnapshot, Node, PropertyGraph
from repro.gql import parse_query, plan_query, plan_text
from repro.optimizer import Optimizer, optimize
from repro.paths import Path, PathSet
from repro.rpq import CompileOptions, compile_regex, parse_regex
from repro.service import (
    QueryOutcome,
    QueryService,
    QueryTicket,
    ServiceStatistics,
    StripedLRUCache,
)
from repro.semantics import Restrictor, Selector, SelectorKind, apply_selector, recursive_closure
from repro.semantics.translate import (
    PathQuerySpec,
    all_selector_restrictor_combinations,
    translate_path_query,
    translate_selector_restrictor,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph
    "PropertyGraph",
    "GraphSnapshot",
    "Node",
    "Edge",
    "GraphBuilder",
    # paths
    "Path",
    "PathSet",
    # algebra
    "Expression",
    "NodesScan",
    "EdgesScan",
    "Selection",
    "Join",
    "Union",
    "Recursive",
    "GroupBy",
    "OrderBy",
    "Projection",
    "SolutionSpace",
    "GroupByKey",
    "OrderByKey",
    "ProjectionSpec",
    "Evaluator",
    "evaluate",
    "evaluate_to_paths",
    "group_by",
    "order_by",
    "project",
    "to_algebra_notation",
    "to_plan_tree",
    # semantics
    "Restrictor",
    "Selector",
    "SelectorKind",
    "apply_selector",
    "recursive_closure",
    "PathQuerySpec",
    "translate_path_query",
    "translate_selector_restrictor",
    "all_selector_restrictor_combinations",
    # front end / engine
    "parse_query",
    "plan_query",
    "plan_text",
    "parse_regex",
    "compile_regex",
    "CompileOptions",
    "Optimizer",
    "optimize",
    "PathQueryEngine",
    "QueryResult",
    "ExplainResult",
    "Executor",
    "ExecutionStatistics",
    "MaterializeExecutor",
    "PipelineExecutor",
    "PlanCache",
    # serving
    "QueryService",
    "QueryOutcome",
    "QueryTicket",
    "ServiceStatistics",
    "StripedLRUCache",
    # datasets
    "figure1_graph",
    "ldbc_like_graph",
]
