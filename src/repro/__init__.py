"""repro — a path-based algebra for graph query languages.

Reference implementation of *"Path-based Algebraic Foundations of Graph Query
Languages"* (EDBT 2025): a query algebra whose carriers are sets of paths,
covering the core operators (selection, join, union), the recursive operator
ϕ under the five GQL path semantics, and the extended operators (group-by,
order-by, projection) that express GQL selectors and restrictors.

Quick start (the client API)::

    import repro

    db = repro.connect(repro.figure1_graph())
    with db.session() as session:
        pq = session.prepare(
            'MATCH ANY SHORTEST TRAIL p = (?x {name: $name})-[:Knows]->+(?y)'
        )
        for path in pq.execute(name="Moe"):
            print(path)

:func:`connect` returns a :class:`Database` owning the graph and the shared
plan cache; sessions pin a graph snapshot and hand out streaming
:class:`ResultCursor` results; prepared queries bind ``$name`` placeholders
per execution while sharing one cached plan.  The lower-level
:class:`PathQueryEngine` facade remains available for direct use.
"""

from repro.algebra import (
    EdgesScan,
    Evaluator,
    Expression,
    GroupBy,
    GroupByKey,
    Join,
    NodesScan,
    OrderBy,
    OrderByKey,
    Projection,
    ProjectionSpec,
    Recursive,
    Selection,
    SolutionSpace,
    Union,
    evaluate,
    evaluate_to_paths,
    group_by,
    order_by,
    project,
    to_algebra_notation,
    to_plan_tree,
)
from repro.api import Database, PreparedQuery, Session, connect
from repro.datasets import figure1_graph, ldbc_like_graph
from repro.engine import (
    AutomatonExecutor,
    BindingTable,
    ExecutionStatistics,
    Executor,
    ExplainResult,
    MaterializeExecutor,
    PathBinding,
    PathQueryEngine,
    PipelineExecutor,
    PlanCache,
    QueryResult,
    ResultCursor,
    bind_paths,
)
from repro.errors import (
    BudgetExceeded,
    ParameterError,
    PathAlgebraError,
    ServiceOverloadedError,
    WalCorruptError,
)
from repro.execution import QueryBudget
from repro.graph import (
    CompactGraph,
    DurableStore,
    Edge,
    GraphBuilder,
    GraphDelta,
    GraphSnapshot,
    Node,
    PropertyGraph,
    QueryFootprint,
    WriteAheadLog,
)
from repro.gql import parse_query, plan_query, plan_text
from repro.optimizer import Optimizer, optimize
from repro.paths import Path, PathSet
from repro.rpq import CompileOptions, compile_regex, parse_regex
from repro.server import ReproClient, ReproServer
from repro.service import (
    LatencyHistogram,
    QueryOutcome,
    QueryService,
    QueryTicket,
    ServiceStatistics,
    StripedLRUCache,
)
from repro.semantics import Restrictor, Selector, SelectorKind, apply_selector, recursive_closure
from repro.semantics.translate import (
    PathQuerySpec,
    all_selector_restrictor_combinations,
    translate_path_query,
    translate_selector_restrictor,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # client API
    "connect",
    "Database",
    "Session",
    "PreparedQuery",
    "ResultCursor",
    # result bindings (tabular row views)
    "PathBinding",
    "BindingTable",
    "bind_paths",
    # budgets and errors
    "QueryBudget",
    "BudgetExceeded",
    "ParameterError",
    "PathAlgebraError",
    "ServiceOverloadedError",
    "WalCorruptError",
    # graph
    "PropertyGraph",
    "GraphSnapshot",
    "CompactGraph",
    "Node",
    "Edge",
    "GraphBuilder",
    # durability and delta-aware invalidation
    "DurableStore",
    "WriteAheadLog",
    "GraphDelta",
    "QueryFootprint",
    # paths
    "Path",
    "PathSet",
    # algebra
    "Expression",
    "NodesScan",
    "EdgesScan",
    "Selection",
    "Join",
    "Union",
    "Recursive",
    "GroupBy",
    "OrderBy",
    "Projection",
    "SolutionSpace",
    "GroupByKey",
    "OrderByKey",
    "ProjectionSpec",
    "Evaluator",
    "evaluate",
    "evaluate_to_paths",
    "group_by",
    "order_by",
    "project",
    "to_algebra_notation",
    "to_plan_tree",
    # semantics
    "Restrictor",
    "Selector",
    "SelectorKind",
    "apply_selector",
    "recursive_closure",
    "PathQuerySpec",
    "translate_path_query",
    "translate_selector_restrictor",
    "all_selector_restrictor_combinations",
    # front end / engine
    "parse_query",
    "plan_query",
    "plan_text",
    "parse_regex",
    "compile_regex",
    "CompileOptions",
    "Optimizer",
    "optimize",
    "PathQueryEngine",
    "QueryResult",
    "ExplainResult",
    "Executor",
    "ExecutionStatistics",
    "MaterializeExecutor",
    "PipelineExecutor",
    "AutomatonExecutor",
    "PlanCache",
    # serving
    "QueryService",
    "QueryOutcome",
    "QueryTicket",
    "ServiceStatistics",
    "StripedLRUCache",
    "LatencyHistogram",
    # network front-end
    "ReproServer",
    "ReproClient",
    # datasets
    "figure1_graph",
    "ldbc_like_graph",
]
