"""Exception hierarchy for the path-algebra library.

Every error raised by the library derives from :class:`PathAlgebraError`,
so callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class PathAlgebraError(Exception):
    """Base class for every error raised by this library."""


class GraphError(PathAlgebraError):
    """Base class for errors related to property-graph construction or access."""


class DuplicateObjectError(GraphError):
    """An object identifier (node or edge) was registered twice."""


class UnknownObjectError(GraphError):
    """A node or edge identifier was referenced but is not part of the graph."""


class InvalidEdgeError(GraphError):
    """An edge references endpoints that do not exist or is otherwise malformed."""


class FrozenGraphError(GraphError):
    """A mutation was attempted on a frozen graph or an immutable snapshot."""


class WalCorruptError(GraphError):
    """A write-ahead log contains a corrupt record that cannot be skipped.

    A truncated or checksum-failing *final* record is the expected signature
    of a crash mid-append (a "torn tail") and is silently dropped during
    recovery.  Corruption anywhere *earlier* means the log was damaged after
    it was written — recovery refuses to guess and raises this error instead.

    Attributes:
        path: Filesystem path of the offending log, if known.
        offset: Byte offset of the record that failed to decode.
    """

    def __init__(self, message: str, path: str | None = None, offset: int | None = None) -> None:
        self.path = path
        self.offset = offset
        where = ""
        if path is not None:
            where = f" in {path}"
        if offset is not None:
            where += f" at byte {offset}"
        super().__init__(f"{message}{where}")


class ServiceError(PathAlgebraError):
    """The concurrent query service was misused (closed, stale, or misconfigured)."""


class ServiceOverloadedError(ServiceError):
    """A submission was *rejected* because the service is at capacity.

    Raised by :meth:`~repro.service.QueryService.try_submit` when the bounded
    submission queue is full (where :meth:`submit` would block instead), and
    by the network front-end when its in-flight cap is reached — the typed,
    HTTP-429-shaped admission-control signal: the request was never enqueued
    and made no progress, so the caller may safely retry after backing off.

    Attributes:
        pending: Requests waiting or executing when the rejection happened
            (``None`` when the rejecting layer does not track it).
        capacity: The admission limit that was hit.
    """

    #: The HTTP status the network front-end maps this rejection to.
    status = 429

    def __init__(
        self,
        message: str = "service is at capacity; submission rejected",
        pending: int | None = None,
        capacity: int | None = None,
    ) -> None:
        self.pending = pending
        self.capacity = capacity
        if pending is not None or capacity is not None:
            message = f"{message} ({pending}/{capacity} pending)"
        super().__init__(message)


class BudgetExceeded(PathAlgebraError):
    """A query exceeded its :class:`~repro.execution.QueryBudget` and was cancelled.

    Raised cooperatively from inside the execution stack (closure frontier
    loops, physical operators, baselines) at the next budget checkpoint after
    the deadline passed or a resource cap was hit.  The exception carries the
    partial progress made up to the kill so callers — notably
    :class:`~repro.service.QueryService` — can report how far the query got.

    Attributes:
        reason: Which budget dimension was exhausted — ``"deadline"``,
            ``"max_visited"``, ``"max_results"`` or ``"cancelled"`` (an
            external kill switch, e.g. the loser of a portfolio race).
        paths_visited: Paths constructed/visited before the kill.
        depth_reached: Deepest fix-point round (or traversal depth) reached.
        stopped_at: Name of the operator or loop that observed the kill.
    """

    def __init__(
        self,
        reason: str,
        paths_visited: int = 0,
        depth_reached: int = 0,
        stopped_at: str = "",
    ) -> None:
        self.reason = reason
        self.paths_visited = paths_visited
        self.depth_reached = depth_reached
        self.stopped_at = stopped_at
        where = f" in {stopped_at}" if stopped_at else ""
        super().__init__(
            f"query budget exceeded ({reason}){where} after visiting "
            f"{paths_visited} paths (depth {depth_reached})"
        )

    def __reduce__(self):
        # Default exception pickling replays ``cls(*self.args)``, which would
        # feed the formatted message back as ``reason`` and drop the partial
        # progress.  This exception crosses the process boundary (worker →
        # parent result queue), so reconstruct from the typed fields instead.
        return (
            type(self),
            (self.reason, self.paths_visited, self.depth_reached, self.stopped_at),
        )


class PathError(PathAlgebraError):
    """Base class for errors related to path construction or manipulation."""


class InvalidPathError(PathError):
    """A path sequence violates the alternating node/edge structure (Section 2.2)."""


class PathConcatenationError(PathError):
    """Two paths cannot be concatenated because Last(p1) != First(p2)."""


class AlgebraError(PathAlgebraError):
    """Base class for errors raised while constructing or evaluating algebra expressions."""


class ConditionError(AlgebraError):
    """A selection condition is malformed or references an invalid position."""


class EvaluationError(AlgebraError):
    """An algebra expression could not be evaluated over the given graph."""


class NonTerminatingQueryError(EvaluationError):
    """A Walk-restricted recursion would not terminate (cyclic input without a bound)."""


class SolutionSpaceError(AlgebraError):
    """A solution-space operation (group-by / order-by / projection) is invalid."""


class ParseError(PathAlgebraError):
    """Base class for front-end parsing errors."""


class RegexSyntaxError(ParseError):
    """A regular path expression could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class GQLSyntaxError(ParseError):
    """An extended-GQL query could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class PlanningError(PathAlgebraError):
    """A parsed query could not be translated into an algebra plan."""


class ParameterError(PathAlgebraError):
    """A parameterized query was executed with invalid bindings.

    Raised when a ``$name`` placeholder is left unbound at execution time,
    when a binding names a parameter the query does not declare, or when a
    parameterized plan is executed without any bindings at all.
    """


class OptimizerError(PathAlgebraError):
    """A rewrite rule produced an invalid or inconsistent plan."""
