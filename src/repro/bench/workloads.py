"""Workload definitions shared by the benchmark harness.

A *workload* bundles a graph, a set of queries (regexes or extended-GQL
strings) and metadata describing which paper artifact it reproduces, so every
benchmark file in ``benchmarks/`` stays declarative.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from repro.datasets.figure1 import figure1_graph
from repro.datasets.generators import chain_graph, cycle_graph, grid_graph, layered_graph, random_graph
from repro.graph.model import PropertyGraph

__all__ = [
    "Workload",
    "BatchWorkload",
    "figure1_workload",
    "scaling_workloads",
    "selectivity_workloads",
    "executor_workloads",
    "service_workloads",
    "mixed_service_workload",
    "quick_mode",
    "select_sizes",
]

_SizeT = TypeVar("_SizeT")


def quick_mode() -> bool:
    """Whether the ``quick`` benchmark mode is active (``BENCH_QUICK=1``).

    In quick mode every size-parameterized benchmark runs only at its smallest
    configured size, so a full pass over ``benchmarks/`` stays cheap enough
    for CI while still exercising every code path and refreshing the
    ``BENCH_*.json`` perf trajectory.
    """
    return os.environ.get("BENCH_QUICK", "") not in ("", "0")


def select_sizes(sizes: Sequence[_SizeT]) -> Sequence[_SizeT]:
    """Return ``sizes`` unchanged, or only the smallest in quick mode.

    Benchmarks list their sizes in ascending order; quick mode keeps the
    first entry.
    """
    return sizes[:1] if quick_mode() else sizes


@dataclass
class Workload:
    """A named benchmark workload.

    Attributes:
        name: Short identifier used in benchmark output.
        graph_factory: Zero-argument callable building the workload graph.
        regex: The regular path expression the workload evaluates.
        description: What paper artifact or scenario the workload reproduces.
        parameters: Free-form parameters recorded alongside results.
    """

    name: str
    graph_factory: Callable[[], PropertyGraph]
    regex: str
    description: str = ""
    parameters: dict = field(default_factory=dict)

    def build_graph(self) -> PropertyGraph:
        """Build (or rebuild) the workload graph."""
        return self.graph_factory()


def figure1_workload(regex: str = "Knows+") -> Workload:
    """The paper's running example: the Figure 1 graph and the ``Knows+`` pattern."""
    return Workload(
        name="figure1",
        graph_factory=figure1_graph,
        regex=regex,
        description="Figure 1 LDBC SNB snippet (Tables 3 and 5)",
    )


def scaling_workloads(sizes: tuple[int, ...] = (50, 100, 200, 400)) -> list[Workload]:
    """Graphs of increasing size for the scaling experiment (E-S1)."""
    workloads = []
    for size in sizes:
        workloads.append(
            Workload(
                name=f"chain-{size}",
                graph_factory=lambda n=size: chain_graph(n),
                regex="Knows+",
                description="acyclic chain; single path per pair",
                parameters={"nodes": size, "shape": "chain"},
            )
        )
        workloads.append(
            Workload(
                name=f"random-{size}",
                graph_factory=lambda n=size: random_graph(n, 2 * n, seed=7),
                regex="Knows+",
                description="uniform random multigraph",
                parameters={"nodes": size, "shape": "random"},
            )
        )
        workloads.append(
            Workload(
                name=f"grid-{size}",
                graph_factory=lambda n=size: grid_graph(max(2, int(n ** 0.5)), max(2, int(n ** 0.5))),
                regex="Knows+",
                description="grid; exponentially many equal-length shortest paths",
                parameters={"nodes": size, "shape": "grid"},
            )
        )
    return workloads


def selectivity_workloads(num_nodes: int = 120, seed: int = 11) -> list[Workload]:
    """Workloads with varying label selectivity for the optimizer ablation (E-S2)."""
    mixes = {
        "high-selectivity": ("Knows", "Likes", "Has_creator", "Follows", "Replies"),
        "medium-selectivity": ("Knows", "Likes", "Has_creator"),
        "low-selectivity": ("Knows",),
    }
    workloads = []
    for name, labels in mixes.items():
        workloads.append(
            Workload(
                name=name,
                graph_factory=lambda labs=labels: random_graph(
                    num_nodes, 3 * num_nodes, labels=labs, seed=seed
                ),
                regex="Knows/Knows",
                description="label-selectivity sweep for selection pushdown",
                parameters={"labels": list(labels)},
            )
        )
    return workloads


def executor_workloads(num_nodes: int | None = None, seed: int = 13) -> list[Workload]:
    """Streaming-friendly workloads for the executor comparison (BENCH_engine.json).

    Every workload is a join/union plan with no recursion — the shape the
    ``auto`` policy routes to the pull-based pipeline — and carries a
    ``limit`` parameter for the early-termination (``LIMIT k``) measurement:
    the pipeline stops pulling after ``limit`` paths while the materializing
    evaluator always computes the full join.
    """
    nodes = num_nodes if num_nodes is not None else (60 if quick_mode() else 200)
    edges = 3 * nodes
    factory = lambda: random_graph(  # noqa: E731 - shared by all workloads
        nodes, edges, labels=("Knows", "Likes"), seed=seed
    )
    return [
        Workload(
            name=f"join2-{nodes}",
            graph_factory=factory,
            regex="Knows/Knows",
            description="two-step join; streaming hash join end to end",
            parameters={"nodes": nodes, "edges": edges, "limit": 5},
        ),
        Workload(
            name=f"join3-{nodes}",
            graph_factory=factory,
            regex="Knows/Knows/Knows",
            description="three-step join; deepest streaming pipeline",
            parameters={"nodes": nodes, "edges": edges, "limit": 5},
        ),
        Workload(
            name=f"union-{nodes}",
            graph_factory=factory,
            regex="Knows|Likes",
            description="label union; pure scan + filter streaming",
            parameters={"nodes": nodes, "edges": edges, "limit": 10},
        ),
    ]


@dataclass
class BatchWorkload:
    """A serving workload: one graph plus a batch of query texts.

    Attributes:
        name: Short identifier used in benchmark output.
        graph_factory: Zero-argument callable building the workload graph.
        queries: The extended-GQL query texts, in submission order.
        description: What serving scenario the workload models.
        parameters: Free-form parameters recorded alongside results.
    """

    name: str
    graph_factory: Callable[[], PropertyGraph]
    queries: list[str] = field(default_factory=list)
    description: str = ""
    parameters: dict = field(default_factory=dict)

    def build_graph(self) -> PropertyGraph:
        """Build (or rebuild) the workload graph."""
        return self.graph_factory()


_SERVICE_LABELS = ("Knows", "Likes", "Follows")


def _service_query_pool(seed: int) -> list[str]:
    """Distinct non-recursive GQL texts (label sequences joined by ``/`` or ``|``)."""
    rng = random.Random(seed)
    pool: list[str] = []
    seen: set[str] = set()
    sequences: list[list[str]] = [[label] for label in _SERVICE_LABELS]
    while sequences:
        layer: list[list[str]] = []
        for sequence in sequences:
            regex = sequence[0]
            for index, label in enumerate(sequence[1:]):
                regex += ("/" if index % 2 == 0 else "|") + label
            for restrictor in ("TRAIL", "ACYCLIC", "SIMPLE"):
                text = f"MATCH ALL {restrictor} p = (?x)-[{regex}]->(?y)"
                if text not in seen:
                    seen.add(text)
                    pool.append(text)
            if len(sequence) < 4:
                layer.extend(sequence + [label] for label in _SERVICE_LABELS)
        sequences = layer
    rng.shuffle(pool)
    return pool


def service_workloads(seed: int = 17) -> list[BatchWorkload]:
    """Cache-hot and cache-cold batches for the query-service throughput bench.

    Both workloads share one read-only random graph and one batch size; they
    differ only in the number of *distinct* query texts:

    * **cache-hot** repeats a small hot set, the repeat-heavy read-only
      traffic a result cache collapses to one evaluation per distinct query;
    * **cache-cold** makes every text distinct, so nothing is reusable and
      the measurement exposes the service's raw per-query overhead.
    """
    quick = quick_mode()
    nodes = 60 if quick else 150
    edges = 3 * nodes
    batch_size = 80 if quick else 240
    hot_unique = 8
    factory = lambda: random_graph(  # noqa: E731 - shared by both workloads
        nodes, edges, labels=_SERVICE_LABELS, seed=seed, name="service"
    )
    pool = _service_query_pool(seed)
    assert len(pool) >= batch_size, "query pool too small for the batch size"
    rng = random.Random(seed + 1)
    hot = [pool[index % hot_unique] for index in range(batch_size)]
    rng.shuffle(hot)
    shared = {"nodes": nodes, "edges": edges, "batch_size": batch_size}
    return [
        BatchWorkload(
            name="cache-hot",
            graph_factory=factory,
            queries=hot,
            description="repeat-heavy read-only traffic (8 distinct queries)",
            parameters={**shared, "unique_queries": hot_unique},
        ),
        BatchWorkload(
            name="cache-cold",
            graph_factory=factory,
            queries=pool[:batch_size],
            description="every query distinct; no result reuse possible",
            parameters={**shared, "unique_queries": batch_size},
        ),
    ]


def mixed_service_workload(seed: int = 23) -> BatchWorkload:
    """Mixed read/write traffic for the invalidation-policy comparison.

    The schedule (``parameters["steps"]``) interleaves repeat-heavy reads
    over a small hot query set with writes.  Most writes are *disjoint* from
    every query footprint (audit-style ``Audit`` nodes and ``Flagged`` edges
    no query reads); a minority add ``Knows`` edges that genuinely change
    answers.  Under whole-version invalidation every write turns the next
    repeat into a miss; delta-aware invalidation only recomputes when the
    write's labels intersect the query's footprint — which is exactly the
    hit-rate gap this workload measures.

    Steps are fully materialized tuples (ids and endpoints precomputed) so
    the same schedule replays identically across invalidation modes and the
    cache-free reference run.
    """
    quick = quick_mode()
    nodes = 60 if quick else 150
    edges = 3 * nodes
    total_steps = 120 if quick else 300
    hot_unique = 8
    factory = lambda: random_graph(  # noqa: E731 - rebuilt per measured mode
        nodes, edges, labels=_SERVICE_LABELS, seed=seed, name="mixed"
    )
    hot = _service_query_pool(seed)[:hot_unique]
    rng = random.Random(seed + 2)
    audit_nodes = ["audit0", "audit1"]
    steps: list[tuple] = [("audit-node", "audit0"), ("audit-node", "audit1")]
    counters = {"audit": 2, "edge": 0, "reads": 0, "writes": 2, "hot_writes": 0}
    while len(steps) < total_steps:
        roll = rng.random()
        if roll < 0.75:
            steps.append(("query", rng.choice(hot)))
            counters["reads"] += 1
        elif roll < 0.90:
            node_id = f"audit{counters['audit']}"
            counters["audit"] += 1
            counters["writes"] += 1
            audit_nodes.append(node_id)
            steps.append(("audit-node", node_id))
        elif roll < 0.95:
            counters["edge"] += 1
            counters["writes"] += 1
            steps.append(
                (
                    "audit-edge",
                    f"flag{counters['edge']}",
                    rng.choice(audit_nodes),
                    rng.choice(audit_nodes),
                )
            )
        else:
            counters["edge"] += 1
            counters["writes"] += 1
            counters["hot_writes"] += 1
            steps.append(
                (
                    "hot-edge",
                    f"hot{counters['edge']}",
                    rng.choice(audit_nodes),
                    rng.choice(audit_nodes),
                )
            )
    return BatchWorkload(
        name="mixed-read-write",
        graph_factory=factory,
        queries=hot,
        description="hot reads racing mostly-disjoint writes; invalidation-policy A/B",
        parameters={
            "nodes": nodes,
            "edges": edges,
            "steps": steps,
            "unique_queries": hot_unique,
            "reads": counters["reads"],
            "writes": counters["writes"],
            "hot_writes": counters["hot_writes"],
        },
    )


def cyclic_workloads(sizes: tuple[int, ...] = (4, 8, 16, 32)) -> list[Workload]:
    """Pure cycles of increasing size for the restrictor-cost experiment (E-S3)."""
    return [
        Workload(
            name=f"cycle-{size}",
            graph_factory=lambda n=size: cycle_graph(n),
            regex="Knows+",
            description="directed cycle; worst case for unbounded walks",
            parameters={"nodes": size, "shape": "cycle"},
        )
        for size in sizes
    ]


def dag_workloads(depths: tuple[int, ...] = (3, 4, 5, 6)) -> list[Workload]:
    """Layered DAGs whose walk counts grow exponentially with depth."""
    return [
        Workload(
            name=f"layered-{depth}",
            graph_factory=lambda d=depth: layered_graph(layers=d, width=4, fanout=2, seed=3),
            regex="Knows+",
            description="layered DAG; exponential walk count without cycles",
            parameters={"layers": depth, "width": 4},
        )
        for depth in depths
    ]
