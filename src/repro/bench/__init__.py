"""Benchmark-harness utilities: workloads and result formatting."""

from repro.bench.reporting import format_check, format_table, print_table, write_bench_json
from repro.bench.workloads import (
    Workload,
    cyclic_workloads,
    dag_workloads,
    figure1_workload,
    quick_mode,
    scaling_workloads,
    select_sizes,
    selectivity_workloads,
)

__all__ = [
    "Workload",
    "figure1_workload",
    "scaling_workloads",
    "selectivity_workloads",
    "cyclic_workloads",
    "dag_workloads",
    "format_table",
    "format_check",
    "print_table",
    "write_bench_json",
    "quick_mode",
    "select_sizes",
]
