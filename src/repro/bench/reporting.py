"""Plain-text table rendering for the benchmark harness.

Benchmarks regenerate the paper's tables; to keep the output comparable with
the paper, results are printed as fixed-width text tables rather than raw
pytest-benchmark JSON.  The helpers here have no third-party dependencies so
they can also be used from the examples.
"""

from __future__ import annotations

import json
import os
import platform
from typing import Iterable, Mapping, Sequence

__all__ = [
    "format_table",
    "format_check",
    "print_table",
    "host_metadata",
    "write_bench_json",
]


def host_metadata() -> dict:
    """Describe the machine a benchmark ran on.

    Benchmark numbers — especially the parallel-speedup ratios of the
    service benchmark — are meaningless without knowing the core count and
    platform behind them, so every ``BENCH_*.json`` header carries this
    block.  A ``speedup_vs_serial`` below 1.0 for the process pool on a
    1-CPU container is expected; the same row on a multi-core host is the
    number the benchmark exists to demonstrate.
    """
    return {
        "cpus": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` as a fixed-width text table with ``headers``."""
    materialized = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialized:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_check(value: bool) -> str:
    """Render a boolean as the check/cross marks used in the paper's Table 3."""
    return "✓" if value else "✗"


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> None:
    """Print a table built by :func:`format_table` (convenience for benchmarks)."""
    print()
    print(format_table(headers, rows, title))


def write_bench_json(
    path: str,
    benchmark: str,
    entries: Iterable[Mapping[str, object]],
    metadata: Mapping[str, object] | None = None,
) -> dict:
    """Write a machine-readable benchmark report (the ``BENCH_*.json`` trajectory).

    ``entries`` is a sequence of flat dictionaries, one per measured workload
    (name, timings, sizes, derived ratios).  The file is deterministic
    (sorted keys, trailing newline) so successive PRs produce meaningful
    diffs.  A ``metadata["host"]`` block (:func:`host_metadata`) is added
    automatically unless the caller supplied its own.  Returns the payload
    that was written.
    """
    payload: dict = {"benchmark": benchmark, "entries": [dict(entry) for entry in entries]}
    payload["metadata"] = dict(metadata) if metadata else {}
    payload["metadata"].setdefault("host", host_metadata())
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def _stringify(cell: object) -> str:
    if isinstance(cell, bool):
        return format_check(cell)
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
