"""Record-and-replay: captured query streams as differential regression gates.

The serving layer now has enough moving parts — executor selection, result
caching, delta invalidation, thread/process/racing pools, a network
front-end — that "same answers, acceptable speed" needs checking as a
*workload* property, not just per-query.  This module captures a query
stream once and replays it byte-exactly against any number of
configurations:

* **Recording** (:class:`TraceRecorder`) captures each query's text,
  parameter bindings, session graph version and timestamp offset into a
  :class:`Trace` — a JSONL file (header line + one event per line) that is
  diffable, versionable and independent of the code that produced it.
* **Generation** (:func:`generate_ldbc_trace`) synthesizes an
  LDBC-interactive-style trace over :func:`~repro.datasets.ldbc.ldbc_like_graph`:
  a seeded mix of short name lookups, friend-of-friend hops, like/creator
  joins, shortest-path probes and forum-membership scans — deterministic
  for a given seed, so CI replays the same workload forever.
* **Replay** (:func:`replay_trace`) runs a trace against one
  :class:`ReplayConfig` (execution mode, worker count, invalidation
  strategy) through a fresh :class:`~repro.service.QueryService` over a
  shared graph, hashing every result's canonical rendering
  (:meth:`~repro.service.QueryOutcome.rendered`, SHA-256).
* **Differential check** (:func:`diff_outcomes` / :func:`run_replay`):
  two configurations replaying the same trace must produce *byte-identical*
  digests event for event — any mismatch names the event, the query and
  both digests.  Throughput and p50/p95/p99 tail latency per configuration
  land in ``BENCH_replay.json``, so performance regressions are caught by
  the same gate as correctness ones.

Fault injection: ``ReplayConfig.result_transform`` rewrites each rendered
result before hashing — the test suite uses it to prove the gate actually
fires (an injected wrong answer must produce a non-empty diff).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.bench.reporting import write_bench_json
from repro.datasets.ldbc import _FIRST_NAMES as _NAME_POOL
from repro.datasets.ldbc import LDBCParameters, ldbc_like_graph
from repro.graph.model import PropertyGraph
from repro.service.latency import LatencyHistogram
from repro.service.service import QueryService

__all__ = [
    "TraceEvent",
    "Trace",
    "TraceRecorder",
    "ReplayConfig",
    "EventResult",
    "ReplayResult",
    "generate_ldbc_trace",
    "build_trace_graph",
    "replay_trace",
    "diff_outcomes",
    "run_replay",
]

_TRACE_FORMAT = 1

# The LDBC-interactive-style query mix: (weight, text, param names, max_length).
# Parameter values are drawn by the generator's seeded RNG from the names
# actually present in the generated graph, so lookups are selective but
# non-empty.  The shortest-path probe carries a length cap: uncapped TRAIL
# recursion over the friendship network is exponential — that is the
# engine's restrictor semantics, not a workload we want in a pacing trace.
_LDBC_MIX: tuple[tuple[int, str, tuple[str, ...], int | None], ...] = (
    # Short point lookup: the person's direct friends (interactive IS-style).
    (4, "MATCH ALL TRAIL p = (?x {name: $name})-[Knows]->(?y)", ("name",), None),
    # Friend-of-friend expansion (interactive IC-1 flavor).
    (3, "MATCH ALL TRAIL p = (?x {name: $name})-[Knows/Knows]->(?y)", ("name",), None),
    # Content join: messages a person liked, joined to their creators.
    (2, "MATCH ALL TRAIL p = (?x {name: $name})-[Likes/Has_creator]->(?y)", ("name",), None),
    # Shortest-path probe from a named person (IC-13 flavor), length-capped.
    (2, "MATCH ANY SHORTEST TRAIL p = (?x {name: $name})-[Knows]->+(?y)", ("name",), 3),
    # Forum membership scan (unparameterized, heavier).
    (1, "MATCH ALL TRAIL p = (?x)-[Has_member]->(?y)", (), None),
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded query submission.

    Attributes:
        index: Position in the trace (0-based, dense).
        at: Seconds since the start of the recording (pacing information;
            replay may honor or ignore it).
        text: The query text, with ``$name`` placeholders unexpanded.
        params: The parameter bindings at submission.
        version: The graph version the recording session was pinned to.
        limit: Result limit the submitter used (``None`` = unlimited).
        max_length: Path-length cap the submitter used (``None`` = uncapped).
    """

    index: int
    at: float
    text: str
    params: dict[str, Any] = field(default_factory=dict)
    version: int = 0
    limit: int | None = None
    max_length: int | None = None

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "at": self.at,
            "text": self.text,
            "params": self.params,
            "version": self.version,
            "limit": self.limit,
            "max_length": self.max_length,
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "TraceEvent":
        return cls(
            index=int(record["index"]),
            at=float(record.get("at", 0.0)),
            text=str(record["text"]),
            params=dict(record.get("params") or {}),
            version=int(record.get("version", 0)),
            limit=record.get("limit"),
            max_length=record.get("max_length"),
        )


@dataclass
class Trace:
    """A recorded query stream plus the recipe for its graph.

    ``graph_spec`` makes the trace self-contained: :func:`build_trace_graph`
    rebuilds the exact graph the queries ran against (the generators are
    seeded and deterministic), so a trace file alone reproduces the
    workload on any checkout.
    """

    name: str
    events: list[TraceEvent] = field(default_factory=list)
    graph_spec: dict = field(default_factory=dict)
    seed: int | None = None

    def save(self, path: str) -> None:
        """Write the trace as JSONL: one header line, one line per event."""
        with open(path, "w", encoding="utf-8") as handle:
            header = {
                "format": _TRACE_FORMAT,
                "name": self.name,
                "graph": self.graph_spec,
                "seed": self.seed,
                "events": len(self.events),
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for event in self.events:
                handle.write(json.dumps(event.to_json(), sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            raise ValueError(f"empty trace file: {path}")
        header = json.loads(lines[0])
        if header.get("format") != _TRACE_FORMAT:
            raise ValueError(
                f"unsupported trace format {header.get('format')!r} in {path}"
            )
        trace = cls(
            name=str(header.get("name", "trace")),
            graph_spec=dict(header.get("graph") or {}),
            seed=header.get("seed"),
        )
        trace.events = [TraceEvent.from_json(json.loads(line)) for line in lines[1:]]
        declared = header.get("events")
        if declared is not None and declared != len(trace.events):
            raise ValueError(
                f"trace {path} declares {declared} events but contains {len(trace.events)}"
            )
        return trace


class TraceRecorder:
    """Capture query submissions into a :class:`Trace`.

    Use directly (:meth:`record` per query) or as a shim in front of a
    session::

        recorder = TraceRecorder("prod-sample", graph_spec={...})
        with db.session() as session:
            recording = recorder.wrap(session)
            recording.execute("MATCH ...", {"name": "Moe"})   # runs AND records

    Timestamps are offsets from the recorder's construction, so replay can
    reproduce the original pacing.
    """

    def __init__(
        self, name: str, graph_spec: Mapping[str, Any] | None = None, seed: int | None = None
    ) -> None:
        self.trace = Trace(name=name, graph_spec=dict(graph_spec or {}), seed=seed)
        self._started = time.monotonic()

    def record(
        self,
        text: str,
        params: Mapping[str, Any] | None = None,
        *,
        version: int = 0,
        limit: int | None = None,
        max_length: int | None = None,
        at: float | None = None,
    ) -> TraceEvent:
        """Append one event; returns it."""
        event = TraceEvent(
            index=len(self.trace.events),
            at=at if at is not None else (time.monotonic() - self._started),
            text=text,
            params=dict(params or {}),
            version=version,
            limit=limit,
            max_length=max_length,
        )
        self.trace.events.append(event)
        return event

    def wrap(self, session) -> "_RecordingSession":
        """A session proxy that records every ``execute``/``query`` call."""
        return _RecordingSession(self, session)


class _RecordingSession:
    """Proxy recording each query a :class:`~repro.api.Session` runs."""

    def __init__(self, recorder: TraceRecorder, session) -> None:
        self._recorder = recorder
        self._session = session

    def execute(self, text: str, params: Mapping[str, Any] | None = None, **options):
        self._recorder.record(
            text,
            params,
            version=self._session.version,
            limit=options.get("limit"),
            max_length=options.get("max_length"),
        )
        return self._session.execute(text, params, **options)

    def query(self, text: str, params: Mapping[str, Any] | None = None, **options):
        self._recorder.record(
            text,
            params,
            version=self._session.version,
            limit=options.get("limit"),
            max_length=options.get("max_length"),
        )
        return self._session.query(text, params, **options)

    def __getattr__(self, name: str):
        return getattr(self._session, name)


# ----------------------------------------------------------------------
# Trace generation
# ----------------------------------------------------------------------
def generate_ldbc_trace(
    num_events: int = 50,
    seed: int = 7,
    parameters: LDBCParameters | None = None,
    *,
    mean_gap_seconds: float = 0.0,
    name: str = "ldbc-interactive",
) -> Trace:
    """Synthesize a deterministic LDBC-interactive-style trace.

    The query mix is weighted toward short reads with a tail of heavier
    traversals (the interactive workload's shape); parameters draw from the
    generator's own name pool so lookups are selective but non-empty.
    ``mean_gap_seconds > 0`` spaces events with exponential inter-arrival
    gaps (open-loop arrivals); zero packs them back to back.
    """
    import random

    parameters = parameters or LDBCParameters()
    rng = random.Random(seed)
    spec = {
        "kind": "ldbc",
        "num_persons": parameters.num_persons,
        "num_messages": parameters.num_messages,
        "num_forums": parameters.num_forums,
        "avg_knows_degree": parameters.avg_knows_degree,
        "avg_likes_per_person": parameters.avg_likes_per_person,
        "knows_reciprocity": parameters.knows_reciprocity,
        "seed": parameters.seed,
    }
    # Build the (deterministic) graph once to learn which names actually
    # occur — drawing from the raw name pool would generate lookups for
    # persons the seed never created.
    graph = ldbc_like_graph(parameters)
    present = sorted(
        {
            node.properties.get("name")
            for node in graph.nodes()
            if node.label == "Person" and node.properties.get("name")
        }
    )
    name_pool = present or list(_NAME_POOL)
    recorder = TraceRecorder(name, graph_spec=spec, seed=seed)
    weighted: list[tuple[str, tuple[str, ...], int | None]] = []
    for weight, text, param_names, max_length in _LDBC_MIX:
        weighted.extend([(text, param_names, max_length)] * weight)
    clock = 0.0
    for _ in range(num_events):
        text, param_names, max_length = rng.choice(weighted)
        params = {key: rng.choice(name_pool) for key in param_names}
        recorder.record(text, params, max_length=max_length, at=clock)
        if mean_gap_seconds > 0.0:
            clock += rng.expovariate(1.0 / mean_gap_seconds)
    return recorder.trace


def build_trace_graph(trace: Trace) -> PropertyGraph:
    """Rebuild the graph a trace's ``graph_spec`` describes."""
    spec = trace.graph_spec
    kind = spec.get("kind")
    if kind == "ldbc":
        return ldbc_like_graph(
            LDBCParameters(
                num_persons=int(spec.get("num_persons", 50)),
                num_messages=int(spec.get("num_messages", 100)),
                num_forums=int(spec.get("num_forums", 5)),
                avg_knows_degree=float(spec.get("avg_knows_degree", 3.0)),
                avg_likes_per_person=float(spec.get("avg_likes_per_person", 2.0)),
                knows_reciprocity=float(spec.get("knows_reciprocity", 0.3)),
                seed=int(spec.get("seed", 42)),
            )
        )
    raise ValueError(f"unknown graph_spec kind {kind!r} in trace {trace.name!r}")


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayConfig:
    """One configuration to replay a trace against.

    Attributes:
        name: Label used in reports and diffs.
        execution_mode: ``"threads"``, ``"processes"`` or ``"race"``.
        workers: Worker count for the service.
        invalidation: Result-cache invalidation strategy.
        result_cache_size: Forwarded to :class:`~repro.service.QueryService`.
        honor_pacing: Sleep out the recorded inter-arrival gaps (open-loop
            replay) instead of submitting as fast as possible (closed-loop).
        result_transform: Fault-injection hook — rewrites each canonical
            rendering *before* hashing.  Production replays leave it
            ``None``; tests inject corruption to prove the differential
            gate fires.
        service_options: Extra :class:`~repro.service.QueryService` kwargs.
    """

    name: str
    execution_mode: str = "threads"
    workers: int = 2
    invalidation: str = "delta"
    result_cache_size: int = 256
    honor_pacing: bool = False
    result_transform: Callable[[str, TraceEvent], str] | None = None
    service_options: dict = field(default_factory=dict)


@dataclass(frozen=True)
class EventResult:
    """The replayed outcome of one trace event.

    ``digest`` is the SHA-256 of the canonical one-path-per-line rendering
    (prefixed ``error:``/``timeout:`` sentinel renderings for failures, so
    a query that *starts* failing also shows up as a diff).
    """

    index: int
    text: str
    digest: str
    count: int
    latency_seconds: float
    error: str | None = None
    timed_out: bool = False


@dataclass
class ReplayResult:
    """Everything one configuration's replay produced."""

    config: ReplayConfig
    trace_name: str
    events: list[EventResult]
    wall_seconds: float
    latency: LatencyHistogram

    @property
    def throughput_qps(self) -> float:
        """Completed events per wall-clock second."""
        return len(self.events) / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def failures(self) -> int:
        return sum(1 for event in self.events if event.error or event.timed_out)

    def entry(self) -> dict:
        """The flat ``BENCH_replay.json`` entry for this configuration."""
        summary = self.latency.summary()
        return {
            "config": self.config.name,
            "execution_mode": self.config.execution_mode,
            "workers": self.config.workers,
            "invalidation": self.config.invalidation,
            "events": len(self.events),
            "failures": self.failures,
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_qps": round(self.throughput_qps, 3),
            "latency_p50_ms": round(summary["p50_seconds"] * 1e3, 3),
            "latency_p95_ms": round(summary["p95_seconds"] * 1e3, 3),
            "latency_p99_ms": round(summary["p99_seconds"] * 1e3, 3),
            "latency_mean_ms": round(summary["mean_seconds"] * 1e3, 3),
            "latency_max_ms": round(summary["max_seconds"] * 1e3, 3),
        }


def _digest(rendering: str) -> str:
    return hashlib.sha256(rendering.encode("utf-8")).hexdigest()


def replay_trace(
    trace: Trace,
    config: ReplayConfig,
    graph: PropertyGraph | None = None,
) -> ReplayResult:
    """Replay every event of ``trace`` through a fresh service.

    ``graph`` defaults to rebuilding the trace's ``graph_spec``; pass a
    shared instance when replaying several configurations so all of them
    query the identical data (the differential contract).  Events submit in
    trace order (results are awaited per event — latency is queue wait plus
    execution, what a closed-loop client observes).
    """
    if graph is None:
        graph = build_trace_graph(trace)
    service = QueryService(
        graph,
        workers=config.workers,
        execution_mode=config.execution_mode,
        invalidation=config.invalidation,
        result_cache_size=config.result_cache_size,
        **config.service_options,
    )
    events: list[EventResult] = []
    histogram = LatencyHistogram()
    started = time.monotonic()
    try:
        previous_at = trace.events[0].at if trace.events else 0.0
        for event in trace.events:
            if config.honor_pacing and event.at > previous_at:
                time.sleep(event.at - previous_at)
            previous_at = event.at
            ticket = service.submit(
                event.text,
                params=event.params or None,
                limit=event.limit,
                max_length=event.max_length,
            )
            outcome = ticket.result()
            latency = outcome.queued_seconds + outcome.elapsed_seconds
            histogram.observe(latency)
            if outcome.timed_out:
                rendering = f"timeout:{outcome.budget_reason}"
            elif outcome.error is not None:
                rendering = f"error:{outcome.error}"
            else:
                rendering = outcome.rendered()
            if config.result_transform is not None:
                rendering = config.result_transform(rendering, event)
            events.append(
                EventResult(
                    index=event.index,
                    text=event.text,
                    digest=_digest(rendering),
                    count=len(outcome),
                    latency_seconds=latency,
                    error=outcome.error,
                    timed_out=outcome.timed_out,
                )
            )
    finally:
        service.close()
    return ReplayResult(
        config=config,
        trace_name=trace.name,
        events=events,
        wall_seconds=time.monotonic() - started,
        latency=histogram,
    )


def diff_outcomes(
    baseline: ReplayResult, candidate: ReplayResult
) -> list[dict]:
    """Byte-level differential: events whose digests disagree.

    Returns one record per mismatch — the empty list is the green gate.
    A length mismatch (a replay lost events) is itself reported.
    """
    mismatches: list[dict] = []
    if len(baseline.events) != len(candidate.events):
        mismatches.append(
            {
                "index": -1,
                "text": "<event count>",
                "baseline": str(len(baseline.events)),
                "candidate": str(len(candidate.events)),
                "kind": "length",
            }
        )
    for mine, theirs in zip(baseline.events, candidate.events):
        if mine.digest != theirs.digest:
            mismatches.append(
                {
                    "index": mine.index,
                    "text": mine.text,
                    "baseline": mine.digest,
                    "candidate": theirs.digest,
                    "kind": "digest",
                }
            )
    return mismatches


def run_replay(
    trace: Trace,
    configs: Sequence[ReplayConfig],
    json_path: str | None = None,
    graph: PropertyGraph | None = None,
) -> dict:
    """Replay ``trace`` under every config; diff all against the first.

    The first configuration is the baseline.  Returns the report payload::

        {
          "entries": [<per-config throughput/latency>, ...],
          "diffs": {"<config>": [<mismatch>, ...], ...},
          "identical": <bool — True iff every diff list is empty>,
        }

    With ``json_path`` the report is also written via
    :func:`~repro.bench.reporting.write_bench_json` (``BENCH_replay.json``).
    """
    if not configs:
        raise ValueError("run_replay needs at least one configuration")
    if graph is None:
        graph = build_trace_graph(trace)
    results = [replay_trace(trace, config, graph=graph) for config in configs]
    baseline = results[0]
    diffs = {
        result.config.name: diff_outcomes(baseline, result) for result in results[1:]
    }
    identical = all(not mismatches for mismatches in diffs.values())
    entries = [result.entry() for result in results]
    payload = {
        "entries": entries,
        "diffs": diffs,
        "identical": identical,
        "trace": {
            "name": trace.name,
            "events": len(trace.events),
            "graph": trace.graph_spec,
            "seed": trace.seed,
        },
        "baseline": baseline.config.name,
    }
    if json_path is not None:
        write_bench_json(
            json_path,
            "replay",
            entries,
            metadata={
                "trace": payload["trace"],
                "baseline": baseline.config.name,
                "identical": identical,
                "mismatches": {
                    name: len(mismatches) for name, mismatches in diffs.items()
                },
            },
        )
    return payload
