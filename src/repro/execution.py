"""Unified execution statistics shared by every executor.

Historically the materializing :class:`~repro.algebra.evaluator.Evaluator`
collected ``EvaluationStatistics`` (operator call counts and output
cardinalities) while the pull-based pipeline in
:mod:`repro.engine.physical` collected ``PipelineStatistics`` (paths crossing
each operator boundary).  Both code paths now record into the single
:class:`ExecutionStatistics` defined here — the two historical names are kept
as aliases — so :class:`~repro.engine.engine.QueryResult` carries one
statistics type regardless of which executor ran the plan.

The module is deliberately dependency-free (standard library only): it is
imported by both the algebra layer and the engine layer, which otherwise sit
on opposite sides of the package's import graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExecutionStatistics"]


@dataclass
class ExecutionStatistics:
    """Counters collected while executing a logical plan.

    Attributes:
        executor: Name of the executor that filled these counters
            (``"materialize"`` or ``"pipeline"``; empty when the plan was run
            through a bare :class:`~repro.algebra.evaluator.Evaluator` or
            pipeline rather than through the engine's executor layer).
        operator_calls: How often each operator was evaluated.  The
            materializing evaluator counts one call per evaluation of an
            expression node; the pipeline counts one call per operator
            instantiated in the compiled plan.
        operator_output_sizes: Paths produced per operator.  For the pipeline
            this is the number of paths that crossed the operator's output
            boundary — under early termination it can be far smaller than the
            operator's full output.
        intermediate_paths: Total paths produced across all operators (the
            classical "intermediate result size" proxy for execution effort).
        operators: Number of physical operators instantiated (pipeline only;
            zero for the materializing evaluator).
        plan_cache_hits: Cumulative hit count of the plan cache that served
            this query, captured when the query finished.  Together with
            ``plan_cache_misses`` and ``plan_cache_evictions`` this surfaces
            the cache trajectory of a serving engine (or of a
            :class:`~repro.service.QueryService` whose workers share one
            lock-striped cache) without a separate stats endpoint.  All three
            are zero when the plan was run outside the engine facade.
        plan_cache_misses: Cumulative miss count of the serving plan cache.
        plan_cache_evictions: Cumulative LRU evictions of the serving plan cache.
    """

    executor: str = ""
    operator_calls: dict[str, int] = field(default_factory=dict)
    operator_output_sizes: dict[str, int] = field(default_factory=dict)
    intermediate_paths: int = 0
    operators: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_evictions: int = 0

    # -- materializing-evaluator recording style -----------------------
    def record(self, operator: str, output_size: int) -> None:
        """Record one evaluation of ``operator`` producing ``output_size`` paths."""
        self.operator_calls[operator] = self.operator_calls.get(operator, 0) + 1
        self.operator_output_sizes[operator] = (
            self.operator_output_sizes.get(operator, 0) + output_size
        )
        self.intermediate_paths += output_size

    # -- pipeline recording style ---------------------------------------
    def count(self, operator: str, amount: int = 1) -> None:
        """Record ``amount`` paths crossing the output boundary of ``operator``."""
        self.operator_output_sizes[operator] = (
            self.operator_output_sizes.get(operator, 0) + amount
        )
        self.intermediate_paths += amount

    def register_operator(self, operator: str) -> None:
        """Record the instantiation of one physical operator named ``operator``."""
        self.operators += 1
        self.operator_calls[operator] = self.operator_calls.get(operator, 0) + 1

    # -- derived views ---------------------------------------------------
    @property
    def rows_produced(self) -> dict[str, int]:
        """Pipeline-era alias: paths produced per operator."""
        return self.operator_output_sizes

    def total_calls(self) -> int:
        """Total number of operator evaluations (or instantiations, for the pipeline)."""
        return sum(self.operator_calls.values())

    def total_rows(self) -> int:
        """Total paths that crossed any operator boundary."""
        return sum(self.operator_output_sizes.values())
