"""Unified execution statistics and query budgets shared by every executor.

Historically the materializing :class:`~repro.algebra.evaluator.Evaluator`
collected ``EvaluationStatistics`` (operator call counts and output
cardinalities) while the pull-based pipeline in
:mod:`repro.engine.physical` collected ``PipelineStatistics`` (paths crossing
each operator boundary).  Both code paths now record into the single
:class:`ExecutionStatistics` defined here — the two historical names are kept
as aliases — so :class:`~repro.engine.engine.QueryResult` carries one
statistics type regardless of which executor ran the plan.

The module also defines :class:`QueryBudget`, the cooperative cancellation
token threaded through the whole execution stack: the engine facade, both
executors, the physical operators' recursion loops, the closure frontier
loops and the traversal/automaton baselines all accept an optional budget and
check it at frontier-expansion boundaries (plus an amortized clock check
every :attr:`QueryBudget.check_interval` visited paths), so a deadline or a
resource cap kills an in-flight query within one check interval instead of
never.  Exhausted budgets raise :class:`~repro.errors.BudgetExceeded`.

The module is deliberately dependency-free (standard library plus
:mod:`repro.errors`, itself standard-library only): it is imported by both
the algebra layer and the engine layer, which otherwise sit on opposite
sides of the package's import graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import BudgetExceeded

if TYPE_CHECKING:  # pragma: no cover - typing only (keeps the module leaf-level)
    from typing import Callable

    from repro.graph.delta import QueryFootprint

__all__ = ["ExecutionStatistics", "QueryBudget"]


class QueryBudget:
    """A cooperative cancellation token plus resource caps for one query.

    The budget is *checked*, never *enforced preemptively*: every loop that
    can run for a long time (closure fix points, DFS/BFS traversals, the
    physical pipeline) calls :meth:`charge` as it visits paths and
    :meth:`checkpoint` at frontier-expansion boundaries.  ``charge`` is cheap
    — an integer add and a cap comparison — and only consults the monotonic
    clock once every :attr:`check_interval` visited paths, which keeps the
    overhead on budget-free hot loops at zero and on budgeted ones below the
    noise floor (see PERFORMANCE.md, "Cooperative cancellation").

    All deadline math uses ``time.monotonic()``: deadlines must survive
    wall-clock adjustments, and using one clock everywhere (the service's
    queue stamps included) keeps every interval arithmetically comparable.

    Args:
        deadline: Absolute ``time.monotonic()`` instant after which the query
            is killed (``None`` — no deadline).  Use :meth:`from_timeout` to
            build one from a relative number of seconds.
        max_visited: Cap on the number of paths the execution may visit or
            construct, summed across operators (``None`` — unlimited).
        max_results: Cap on the size of the result set the caller receives,
            checked after any ``limit`` truncation (``None`` — unlimited).
        check_interval: How many visited paths may pass between two clock
            reads.  Caps are enforced to within one :meth:`charge` batch.
        cancel: Optional zero-argument callable polled wherever the deadline
            is — :meth:`checkpoint` and the amortized clock branch of
            :meth:`charge`.  Returning ``True`` kills the query with reason
            ``"cancelled"``; the process pool's race mode uses this to stop
            the losing executor from the parent process via a shared-memory
            flag.
    """

    #: How many paths/pops a hot loop may process between two budget calls.
    #: Every batched charging site in the execution stack (closure frontier
    #: chunks, `PathSet.join`, the DFS/BFS baselines) derives its batch size
    #: from this single knob, so check granularity is tuned in one place.
    CHARGE_BATCH = 512

    __slots__ = (
        "deadline",
        "max_visited",
        "max_results",
        "check_interval",
        "cancel",
        "paths_visited",
        "depth_reached",
        "stopped_at",
        "_uncounted",
    )

    def __init__(
        self,
        deadline: float | None = None,
        max_visited: int | None = None,
        max_results: int | None = None,
        check_interval: int = 1024,
        cancel: "Callable[[], bool] | None" = None,
    ) -> None:
        if max_visited is not None and max_visited < 0:
            raise ValueError(f"max_visited must be >= 0, got {max_visited}")
        if max_results is not None and max_results < 0:
            raise ValueError(f"max_results must be >= 0, got {max_results}")
        if check_interval <= 0:
            raise ValueError(f"check_interval must be > 0, got {check_interval}")
        self.deadline = deadline
        self.max_visited = max_visited
        self.max_results = max_results
        self.check_interval = check_interval
        #: External kill switch, polled at the same amortized boundaries as
        #: the deadline.  Returning ``True`` raises ``BudgetExceeded`` with
        #: reason ``"cancelled"`` — how the process pool's race mode stops a
        #: losing executor from another process (the callable typically reads
        #: a shared-memory flag, so it must be cheap and must never raise).
        self.cancel = cancel
        #: Partial-progress counters, readable after a kill (they are also
        #: copied into :class:`ExecutionStatistics` on successful completion).
        self.paths_visited = 0
        self.depth_reached = 0
        self.stopped_at = ""
        self._uncounted = 0

    @classmethod
    def from_timeout(
        cls,
        seconds: float,
        max_visited: int | None = None,
        max_results: int | None = None,
        check_interval: int = 1024,
    ) -> "QueryBudget":
        """Build a budget whose deadline is ``seconds`` from now (monotonic)."""
        return cls(
            deadline=time.monotonic() + seconds,
            max_visited=max_visited,
            max_results=max_results,
            check_interval=check_interval,
        )

    @property
    def unlimited(self) -> bool:
        """``True`` when no dimension of the budget can ever trip."""
        return (
            self.deadline is None
            and self.max_visited is None
            and self.max_results is None
            and self.cancel is None
        )

    def remaining_seconds(self) -> float | None:
        """Seconds until the deadline (negative once past); ``None`` without one."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    # ------------------------------------------------------------------
    # Checkpoints (called from the execution stack)
    # ------------------------------------------------------------------
    def charge(self, amount: int = 1, where: str = "") -> None:
        """Account for ``amount`` visited paths; amortized deadline check.

        Hot loops batch their calls (an integer counter per produced path,
        one ``charge`` per batch), so the per-path cost with a budget
        attached is an add and a compare.

        Raises:
            BudgetExceeded: when the visited-paths cap is exceeded, or the
                deadline has passed at a clock-check boundary.
        """
        self.paths_visited += amount
        if self.max_visited is not None and self.paths_visited > self.max_visited:
            self._exceed("max_visited", where)
        self._uncounted += amount
        if self._uncounted >= self.check_interval:
            self._uncounted = 0
            if self.deadline is not None and time.monotonic() >= self.deadline:
                self._exceed("deadline", where)
            if self.cancel is not None and self.cancel():
                self._exceed("cancelled", where)

    def checkpoint(self, where: str = "", depth: int | None = None) -> None:
        """Frontier-expansion boundary: always consult the clock.

        Also records ``depth`` (fix-point round / traversal depth) into the
        partial-progress counters when given.
        """
        if depth is not None and depth > self.depth_reached:
            self.depth_reached = depth
        if self.deadline is not None and time.monotonic() >= self.deadline:
            self._exceed("deadline", where)
        if self.cancel is not None and self.cancel():
            self._exceed("cancelled", where)

    def note_depth(self, depth: int) -> None:
        """Record reaching ``depth`` without a clock check (hot-loop safe)."""
        if depth > self.depth_reached:
            self.depth_reached = depth

    def check_result_size(self, size: int, where: str = "") -> None:
        """Enforce the result-size cap against a materialized result."""
        if self.max_results is not None and size > self.max_results:
            self._exceed("max_results", where)

    def _exceed(self, reason: str, where: str) -> None:
        self.stopped_at = where
        raise BudgetExceeded(
            reason,
            paths_visited=self.paths_visited,
            depth_reached=self.depth_reached,
            stopped_at=where,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        remaining = self.remaining_seconds()
        clause = f"{remaining:.3f}s left" if remaining is not None else "no deadline"
        return (
            f"QueryBudget({clause}, max_visited={self.max_visited}, "
            f"max_results={self.max_results}, visited={self.paths_visited})"
        )


@dataclass
class ExecutionStatistics:
    """Counters collected while executing a logical plan.

    Attributes:
        executor: Name of the executor that filled these counters
            (``"materialize"`` or ``"pipeline"``; empty when the plan was run
            through a bare :class:`~repro.algebra.evaluator.Evaluator` or
            pipeline rather than through the engine's executor layer).
        operator_calls: How often each operator was evaluated.  The
            materializing evaluator counts one call per evaluation of an
            expression node; the pipeline counts one call per operator
            instantiated in the compiled plan.
        operator_output_sizes: Paths produced per operator.  For the pipeline
            this is the number of paths that crossed the operator's output
            boundary — under early termination it can be far smaller than the
            operator's full output.
        intermediate_paths: Total paths produced across all operators (the
            classical "intermediate result size" proxy for execution effort).
        operators: Number of physical operators instantiated (pipeline only;
            zero for the materializing evaluator).
        plan_cache_hits: Cumulative hit count of the plan cache that served
            this query, captured when the query finished.  Together with
            ``plan_cache_misses`` and ``plan_cache_evictions`` this surfaces
            the cache trajectory of a serving engine (or of a
            :class:`~repro.service.QueryService` whose workers share one
            lock-striped cache) without a separate stats endpoint.  All three
            are zero when the plan was run outside the engine facade.
        plan_cache_misses: Cumulative miss count of the serving plan cache.
        plan_cache_evictions: Cumulative LRU evictions of the serving plan cache.
        budget_paths_visited: Paths visited as accounted by the query's
            :class:`QueryBudget` (zero when the query ran without one).  On a
            budget kill these counters describe the partial progress made
            before the :class:`~repro.errors.BudgetExceeded` was raised.
        budget_depth_reached: Deepest fix-point round / traversal depth the
            budgeted execution reached.
        budget_stopped_at: Operator or loop that observed the kill (empty
            when the query completed within budget).
        footprint: The :class:`~repro.graph.delta.QueryFootprint` of the
            executed plan — which label classes and property reads the result
            depends on, recorded by the executors and consumed by the
            delta-aware caches.  ``None`` when the plan was run outside the
            executor layer (treated as universal by consumers).
    """

    executor: str = ""
    operator_calls: dict[str, int] = field(default_factory=dict)
    operator_output_sizes: dict[str, int] = field(default_factory=dict)
    intermediate_paths: int = 0
    operators: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_evictions: int = 0
    budget_paths_visited: int = 0
    budget_depth_reached: int = 0
    budget_stopped_at: str = ""
    footprint: "QueryFootprint | None" = None

    def capture_budget(self, budget: "QueryBudget | None") -> None:
        """Copy a budget's partial-progress counters into these statistics."""
        if budget is None:
            return
        self.budget_paths_visited = budget.paths_visited
        self.budget_depth_reached = budget.depth_reached
        self.budget_stopped_at = budget.stopped_at

    # -- materializing-evaluator recording style -----------------------
    def record(self, operator: str, output_size: int) -> None:
        """Record one evaluation of ``operator`` producing ``output_size`` paths."""
        self.operator_calls[operator] = self.operator_calls.get(operator, 0) + 1
        self.operator_output_sizes[operator] = (
            self.operator_output_sizes.get(operator, 0) + output_size
        )
        self.intermediate_paths += output_size

    # -- pipeline recording style ---------------------------------------
    def count(self, operator: str, amount: int = 1) -> None:
        """Record ``amount`` paths crossing the output boundary of ``operator``."""
        self.operator_output_sizes[operator] = (
            self.operator_output_sizes.get(operator, 0) + amount
        )
        self.intermediate_paths += amount

    def register_operator(self, operator: str) -> None:
        """Record the instantiation of one physical operator named ``operator``."""
        self.operators += 1
        self.operator_calls[operator] = self.operator_calls.get(operator, 0) + 1

    # -- derived views ---------------------------------------------------
    @property
    def rows_produced(self) -> dict[str, int]:
        """Pipeline-era alias: paths produced per operator."""
        return self.operator_output_sizes

    def total_calls(self) -> int:
        """Total number of operator evaluations (or instantiations, for the pipeline)."""
        return sum(self.operator_calls.values())

    def total_rows(self) -> int:
        """Total paths that crossed any operator boundary."""
        return sum(self.operator_output_sizes.values())
