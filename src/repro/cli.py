"""Command-line interface for the path-algebra engine.

Subcommands:

* ``query``    — run an extended-GQL query against a graph file (JSON or CSV)
  or one of the built-in data sets, printing the matching paths; supports
  ``$name`` placeholders bound with repeatable ``--param name=value`` flags
  and ``--format jsonl`` streaming one binding row per line through the
  result cursor;
* ``explain``  — show the logical plan, the optimizer rewrites and the cost
  estimates without executing the query;
* ``serve``    — run a batch of queries through the concurrent
  :class:`~repro.service.QueryService` (worker pool, snapshot isolation,
  shared plan/result caches), reading one query per line from ``--batch-file``
  or stdin; with ``--listen HOST:PORT`` it instead serves the database over
  TCP (JSONL protocol + HTTP/1.1) until interrupted, draining in-flight
  queries on shutdown;
* ``replay``   — record (``replay record``), synthesize (``replay
  generate``) and replay (``replay run``) query traces: ``run`` replays one
  trace against several service configurations and reports byte-level
  result diffs plus throughput/tail-latency per configuration — the
  differential regression gate behind ``BENCH_replay.json``;
* ``generate`` — write a synthetic graph (figure1 / ldbc / random / cycle /
  chain / grid) to a JSON file;
* ``stats``    — print summary statistics of a graph file;
* ``wal``      — inspect (``wal inspect``) or compact (``wal compact``) a
  durable graph directory (crash-consistent snapshot + write-ahead log, as
  opened by ``--durable`` or :meth:`repro.Database.open`).

Examples::

    python -m repro.cli generate ldbc --persons 100 --output snb.json
    python -m repro.cli query --graph snb.json \
        'MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->+(?y)'
    python -m repro.cli explain --dataset figure1 \
        'MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y)'
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path as FilePath

from repro.api import Database, connect
from repro.bench.replay import (
    ReplayConfig,
    Trace,
    TraceRecorder,
    build_trace_graph,
    generate_ldbc_trace,
    run_replay,
)
from repro.datasets.figure1 import figure1_graph
from repro.datasets.generators import chain_graph, cycle_graph, grid_graph, random_graph
from repro.datasets.ldbc import LDBCParameters, ldbc_like_graph
from repro.engine.executor import EXECUTOR_NAMES
from repro.engine.router import EXECUTION_MODES
from repro.errors import BudgetExceeded, PathAlgebraError
from repro.graph.io import load_csv, load_json, save_json
from repro.graph.model import PropertyGraph
from repro.graph.stats import compute_statistics
from repro.graph.wal import FSYNC_POLICIES, DurableStore, read_wal

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Path-algebra query engine for property graphs (GQL / SQL-PGQ path queries).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="run an extended-GQL path query")
    _add_graph_arguments(query)
    query.add_argument("text", help="the query text")
    query.add_argument("--max-length", type=int, default=None, help="bound for WALK recursion")
    query.add_argument("--no-optimize", action="store_true", help="disable the plan optimizer")
    query.add_argument(
        "--limit",
        type=int,
        default=None,
        help="produce at most this many paths (pushed into the pipeline executor: "
        "it stops pulling after the limit instead of materializing everything; "
        "which paths survive the cut is executor-dependent)",
    )
    query.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        default="auto",
        help="execution strategy: the materializing evaluator, the pull-based "
        "pipeline, the product-graph automaton (streaming SHORTEST), or "
        "cost-based automatic selection (default: auto)",
    )
    query.add_argument(
        "--phases",
        action="store_true",
        help="report per-phase timings (parse / plan / optimize / execute)",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="kill the query after this many seconds (cooperative, enforced "
        "in-flight at budget checkpoints; prints partial progress on a kill)",
    )
    query.add_argument(
        "--max-visited",
        type=int,
        default=None,
        help="kill the query after visiting this many paths (resource cap)",
    )
    query.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="NAME=VALUE",
        help="bind a $name placeholder of the query (repeatable; values parse "
        "as int/true/false where possible, else as strings)",
    )
    query.add_argument(
        "--format",
        choices=["paths", "jsonl"],
        default="paths",
        help="output format: 'paths' prints sorted path values; 'jsonl' "
        "streams one JSON binding row per line through the result cursor "
        "without materializing the full result (default: paths)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve a batch of queries through the concurrent query service",
    )
    _add_graph_arguments(serve)
    serve.add_argument(
        "--batch-file",
        default=None,
        help="file with one extended-GQL query per line ('#' starts a comment; "
        "default: read queries from stdin)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker threads (0 executes inline on the submitting thread; default: 4)",
    )
    serve.add_argument(
        "--execution-mode",
        choices=list(EXECUTION_MODES),
        default="threads",
        help="where queries execute: worker threads (GIL-bound; default), "
        "forked worker processes (true multi-core parallelism), or processes "
        "racing both executors per query, first result wins",
    )
    serve.add_argument("--max-length", type=int, default=None, help="bound for WALK recursion")
    serve.add_argument(
        "--limit", type=int, default=None, help="produce at most this many paths per query"
    )
    serve.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        default="auto",
        help="execution strategy shared by all workers (default: auto)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-query deadline in seconds, enforced in-flight: a query "
        "still running when its deadline passes is cancelled cooperatively "
        "and answered with a timeout carrying its partial progress",
    )
    serve.add_argument(
        "--max-visited",
        type=int,
        default=None,
        help="per-query cap on visited paths (exceeding it counts as a timeout)",
    )
    serve.add_argument(
        "--plan-cache-size", type=int, default=256, help="shared plan cache capacity"
    )
    serve.add_argument(
        "--result-cache-size",
        type=int,
        default=1024,
        help="shared result cache capacity (0 disables result reuse)",
    )
    serve.add_argument("--no-optimize", action="store_true", help="disable the plan optimizer")
    serve.add_argument(
        "--print-paths",
        action="store_true",
        help="print every result path (default: print per-query counts only)",
    )
    serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="serve the database over TCP instead of running a batch: JSONL "
        "protocol for sessions/streaming, HTTP/1.1 for GET /health, "
        "GET /stats and POST /query (PORT 0 picks an ephemeral port); runs "
        "until interrupted, then drains in-flight queries",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="with --listen: reject queries beyond this many concurrently "
        "executing ones with a typed 429-shaped error (default: unlimited "
        "at the server; the service submission queue still bounds admission)",
    )
    serve.add_argument(
        "--fetch-size",
        type=int,
        default=64,
        help="with --listen: rows per streaming page frame (default: 64)",
    )

    explain = subparsers.add_parser("explain", help="show the plan without executing")
    _add_graph_arguments(explain)
    explain.add_argument("text", help="the query text")
    explain.add_argument("--max-length", type=int, default=None, help="bound for WALK recursion")

    generate = subparsers.add_parser("generate", help="write a synthetic graph to JSON")
    generate.add_argument(
        "kind", choices=["figure1", "ldbc", "random", "cycle", "chain", "grid"],
        help="which generator to use",
    )
    generate.add_argument("--output", required=True, help="output JSON path")
    generate.add_argument("--persons", type=int, default=50, help="ldbc: number of persons")
    generate.add_argument("--messages", type=int, default=100, help="ldbc: number of messages")
    generate.add_argument("--nodes", type=int, default=50, help="random/cycle/chain: node count")
    generate.add_argument("--edges", type=int, default=100, help="random: edge count")
    generate.add_argument("--rows", type=int, default=5, help="grid: rows")
    generate.add_argument("--cols", type=int, default=5, help="grid: columns")
    generate.add_argument("--seed", type=int, default=42, help="random seed")

    replay = subparsers.add_parser(
        "replay", help="record, synthesize and differentially replay query traces"
    )
    replay_sub = replay.add_subparsers(dest="replay_command", required=True)

    replay_generate = replay_sub.add_parser(
        "generate",
        help="synthesize a deterministic LDBC-interactive-style trace",
    )
    replay_generate.add_argument("--output", required=True, help="trace JSONL path")
    replay_generate.add_argument(
        "--events", type=int, default=50, help="number of queries in the trace"
    )
    replay_generate.add_argument("--seed", type=int, default=7, help="workload seed")
    replay_generate.add_argument(
        "--persons", type=int, default=50, help="ldbc graph: number of persons"
    )
    replay_generate.add_argument(
        "--messages", type=int, default=100, help="ldbc graph: number of messages"
    )
    replay_generate.add_argument(
        "--graph-seed", type=int, default=42, help="ldbc graph seed"
    )
    replay_generate.add_argument(
        "--mean-gap",
        type=float,
        default=0.0,
        help="mean inter-arrival gap in seconds (exponential; 0 = back-to-back)",
    )

    replay_record = replay_sub.add_parser(
        "record",
        help="execute a query batch and record it (text, params, version, "
        "timestamps) into a replayable trace",
    )
    _add_graph_arguments(replay_record)
    replay_record.add_argument("--output", required=True, help="trace JSONL path")
    replay_record.add_argument(
        "--batch-file",
        default=None,
        help="file with one query per line ('#' comments; default: stdin)",
    )
    replay_record.add_argument(
        "--limit", type=int, default=None, help="per-query result limit"
    )
    replay_record.add_argument(
        "--max-length", type=int, default=None, help="bound for WALK recursion"
    )

    replay_run = replay_sub.add_parser(
        "run",
        help="replay a trace against two or more configurations and diff the results",
    )
    replay_run.add_argument("trace", help="trace JSONL path (from generate/record)")
    replay_run.add_argument(
        "--config",
        action="append",
        default=None,
        metavar="NAME=MODE:WORKERS[:INVALIDATION]",
        help="a configuration to replay under, repeatable (e.g. "
        "threads=threads:2, procs=processes:2:version); the first is the "
        "baseline every other config is diffed against "
        "(default: threads=threads:2 and serial=threads:0)",
    )
    replay_run.add_argument(
        "--graph",
        default=None,
        help="graph JSON file to replay against (default: rebuild the "
        "trace's recorded graph spec)",
    )
    replay_run.add_argument(
        "--json", default=None, help="also write the report as BENCH-style JSON here"
    )
    replay_run.add_argument(
        "--honor-pacing",
        action="store_true",
        help="sleep out the recorded inter-arrival gaps (open-loop replay)",
    )

    stats = subparsers.add_parser("stats", help="print graph statistics")
    _add_graph_arguments(stats)

    wal = subparsers.add_parser(
        "wal", help="inspect or compact a durable graph directory"
    )
    wal_sub = wal.add_subparsers(dest="wal_command", required=True)
    wal_inspect = wal_sub.add_parser(
        "inspect",
        help="print snapshot and write-ahead-log state without modifying anything",
    )
    wal_inspect.add_argument("path", help="durable graph directory")
    wal_compact = wal_sub.add_parser(
        "compact",
        help="recover the graph and fold the write-ahead log into the snapshot",
    )
    wal_compact.add_argument("path", help="durable graph directory")
    wal_compact.add_argument(
        "--fsync",
        choices=list(FSYNC_POLICIES),
        default="always",
        help="durability policy while compacting (default: always)",
    )

    return parser


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--graph", help="path to a graph JSON file (or CSV prefix)")
    group.add_argument(
        "--dataset",
        choices=["figure1", "ldbc"],
        default=None,
        help="built-in data set to use when no --graph is given (default: figure1)",
    )
    parser.add_argument(
        "--durable",
        metavar="DIR",
        default=None,
        help="open the graph durably from this directory (snapshot + "
        "write-ahead log, created when absent); a brand-new directory is "
        "seeded from --graph/--dataset when one is given explicitly",
    )
    parser.add_argument(
        "--fsync",
        choices=list(FSYNC_POLICIES),
        default="always",
        help="durability policy for --durable: fsync per mutation, every "
        "batch, or never (default: always)",
    )


def _load_graph(args: argparse.Namespace) -> PropertyGraph:
    if getattr(args, "graph", None):
        path = FilePath(args.graph)
        if path.suffix == ".json":
            return load_json(path)
        return load_csv(path)
    if getattr(args, "dataset", None) == "ldbc":
        return ldbc_like_graph()
    return figure1_graph()


def _open_database(args: argparse.Namespace, **options) -> "Database":
    """Open the database a command should run against.

    Without ``--durable`` this is :func:`connect` over the loaded graph.
    With it, the durable directory is recovered (snapshot + WAL replay); a
    brand-new store is seeded from ``--graph``/``--dataset`` when the user
    named one explicitly, so ``repro query --durable dir --dataset ldbc ...``
    bootstraps a durable copy of the data set on first use.
    """
    durable = getattr(args, "durable", None)
    if not durable:
        return connect(_load_graph(args), **options)
    db = Database.open(durable, fsync=getattr(args, "fsync", "always"), **options)
    explicit_source = getattr(args, "graph", None) or getattr(args, "dataset", None)
    if db.graph.version == 0 and explicit_source:
        seed = _load_graph(args)
        for node in seed.nodes():
            db.graph.add_node(node.id, node.label, node.properties)
        for edge in seed.edges():
            db.graph.add_edge(edge.id, edge.source, edge.target, edge.label, edge.properties)
    return db


def _parse_param_value(raw: str):
    """Parse a ``--param`` value: int, float, true/false, else the raw string."""
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    if raw.lower() == "true":
        return True
    if raw.lower() == "false":
        return False
    return raw


def _parse_params(pairs: list[str] | None) -> dict | None:
    """Parse repeated ``--param name=value`` flags into a binding mapping."""
    if not pairs:
        return None
    params: dict = {}
    for pair in pairs:
        name, separator, value = pair.partition("=")
        if not separator or not name:
            raise SystemExit(f"error: --param expects NAME=VALUE, got {pair!r}")
        params[name.lstrip("$")] = _parse_param_value(value)
    return params


def _budget_exceeded_note(exceeded: BudgetExceeded) -> None:
    print(
        f"# BUDGET EXCEEDED ({exceeded.reason}) in {exceeded.stopped_at or '?'}: "
        f"visited {exceeded.paths_visited} paths, reached depth "
        f"{exceeded.depth_reached} before the kill",
        file=sys.stderr,
    )


def _command_query(args: argparse.Namespace) -> int:
    db = _open_database(
        args,
        optimize=not args.no_optimize,
        default_max_length=args.max_length,
        executor=args.executor,
    )
    params = _parse_params(args.param)
    try:
        with db.session(
            timeout=args.timeout,
            max_visited=args.max_visited,
            max_length=args.max_length,
            limit=args.limit,
        ) as session:
            if args.format == "jsonl":
                # Stream one binding row per line straight off the cursor: under
                # the pipeline executor nothing is materialized beyond the rows
                # printed, so huge results flow in bounded memory.
                cursor = session.execute(args.text, params)
                try:
                    for row in cursor.bindings():
                        print(json.dumps(row.to_dict(), sort_keys=True))
                except BudgetExceeded as exceeded:
                    _budget_exceeded_note(exceeded)
                    return 2
                return 0
            try:
                cursor = session.execute(args.text, params)
                paths = cursor.fetchall()
            except BudgetExceeded as exceeded:
                _budget_exceeded_note(exceeded)
                return 2
            count = cursor.rows_returned
            print(
                f"# {count} paths  ({cursor.elapsed_seconds * 1e3:.2f} ms)"
                f"  [{cursor.executor} executor]"
            )
            if args.phases:
                timings = ", ".join(
                    f"{phase} {seconds * 1e3:.2f} ms"
                    for phase, seconds in cursor.phase_seconds.items()
                )
                print(f"# phases: {timings}")
            if cursor.applied_rules:
                print(f"# optimizer rewrites: {', '.join(cursor.applied_rules)}")
            for path in sorted(paths, key=lambda path: (path.len(), path.interleaved())):
                print(path)
            if cursor.truncated:
                if cursor.total_paths is not None:
                    print(f"# ... and {cursor.total_paths - count} more")
                else:
                    print(f"# ... stopped after {count} paths (limit pushed into the pipeline)")
        return 0
    finally:
        db.close()


def _read_batch(args: argparse.Namespace) -> list[str]:
    if args.batch_file:
        lines = FilePath(args.batch_file).read_text(encoding="utf-8").splitlines()
    else:
        lines = sys.stdin.read().splitlines()
    queries = []
    for line in lines:
        text = line.split("#", 1)[0].strip()
        if text:
            queries.append(text)
    return queries


def _parse_listen(listen: str) -> tuple[str, int]:
    host, separator, port = listen.rpartition(":")
    if not separator or not host:
        raise SystemExit(f"error: --listen expects HOST:PORT, got {listen!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"error: --listen port must be an integer, got {port!r}") from None


def _command_listen(args: argparse.Namespace) -> int:
    from repro.server import ReproServer

    host, port = _parse_listen(args.listen)
    with _open_database(
        args,
        optimize=not args.no_optimize,
        default_max_length=args.max_length,
        executor=args.executor,
        plan_cache_size=args.plan_cache_size,
        workers=args.workers,
        execution_mode=args.execution_mode,
    ) as db:
        # Materialize the service now (with the serve-specific knobs) so the
        # first query over the wire does not pay pool construction.
        db.service(
            workers=args.workers,
            execution_mode=args.execution_mode,
            result_cache_size=args.result_cache_size,
            default_deadline=args.deadline,
            default_max_visited=args.max_visited,
        )
        server = ReproServer(
            db,
            host=host,
            port=port,
            fetch_size=args.fetch_size,
            max_inflight=args.max_inflight,
        )
        server.start()
        # The parseable contract line tests and scripts wait for.
        print(f"listening on {server.host}:{server.port}", flush=True)
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("# draining ...", file=sys.stderr)
        finally:
            server.stop(drain=True)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.listen is not None:
        return _command_listen(args)
    queries = _read_batch(args)
    if not queries:
        print("error: no queries to serve", file=sys.stderr)
        return 1
    started = time.perf_counter()
    with _open_database(
        args,
        optimize=not args.no_optimize,
        default_max_length=args.max_length,
        executor=args.executor,
        plan_cache_size=args.plan_cache_size,
    ) as db:
        service = db.service(
            workers=args.workers,
            execution_mode=args.execution_mode,
            result_cache_size=args.result_cache_size,
            default_deadline=args.deadline,
            default_max_visited=args.max_visited,
        )
        outcomes = service.run_batch(queries, max_length=args.max_length, limit=args.limit)
        stats = service.statistics()
    elapsed = time.perf_counter() - started

    timed_out = 0
    failed = 0
    for outcome in outcomes:
        if outcome.timed_out:
            where = outcome.stopped_at or "queue"
            progress = (
                f" after {outcome.paths_visited} paths"
                if outcome.paths_visited
                else ""
            )
            print(
                f"# TIMEOUT  ({outcome.budget_reason or 'deadline'} in {where}"
                f"{progress}, queued {outcome.queued_seconds * 1e3:.1f} ms)  "
                f"{outcome.text}"
            )
            timed_out += 1
        elif outcome.error is not None:
            print(f"# ERROR    {outcome.text}: {outcome.error}")
            failed += 1
        else:
            flags = "".join(
                flag
                for flag, on in (
                    ("R", outcome.result_cache_hit),
                    ("P", outcome.plan_cache_hit),
                )
                if on
            )
            cache_note = f" cache:{flags}" if flags else ""
            print(
                f"# {len(outcome)} paths  ({outcome.elapsed_seconds * 1e3:.2f} ms)"
                f"  [v{outcome.version}, {outcome.executor}{cache_note}]  {outcome.text}"
            )
            if args.print_paths:
                for line in outcome.path_strings():
                    print(line)
    throughput = len(outcomes) / elapsed if elapsed > 0 else float("inf")
    succeeded = len(outcomes) - timed_out - failed
    print(
        f"# served {len(outcomes)} queries in {elapsed * 1e3:.1f} ms "
        f"({throughput:.1f} q/s) with {args.workers} workers "
        f"({args.execution_mode})"
    )
    print(
        f"# summary: {succeeded} executed, {timed_out} timed out "
        f"({stats.timed_out_at_dequeue} at dequeue / {stats.timed_out_in_flight} "
        f"in flight), {failed} failed; max queue wait "
        f"{stats.queued_seconds_max * 1e3:.1f} ms"
    )
    print(
        f"# result cache: {stats.result_cache['hits']} hits / "
        f"{stats.result_cache['misses']} misses / {stats.result_cache['evictions']} evictions"
        f"  plan cache: {stats.plan_cache['hits']} hits / "
        f"{stats.plan_cache['misses']} misses / {stats.plan_cache['evictions']} evictions"
    )
    # Exit codes: 0 — every query produced a result; 1 — partial failures;
    # 2 — the whole batch timed out or failed (nothing succeeded).
    if succeeded == 0:
        return 2
    return 1 if (timed_out or failed) else 0


def _command_explain(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    db = connect(graph, default_max_length=args.max_length)
    explanation = db.explain(args.text, max_length=args.max_length)
    print(explanation.render())
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    if args.kind == "figure1":
        graph = figure1_graph()
    elif args.kind == "ldbc":
        graph = ldbc_like_graph(
            LDBCParameters(num_persons=args.persons, num_messages=args.messages, seed=args.seed)
        )
    elif args.kind == "random":
        graph = random_graph(args.nodes, args.edges, seed=args.seed)
    elif args.kind == "cycle":
        graph = cycle_graph(args.nodes)
    elif args.kind == "chain":
        graph = chain_graph(args.nodes)
    else:
        graph = grid_graph(args.rows, args.cols)
    save_json(graph, args.output)
    print(f"wrote {graph.num_nodes()} nodes / {graph.num_edges()} edges to {args.output}")
    return 0


def _parse_replay_config(spec: str) -> ReplayConfig:
    """Parse ``NAME=MODE:WORKERS[:INVALIDATION]`` into a :class:`ReplayConfig`."""
    name, separator, rest = spec.partition("=")
    if not separator or not name or not rest:
        raise SystemExit(
            f"error: --config expects NAME=MODE:WORKERS[:INVALIDATION], got {spec!r}"
        )
    pieces = rest.split(":")
    if len(pieces) not in (2, 3):
        raise SystemExit(
            f"error: --config expects NAME=MODE:WORKERS[:INVALIDATION], got {spec!r}"
        )
    mode = pieces[0]
    if mode not in EXECUTION_MODES:
        raise SystemExit(
            f"error: unknown execution mode {mode!r}; expected one of "
            f"{', '.join(EXECUTION_MODES)}"
        )
    try:
        workers = int(pieces[1])
    except ValueError:
        raise SystemExit(f"error: --config worker count must be an integer in {spec!r}") from None
    invalidation = pieces[2] if len(pieces) == 3 else "delta"
    return ReplayConfig(
        name=name, execution_mode=mode, workers=workers, invalidation=invalidation
    )


def _command_replay(args: argparse.Namespace) -> int:
    if args.replay_command == "generate":
        trace = generate_ldbc_trace(
            num_events=args.events,
            seed=args.seed,
            parameters=LDBCParameters(
                num_persons=args.persons,
                num_messages=args.messages,
                seed=args.graph_seed,
            ),
            mean_gap_seconds=args.mean_gap,
        )
        trace.save(args.output)
        print(
            f"wrote {len(trace.events)} events (seed {args.seed}, "
            f"{args.persons}p/{args.messages}m ldbc graph) to {args.output}"
        )
        return 0

    if args.replay_command == "record":
        queries = _read_batch(args)
        if not queries:
            print("error: no queries to record", file=sys.stderr)
            return 1
        spec: dict = {}
        if not getattr(args, "graph", None) and getattr(args, "dataset", None) == "ldbc":
            defaults = LDBCParameters()
            spec = {
                "kind": "ldbc",
                "num_persons": defaults.num_persons,
                "num_messages": defaults.num_messages,
                "num_forums": defaults.num_forums,
                "avg_knows_degree": defaults.avg_knows_degree,
                "avg_likes_per_person": defaults.avg_likes_per_person,
                "knows_reciprocity": defaults.knows_reciprocity,
                "seed": defaults.seed,
            }
        recorder = TraceRecorder(FilePath(args.output).stem, graph_spec=spec)
        db = _open_database(args, default_max_length=args.max_length)
        try:
            with db.session(limit=args.limit, max_length=args.max_length) as session:
                recording = recorder.wrap(session)
                for text in queries:
                    cursor = recording.execute(text, limit=args.limit)
                    cursor.fetchall()
                    cursor.close()
        finally:
            db.close()
        recorder.trace.save(args.output)
        note = "" if spec else " (no graph spec recorded: pass --graph at run time)"
        print(f"recorded {len(recorder.trace.events)} events to {args.output}{note}")
        return 0

    # replay run
    trace = Trace.load(args.trace)
    configs = [
        _parse_replay_config(spec)
        for spec in (args.config or ["threads=threads:2", "serial=threads:0"])
    ]
    if len({config.name for config in configs}) != len(configs):
        raise SystemExit("error: --config names must be unique")
    if args.honor_pacing:
        configs = [
            ReplayConfig(
                name=config.name,
                execution_mode=config.execution_mode,
                workers=config.workers,
                invalidation=config.invalidation,
                honor_pacing=True,
            )
            for config in configs
        ]
    if args.graph:
        path = FilePath(args.graph)
        graph = load_json(path) if path.suffix == ".json" else load_csv(path)
    else:
        graph = build_trace_graph(trace)
    report = run_replay(trace, configs, json_path=args.json, graph=graph)
    for entry in report["entries"]:
        print(
            f"# {entry['config']:12s} {entry['execution_mode']}:{entry['workers']}"
            f" ({entry['invalidation']})  {entry['throughput_qps']:8.1f} q/s"
            f"  p50 {entry['latency_p50_ms']:7.2f} ms"
            f"  p95 {entry['latency_p95_ms']:7.2f} ms"
            f"  p99 {entry['latency_p99_ms']:7.2f} ms"
            f"  failures {entry['failures']}"
        )
    total_mismatches = 0
    for name, mismatches in report["diffs"].items():
        for mismatch in mismatches:
            total_mismatches += 1
            print(
                f"# DIFF [{report['baseline']} vs {name}] event {mismatch['index']}: "
                f"{mismatch['text']}"
            )
    if total_mismatches:
        print(
            f"# RESULT MISMATCH: {total_mismatches} event(s) diverged from "
            f"baseline {report['baseline']!r}",
            file=sys.stderr,
        )
        return 2
    print(
        f"# replayed {len(trace.events)} events under {len(configs)} configuration(s): "
        "results byte-identical"
    )
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    stats = compute_statistics(graph)
    print(f"graph: {graph.name}")
    print(f"nodes: {stats.num_nodes}")
    print(f"edges: {stats.num_edges}")
    print(f"node labels: {dict(sorted(stats.node_label_counts.items()))}")
    print(f"edge labels: {dict(sorted(stats.edge_label_counts.items()))}")
    print(f"max out-degree: {stats.max_out_degree}")
    print(f"max in-degree: {stats.max_in_degree}")
    print(f"avg out-degree: {stats.avg_out_degree:.2f}")
    print(f"has directed cycle: {stats.has_cycle}")
    return 0


def _command_wal(args: argparse.Namespace) -> int:
    directory = FilePath(args.path)
    if args.wal_command == "inspect":
        snapshot_path = directory / DurableStore.SNAPSHOT_NAME
        wal_path = directory / DurableStore.WAL_NAME
        print(f"directory: {directory}")
        if snapshot_path.exists():
            graph = load_json(snapshot_path)
            print(
                f"snapshot: version {graph.version}, "
                f"{graph.num_nodes()} nodes / {graph.num_edges()} edges"
            )
            recoverable = graph.version
        else:
            print("snapshot: absent (fresh directory)")
            recoverable = 0
        if wal_path.exists():
            scan = read_wal(wal_path)
            versions = scan.versions
            span = f", versions {versions[0]}..{versions[1]}" if versions else ""
            print(
                f"wal: {len(scan.records)} records{span}, "
                f"{scan.valid_bytes} valid bytes, torn tail: "
                f"{'yes (dropped on recovery)' if scan.torn_tail else 'no'}"
            )
            ops: dict[str, int] = {}
            for op in scan.records:
                ops[op["op"]] = ops.get(op["op"], 0) + 1
            if ops:
                print("ops: " + "  ".join(f"{name}={count}" for name, count in sorted(ops.items())))
                recoverable = max(recoverable, max(op["v"] for op in scan.records))
        else:
            print("wal: absent")
        print(f"recoverable version: {recoverable}")
        return 0
    # compact: recover, fold the log into the snapshot, report.
    with DurableStore(directory, fsync=args.fsync) as store:
        replayed = store.replayed_records
        version = store.rotate()
    print(
        f"compacted {directory}: replayed {replayed} records, "
        f"snapshot now at version {version}, wal empty"
    )
    return 0


_COMMANDS = {
    "query": _command_query,
    "serve": _command_serve,
    "replay": _command_replay,
    "explain": _command_explain,
    "generate": _command_generate,
    "stats": _command_stats,
    "wal": _command_wal,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except PathAlgebraError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # A downstream consumer (head, jq) closed the pipe mid-stream —
        # normal for --format jsonl.  Point stdout at devnull so the
        # interpreter's shutdown flush cannot raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
