"""Restrictor semantics and the recursive operator ϕ (paper Sections 4 and 5).

The recursive operator ``ϕ(S)`` computes the closure of a set of paths under
path join (Definition 4.1):

    ϕ0(S) = S
    ϕi(S) = (ϕi-1(S) ⋈ S) ∪ ϕi-1(S)

until a fix point is reached.  On cyclic inputs the Walk variant never halts,
so GQL and SQL/PGQ attach a *restrictor* to the recursion.  This module
implements the five variants of the paper:

* :data:`Restrictor.WALK`     — all paths, requires a length bound on cyclic inputs;
* :data:`Restrictor.TRAIL`    — no repeated edges;
* :data:`Restrictor.ACYCLIC`  — no repeated nodes;
* :data:`Restrictor.SIMPLE`   — no repeated nodes except first == last;
* :data:`Restrictor.SHORTEST` — only minimum-length paths per endpoint pair.

Two evaluation strategies are provided:

* :func:`recursive_closure` — the production strategy, which prunes paths
  violating the restrictor *during* the fix point so that Trail / Acyclic /
  Simple / Shortest terminate on any graph;
* :func:`recursive_closure_postfilter` — the reference strategy that first
  enumerates bounded walks and then filters, used by the ablation benchmark
  (DESIGN.md, design decision 1) and by property tests as an oracle.
"""

from __future__ import annotations

import heapq
from enum import Enum
from itertools import count
from typing import Callable

from repro.errors import NonTerminatingQueryError
from repro.paths.path import Path
from repro.paths.pathset import PathSet
from repro.paths.predicates import is_acyclic, is_simple, is_trail

__all__ = [
    "Restrictor",
    "recursive_closure",
    "recursive_closure_postfilter",
    "shortest_paths_per_pair",
    "filter_by_restrictor",
]


class Restrictor(str, Enum):
    """The restrictors of Table 2 (plus SHORTEST, which the algebra adds as ϕShortest)."""

    WALK = "WALK"
    TRAIL = "TRAIL"
    ACYCLIC = "ACYCLIC"
    SIMPLE = "SIMPLE"
    SHORTEST = "SHORTEST"

    @classmethod
    def from_string(cls, text: str) -> "Restrictor":
        """Parse a restrictor keyword (case-insensitive)."""
        try:
            return cls(text.upper())
        except ValueError:
            raise ValueError(f"unknown restrictor: {text!r}") from None


_PREDICATES: dict[Restrictor, Callable[[Path], bool]] = {
    Restrictor.TRAIL: is_trail,
    Restrictor.ACYCLIC: is_acyclic,
    Restrictor.SIMPLE: is_simple,
}


def filter_by_restrictor(paths: PathSet, restrictor: Restrictor) -> PathSet:
    """Filter an already-computed path set by the restrictor's path-level predicate.

    For WALK this is the identity; for SHORTEST it keeps, per endpoint pair,
    only the minimum-length paths.
    """
    if restrictor is Restrictor.WALK:
        return PathSet(paths)
    if restrictor is Restrictor.SHORTEST:
        return shortest_paths_per_pair(paths)
    predicate = _PREDICATES[restrictor]
    return paths.filter(predicate)


def shortest_paths_per_pair(paths: PathSet) -> PathSet:
    """Keep, for every ``(First(p), Last(p))`` pair, only the minimum-length paths."""
    best: dict[tuple[str, str], int] = {}
    for path in paths:
        key = path.endpoints()
        length = path.len()
        if key not in best or length < best[key]:
            best[key] = length
    return paths.filter(lambda path: path.len() == best[path.endpoints()])


def recursive_closure(
    base: PathSet,
    restrictor: Restrictor = Restrictor.WALK,
    max_length: int | None = None,
) -> PathSet:
    """Evaluate ``ϕ_restrictor(base)`` (Definition 4.1 specialized per Section 4).

    Args:
        base: The input set of paths ``S`` (typically a filtered ``Edges(G)``).
        restrictor: Which ϕ variant to evaluate.
        max_length: Optional bound on the length of produced paths.  Mandatory
            for WALK over inputs whose closure is infinite; ignored by
            SHORTEST (which always terminates).

    Raises:
        NonTerminatingQueryError: for WALK without ``max_length`` when the
            closure provably does not terminate (a generated path exceeded
            the total number of distinct edges in the base, which implies a
            reachable cycle and therefore infinitely many walks).
    """
    if restrictor is Restrictor.SHORTEST:
        return _closure_shortest(base, max_length)
    if restrictor is Restrictor.WALK:
        return _closure_walk(base, max_length)
    predicate = _PREDICATES[restrictor]
    return _closure_pruned(base, predicate, max_length)


def recursive_closure_postfilter(
    base: PathSet,
    restrictor: Restrictor,
    max_length: int,
) -> PathSet:
    """Reference implementation: enumerate bounded walks, then filter (ablation baseline).

    Unlike :func:`recursive_closure`, non-conforming intermediate paths are
    kept and extended, so the cost is the full walk-closure cost regardless of
    the restrictor.  Results are identical to the pruning strategy whenever
    ``max_length`` is large enough to cover every conforming path.
    """
    walks = _closure_walk(base, max_length)
    return filter_by_restrictor(walks, restrictor)


# ----------------------------------------------------------------------
# Walk closure
# ----------------------------------------------------------------------
def _closure_walk(base: PathSet, max_length: int | None) -> PathSet:
    """Fix point of Definition 4.1 with an optional length bound.

    Without a bound, a sound non-termination detector is used: if any produced
    path becomes longer than the total number of distinct edges occurring in
    ``base``, some edge repeats, hence the base contains a reachable cycle and
    the walk closure is infinite.
    """
    distinct_edges = {edge_id for path in base for edge_id in path.edge_ids}
    termination_bound = len(distinct_edges)

    result = PathSet(base)
    frontier = list(base)
    while frontier:
        produced: list[Path] = []
        joined = PathSet(frontier).join(base)
        for path in joined:
            if max_length is not None and path.len() > max_length:
                continue
            if max_length is None and path.len() > termination_bound:
                raise NonTerminatingQueryError(
                    "ϕWalk does not terminate on this input (cycle detected); "
                    "provide max_length or use a restricted ϕ variant"
                )
            if result.add(path):
                produced.append(path)
        frontier = produced
    return result


# ----------------------------------------------------------------------
# Pruned closures (Trail / Acyclic / Simple)
# ----------------------------------------------------------------------
def _closure_pruned(
    base: PathSet,
    predicate: Callable[[Path], bool],
    max_length: int | None,
) -> PathSet:
    """Fix point that discards non-conforming paths as soon as they appear.

    Pruning is complete for Trail, Acyclic and Simple because removing the
    last base segment from a conforming path yields a conforming path: the
    prefix of a trail is a trail, the prefix of an acyclic path is acyclic,
    and the prefix of a simple path is acyclic (hence simple).
    """
    conforming_base = [path for path in base if predicate(path)]
    result = PathSet(conforming_base)
    frontier = list(conforming_base)
    while frontier:
        produced: list[Path] = []
        joined = PathSet(frontier).join(base)
        for path in joined:
            if max_length is not None and path.len() > max_length:
                continue
            if not predicate(path):
                continue
            if result.add(path):
                produced.append(path)
        frontier = produced
    return result


# ----------------------------------------------------------------------
# Shortest closure
# ----------------------------------------------------------------------
def _closure_shortest(base: PathSet, max_length: int | None) -> PathSet:
    """All minimum-length closure paths per endpoint pair (ϕShortest).

    The base paths are treated as weighted edges of a *derived graph* (weight
    = path length); a Dijkstra-style expansion ordered by total length
    enumerates every composition whose length equals the distance between its
    endpoints.  Compositions strictly longer than the known distance of their
    endpoints can never be prefixes of new shortest compositions (a shorter
    prefix always exists in the closure), so they are discarded, which
    guarantees termination even on cyclic inputs.
    """
    best: dict[tuple[str, str], int] = {}
    results = PathSet()
    tie_breaker = count()

    heap: list[tuple[int, int, Path]] = []
    for path in base:
        if max_length is not None and path.len() > max_length:
            continue
        heapq.heappush(heap, (path.len(), next(tie_breaker), path))

    # Index the base by first node for efficient extension.
    base_by_first: dict[str, list[Path]] = {}
    for path in base:
        base_by_first.setdefault(path.first(), []).append(path)

    seen: set[Path] = set()
    while heap:
        length, _, path = heapq.heappop(heap)
        if path in seen:
            continue
        seen.add(path)
        key = path.endpoints()
        known = best.get(key)
        if known is None:
            best[key] = length
        elif length > known:
            continue
        results.add(path)
        for extension in base_by_first.get(path.last(), ()):
            new_path = path.concat(extension)
            new_length = new_path.len()
            if max_length is not None and new_length > max_length:
                continue
            new_key = new_path.endpoints()
            known_new = best.get(new_key)
            if known_new is not None and new_length > known_new:
                continue
            if new_path not in seen:
                heapq.heappush(heap, (new_length, next(tie_breaker), new_path))
    return results
