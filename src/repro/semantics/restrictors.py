"""Restrictor semantics and the recursive operator ϕ (paper Sections 4 and 5).

The recursive operator ``ϕ(S)`` computes the closure of a set of paths under
path join (Definition 4.1):

    ϕ0(S) = S
    ϕi(S) = (ϕi-1(S) ⋈ S) ∪ ϕi-1(S)

until a fix point is reached.  On cyclic inputs the Walk variant never halts,
so GQL and SQL/PGQ attach a *restrictor* to the recursion.  This module
implements the five variants of the paper:

* :data:`Restrictor.WALK`     — all paths, requires a length bound on cyclic inputs;
* :data:`Restrictor.TRAIL`    — no repeated edges;
* :data:`Restrictor.ACYCLIC`  — no repeated nodes;
* :data:`Restrictor.SIMPLE`   — no repeated nodes except first == last;
* :data:`Restrictor.SHORTEST` — only minimum-length paths per endpoint pair.

Three evaluation strategies are provided:

* :func:`recursive_closure` — the production strategy: an *incremental*
  fix point that builds the :class:`~repro.paths.join_index.JoinIndex` once,
  carries per-frontier-path visited-edge/node state so restrictor conformance
  of an extension is an O(1) membership probe on the appended segment, and
  never constructs (or hashes) a pruned candidate path;
* :func:`recursive_closure_baseline` — the pre-incremental strategy that
  re-indexes the base and re-scans every candidate end-to-end on each round;
  kept as the performance baseline for ``BENCH_closure.json`` and as an
  additional oracle;
* :func:`recursive_closure_postfilter` — the reference strategy that first
  enumerates bounded walks and then filters, used by the ablation benchmark
  (DESIGN.md, design decision 1) and by property tests as an oracle.

The execution model and the invariants that make incremental pruning complete
are documented in ``PERFORMANCE.md``.
"""

from __future__ import annotations

import heapq
from enum import Enum
from itertools import count
from typing import Callable, Iterator

from repro.errors import NonTerminatingQueryError
from repro.execution import QueryBudget
from repro.graph.compact import compact_core_of
from repro.paths.join_index import JoinIndex
from repro.paths.path import Path
from repro.paths.pathset import PathSet
from repro.paths.predicates import (
    extend_acyclic_state,
    extend_simple_state,
    extend_trail_state,
    is_acyclic,
    is_simple,
    is_trail,
)

__all__ = [
    "Restrictor",
    "recursive_closure",
    "iter_recursive_closure",
    "recursive_closure_baseline",
    "recursive_closure_postfilter",
    "shortest_paths_per_pair",
    "filter_by_restrictor",
]


class Restrictor(str, Enum):
    """The restrictors of Table 2 (plus SHORTEST, which the algebra adds as ϕShortest)."""

    WALK = "WALK"
    TRAIL = "TRAIL"
    ACYCLIC = "ACYCLIC"
    SIMPLE = "SIMPLE"
    SHORTEST = "SHORTEST"

    @classmethod
    def from_string(cls, text: str) -> "Restrictor":
        """Parse a restrictor keyword (case-insensitive)."""
        try:
            return cls(text.upper())
        except ValueError:
            raise ValueError(f"unknown restrictor: {text!r}") from None


_PREDICATES: dict[Restrictor, Callable[[Path], bool]] = {
    Restrictor.TRAIL: is_trail,
    Restrictor.ACYCLIC: is_acyclic,
    Restrictor.SIMPLE: is_simple,
}

#: Frontier chunk size of the budgeted closure loops (and charge batch of
#: the heap loops): small enough that a deadline is observed within
#: milliseconds, large enough that per-path accounting cost vanishes — the
#: innermost extension loops carry no budget code at all.  Derived from the
#: single granularity knob on :class:`QueryBudget`.
_BUDGET_BATCH = QueryBudget.CHARGE_BATCH


def _closure_label(restrictor: Restrictor) -> str:
    return f"ϕ{restrictor.value.capitalize()}"


def filter_by_restrictor(paths: PathSet, restrictor: Restrictor) -> PathSet:
    """Filter an already-computed path set by the restrictor's path-level predicate.

    For WALK this is the identity; for SHORTEST it keeps, per endpoint pair,
    only the minimum-length paths.
    """
    if restrictor is Restrictor.WALK:
        return PathSet.from_unique(paths)
    if restrictor is Restrictor.SHORTEST:
        return shortest_paths_per_pair(paths)
    predicate = _PREDICATES[restrictor]
    return paths.filter(predicate)


def shortest_paths_per_pair(paths: PathSet) -> PathSet:
    """Keep, for every ``(First(p), Last(p))`` pair, only the minimum-length paths.

    Endpoints and lengths are computed once per path in a single pass; the
    final selection runs over the cached annotations, preserving input order.
    """
    best: dict[tuple[str, str], int] = {}
    annotated: list[tuple[tuple[str, str], int, Path]] = []
    for path in paths:
        key = path.endpoints()
        length = path.len()
        annotated.append((key, length, path))
        known = best.get(key)
        if known is None or length < known:
            best[key] = length
    return PathSet.from_unique(
        path for key, length, path in annotated if length == best[key]
    )


def recursive_closure(
    base: PathSet,
    restrictor: Restrictor = Restrictor.WALK,
    max_length: int | None = None,
    join_index: JoinIndex | None = None,
    budget: QueryBudget | None = None,
) -> PathSet:
    """Evaluate ``ϕ_restrictor(base)`` (Definition 4.1 specialized per Section 4).

    Args:
        base: The input set of paths ``S`` (typically a filtered ``Edges(G)``).
        restrictor: Which ϕ variant to evaluate.
        max_length: Optional bound on the length of produced paths.  Mandatory
            for WALK over inputs whose closure is infinite; ignored by
            SHORTEST (which always terminates).
        join_index: Optional prebuilt :class:`JoinIndex` over ``base``.
            Callers that materialize the base anyway (the physical
            ``_RecursiveOp``, the logical evaluator) pass it in so the index
            is built exactly once per closure.
        budget: Optional cooperative cancellation token.  The fix-point loops
            consult the clock at every frontier-expansion boundary, and large
            frontiers are processed in ``_BUDGET_BATCH``-sized chunks with a
            check per chunk, so a deadline kills the closure within one check
            interval even mid-round.

    Raises:
        NonTerminatingQueryError: for WALK without ``max_length`` when the
            closure provably does not terminate (a generated path exceeded
            the total number of distinct edges in the base, which implies a
            reachable cycle and therefore infinitely many walks).
        BudgetExceeded: when ``budget`` is exhausted before the fix point.
    """
    if len(base):
        # Columnar fast path: when the query's graph view is backed by a
        # current CompactGraph core, run the closure on the int encoding
        # (see semantics/int_closure.py — byte-identical by construction,
        # falls through to the object strategies if the base won't encode).
        compact = compact_core_of(next(iter(base)).graph)
        if compact is not None:
            from repro.semantics.int_closure import int_recursive_closure

            result = int_recursive_closure(compact, base, restrictor, max_length, budget)
            if result is not None:
                return result
    if join_index is None:
        join_index = JoinIndex(base)
    if restrictor is Restrictor.SHORTEST:
        return _closure_shortest(base, max_length, join_index, budget)
    if restrictor is Restrictor.WALK:
        return _closure_walk(base, max_length, join_index, budget)
    return _closure_pruned(base, restrictor, max_length, join_index, budget)


def recursive_closure_postfilter(
    base: PathSet,
    restrictor: Restrictor,
    max_length: int,
    budget: QueryBudget | None = None,
) -> PathSet:
    """Reference implementation: enumerate bounded walks, then filter (ablation baseline).

    Unlike :func:`recursive_closure`, non-conforming intermediate paths are
    kept and extended, so the cost is the full walk-closure cost regardless of
    the restrictor.  Results are identical to the pruning strategy whenever
    ``max_length`` is large enough to cover every conforming path.
    """
    walks = _closure_walk(base, max_length, JoinIndex(base), budget)
    return filter_by_restrictor(walks, restrictor)


def iter_recursive_closure(
    base: PathSet,
    restrictor: Restrictor = Restrictor.WALK,
    max_length: int | None = None,
    join_index: JoinIndex | None = None,
    budget: QueryBudget | None = None,
) -> Iterator[Path]:
    """Lazily yield ``ϕ_restrictor(base)``: the base first, then each fix-point round.

    The streaming twin of :func:`recursive_closure`, used by the pull-based
    pipeline so a cursor that consumes only a handful of paths never pays for
    (or holds in memory) the rest of the closure: rounds are expanded one
    frontier entry at a time, and suspending the generator suspends the fix
    point with it.  Yielded paths are exactly the paths
    :func:`recursive_closure` returns, already deduplicated; only the order
    differs from no caller-visible order guarantee to "base, then round by
    round".

    SHORTEST is inherently blocking — a path is only known to be shortest
    once every competing round has been expanded — so it materializes through
    :func:`recursive_closure` and iterates the result.

    For WALK without ``max_length`` the non-termination guard of
    :func:`recursive_closure` applies lazily: the
    :class:`~repro.errors.NonTerminatingQueryError` is raised at the moment
    an over-long walk would be generated, so a consumer that stops earlier
    never sees it.
    """
    if len(base):
        # Columnar fast path (see recursive_closure): the int twin decides
        # encodability eagerly, so a None here is a clean object fallback.
        compact = compact_core_of(next(iter(base)).graph)
        if compact is not None:
            from repro.semantics.int_closure import int_iter_recursive_closure

            iterator = int_iter_recursive_closure(compact, base, restrictor, max_length, budget)
            if iterator is not None:
                yield from iterator
                return
    if join_index is None:
        join_index = JoinIndex(base)
    if restrictor is Restrictor.SHORTEST:
        yield from _closure_shortest(base, max_length, join_index, budget)
        return
    if restrictor is Restrictor.WALK:
        yield from _iter_closure_walk(base, max_length, join_index, budget)
        return
    yield from _iter_closure_pruned(base, restrictor, max_length, join_index, budget)


def _iter_closure_walk(
    base: PathSet,
    max_length: int | None,
    index: JoinIndex,
    budget: QueryBudget | None = None,
) -> Iterator[Path]:
    """Streaming variant of :func:`_closure_walk` (same set, round-by-round order).

    The budget is charged per produced path rather than per frontier chunk
    (a suspended generator holds no backlog, and streaming consumers are
    latency-bound, not throughput-bound), with one extra safeguard the
    production-rate accounting alone would miss: the clock is also consulted
    every ``_BUDGET_BATCH`` *consumed* frontier entries, so a round that
    scans an enormous frontier while producing almost nothing (most
    candidates rejected or already seen) still observes its deadline
    mid-round — the same granularity the blocking closures' chunked loops
    promise.
    """
    if not len(base):
        return
    distinct_edges = {edge_id for path in base for edge_id in path.edge_ids}
    termination_bound = len(distinct_edges)
    graph = next(iter(base)).graph
    bound = max_length if max_length is not None else termination_bound
    guard = max_length is None
    buckets = _annotate_extensions(index, lambda ext: ())
    unchecked = Path._unchecked
    bucket_of = buckets.get
    budgeted = budget is not None
    depth = 0
    scanned = 0

    seen: set[Path] = set(base)
    frontier: list[Path] = list(seen)
    yield from frontier
    while frontier:
        produced: list[Path] = []
        if budgeted:
            depth += 1
            budget.checkpoint("ϕWalk", depth=depth)
        for path in frontier:
            if budgeted:
                scanned += 1
                if scanned >= _BUDGET_BATCH:
                    scanned = 0
                    budget.checkpoint("ϕWalk")
            extensions = bucket_of(path.last())
            if not extensions:
                continue
            length = path.len()
            nodes = path.node_ids
            edges = path.edge_ids
            for ext_len, _, nodes_tail, ext_edges in extensions:
                if length + ext_len > bound:
                    if guard:
                        raise NonTerminatingQueryError(
                            "ϕWalk does not terminate on this input (cycle detected); "
                            "provide max_length or use a restricted ϕ variant"
                        )
                    continue
                joined = unchecked(graph, nodes + nodes_tail, edges + ext_edges)
                if joined not in seen:
                    seen.add(joined)
                    produced.append(joined)
                    if budgeted:
                        budget.charge(1, "ϕWalk")
                    yield joined
        frontier = produced


def _iter_closure_pruned(
    base: PathSet,
    restrictor: Restrictor,
    max_length: int | None,
    index: JoinIndex,
    budget: QueryBudget | None = None,
) -> Iterator[Path]:
    """Streaming variant of :func:`_closure_pruned` (Trail / Acyclic / Simple)."""
    predicate = _PREDICATES[restrictor]
    conforming_base = [path for path in base if predicate(path)]
    if not conforming_base:
        return

    trail = restrictor is Restrictor.TRAIL
    simple = restrictor is Restrictor.SIMPLE
    graph = conforming_base[0].graph
    bound = max_length if max_length is not None else float("inf")
    if trail:
        buckets = _annotate_extensions(index, lambda ext: ext.edge_ids)
        frontier = [(path, set(path.edge_ids)) for path in conforming_base]
    else:
        buckets = _annotate_extensions(index, lambda ext: ext.node_ids[1:])
        frontier = [(path, set(path.node_ids)) for path in conforming_base]

    unchecked = Path._unchecked
    bucket_of = buckets.get
    budgeted = budget is not None
    label = _closure_label(restrictor) if budgeted else ""
    depth = 0
    scanned = 0

    seen: set[Path] = set(conforming_base)
    yield from conforming_base
    while frontier:
        produced: list[tuple[Path, set[str]]] = []
        if budgeted:
            depth += 1
            budget.checkpoint(label, depth=depth)
        for path, visited in frontier:
            if budgeted:
                # Clock check per consumed frontier chunk, not only per
                # produced path: rejection-heavy rounds stay killable (see
                # _iter_closure_walk).
                scanned += 1
                if scanned >= _BUDGET_BATCH:
                    scanned = 0
                    budget.checkpoint(label)
            extensions = bucket_of(path.last())
            if not extensions:
                continue
            length = path.len()
            nodes = path.node_ids
            edges = path.edge_ids
            if simple:
                first = nodes[0]
                closed = length > 0 and first == nodes[-1]
            for ext_len, check_ids, nodes_tail, ext_edges in extensions:
                if length + ext_len > bound:
                    continue
                if trail:
                    extended = extend_trail_state(visited, check_ids)
                elif simple:
                    extended = extend_simple_state(visited, first, closed, check_ids)
                else:
                    extended = extend_acyclic_state(visited, check_ids)
                if extended is None:
                    continue
                joined = unchecked(graph, nodes + nodes_tail, edges + ext_edges)
                if joined not in seen:
                    seen.add(joined)
                    produced.append((joined, extended))
                    if budgeted:
                        budget.charge(1, label)
                    yield joined
        frontier = produced


# ----------------------------------------------------------------------
# Walk closure
# ----------------------------------------------------------------------
def _closure_walk(
    base: PathSet,
    max_length: int | None,
    index: JoinIndex,
    budget: QueryBudget | None = None,
) -> PathSet:
    """Fix point of Definition 4.1 with an optional length bound.

    Without a bound, a sound non-termination detector is used: if any produced
    path becomes longer than the total number of distinct edges occurring in
    ``base``, some edge repeats, hence the base contains a reachable cycle and
    the walk closure is infinite.

    The length bound is checked *before* the candidate path is constructed, so
    out-of-bound extensions cost two integer additions and nothing else.
    """
    distinct_edges = {edge_id for path in base for edge_id in path.edge_ids}
    termination_bound = len(distinct_edges)

    if not len(base):
        return PathSet.from_unique(base)
    graph = next(iter(base)).graph
    bound = max_length if max_length is not None else termination_bound
    guard = max_length is None
    buckets = _annotate_extensions(index, lambda ext: ())
    unchecked = Path._unchecked
    bucket_of = buckets.get
    budgeted = budget is not None
    batch = _BUDGET_BATCH
    depth = 0

    # Accumulate into a plain list + set: Path hashes are cached, so handing
    # the list to from_unique at the end costs nothing extra.
    result_paths: list[Path] = list(base)
    seen: set[Path] = set(result_paths)
    frontier: list[Path] = list(result_paths)
    while frontier:
        produced: list[Path] = []
        # Budget checks happen at chunk boundaries only, so the innermost
        # loop carries zero budget code: a big frontier is processed in
        # _BUDGET_BATCH-sized chunks (one reference-slice alive at a time)
        # and the clock is read after each one, bounding unchecked work by
        # one chunk's extension scans.
        if budgeted:
            depth += 1
            budget.checkpoint("ϕWalk", depth=depth)
            split = len(frontier) > batch
        else:
            split = False
        charged = 0
        for start in range(0, len(frontier), batch) if split else (0,):
            chunk = frontier[start : start + batch] if split else frontier
            for path in chunk:
                extensions = bucket_of(path.last())
                if not extensions:
                    continue
                length = path.len()
                nodes = path.node_ids
                edges = path.edge_ids
                for ext_len, _, nodes_tail, ext_edges in extensions:
                    if length + ext_len > bound:
                        if guard:
                            raise NonTerminatingQueryError(
                                "ϕWalk does not terminate on this input (cycle detected); "
                                "provide max_length or use a restricted ϕ variant"
                            )
                        continue
                    joined = unchecked(graph, nodes + nodes_tail, edges + ext_edges)
                    if joined not in seen:
                        seen.add(joined)
                        result_paths.append(joined)
                        produced.append(joined)
            if budgeted:
                if len(produced) > charged:
                    budget.charge(len(produced) - charged, "ϕWalk")
                    charged = len(produced)
                budget.checkpoint("ϕWalk")
        frontier = produced
    return PathSet.from_unique(result_paths)


# ----------------------------------------------------------------------
# Pruned closures (Trail / Acyclic / Simple)
# ----------------------------------------------------------------------
def _annotate_extensions(
    index: JoinIndex,
    check_ids_of: Callable[[Path], tuple[str, ...]],
) -> dict[str, list[tuple[int, tuple[str, ...], tuple[str, ...], tuple[str, ...]]]]:
    """Precompute, per first node, the per-extension data the hot loop needs.

    Each entry is ``(length, check_ids, appended_nodes, appended_edges)``:
    the identifiers probed by the incremental restrictor check and the tuples
    concatenated onto an accepted frontier path.  Derived from the shared
    :class:`JoinIndex` once per closure so the fix-point rounds never re-slice
    an extension.
    """
    buckets: dict[str, list[tuple[int, tuple[str, ...], tuple[str, ...], tuple[str, ...]]]] = {}
    for node_id in index.first_nodes():
        buckets[node_id] = [
            (ext.len(), check_ids_of(ext), ext.node_ids[1:], ext.edge_ids)
            for ext in index.extensions(node_id)
        ]
    return buckets


def _closure_pruned(
    base: PathSet,
    restrictor: Restrictor,
    max_length: int | None,
    index: JoinIndex,
    budget: QueryBudget | None = None,
) -> PathSet:
    """Fix point that discards non-conforming paths as soon as they appear.

    Pruning is complete for Trail, Acyclic and Simple because removing the
    last base segment from a conforming path yields a conforming path: the
    prefix of a trail is a trail, the prefix of an acyclic path is acyclic,
    and the prefix of a simple path is acyclic (hence simple).

    Each frontier entry carries the set of visited edges (Trail) or nodes
    (Acyclic / Simple), so conformance of an extension is decided by O(1)
    membership probes on the appended segment — see the ``extend_*_state``
    checkers in :mod:`repro.paths.predicates` — and rejected candidates are
    never constructed, hashed, or re-scanned.  The path-level predicates
    remain as oracles for the property tests.
    """
    predicate = _PREDICATES[restrictor]
    conforming_base = [path for path in base if predicate(path)]
    if not conforming_base:
        return PathSet.from_unique(conforming_base)

    trail = restrictor is Restrictor.TRAIL
    simple = restrictor is Restrictor.SIMPLE
    graph = conforming_base[0].graph
    bound = max_length if max_length is not None else float("inf")
    if trail:
        buckets = _annotate_extensions(index, lambda ext: ext.edge_ids)
        frontier = [(path, set(path.edge_ids)) for path in conforming_base]
    else:
        buckets = _annotate_extensions(index, lambda ext: ext.node_ids[1:])
        frontier = [(path, set(path.node_ids)) for path in conforming_base]

    unchecked = Path._unchecked
    bucket_of = buckets.get
    extend_trail = extend_trail_state
    extend_acyclic = extend_acyclic_state
    extend_simple = extend_simple_state
    budgeted = budget is not None
    label = _closure_label(restrictor) if budgeted else ""
    batch = _BUDGET_BATCH
    depth = 0

    result_paths: list[Path] = list(conforming_base)
    seen: set[Path] = set(result_paths)
    while frontier:
        produced: list[tuple[Path, set[str]]] = []
        # Chunked budget checks (see _closure_walk): the innermost loop
        # carries zero budget code; the clock is read per frontier chunk.
        if budgeted:
            depth += 1
            budget.checkpoint(label, depth=depth)
            split = len(frontier) > batch
        else:
            split = False
        charged = 0
        for start in range(0, len(frontier), batch) if split else (0,):
            chunk = frontier[start : start + batch] if split else frontier
            for path, visited in chunk:
                extensions = bucket_of(path.last())
                if not extensions:
                    continue
                length = path.len()
                nodes = path.node_ids
                edges = path.edge_ids
                if simple:
                    first = nodes[0]
                    closed = length > 0 and first == nodes[-1]
                for ext_len, check_ids, nodes_tail, ext_edges in extensions:
                    if length + ext_len > bound:
                        continue
                    if trail:
                        extended = extend_trail(visited, check_ids)
                    elif simple:
                        extended = extend_simple(visited, first, closed, check_ids)
                    else:
                        extended = extend_acyclic(visited, check_ids)
                    if extended is None:
                        continue
                    joined = unchecked(graph, nodes + nodes_tail, edges + ext_edges)
                    if joined not in seen:
                        seen.add(joined)
                        result_paths.append(joined)
                        produced.append((joined, extended))
            if budgeted:
                if len(produced) > charged:
                    budget.charge(len(produced) - charged, label)
                    charged = len(produced)
                budget.checkpoint(label)
        frontier = produced
    return PathSet.from_unique(result_paths)


# ----------------------------------------------------------------------
# Shortest closure
# ----------------------------------------------------------------------
def _closure_shortest(
    base: PathSet,
    max_length: int | None,
    index: JoinIndex,
    budget: QueryBudget | None = None,
) -> PathSet:
    """All minimum-length closure paths per endpoint pair (ϕShortest).

    The base paths are treated as weighted edges of a *derived graph* (weight
    = path length); a Dijkstra-style expansion ordered by total length
    enumerates every composition whose length equals the distance between its
    endpoints.  Compositions strictly longer than the known distance of their
    endpoints can never be prefixes of new shortest compositions (a shorter
    prefix always exists in the closure), so they are discarded, which
    guarantees termination even on cyclic inputs.

    Base paths that are already dominated at insert time — another base path
    connects the same endpoint pair with strictly fewer edges — are skipped
    instead of pushed: the shorter path pops first, so the dominated one could
    only ever be discarded at pop time anyway.
    """
    best_base: dict[tuple[str, str], int] = {}
    for path in base:
        if max_length is not None and path.len() > max_length:
            continue
        key = path.endpoints()
        length = path.len()
        known = best_base.get(key)
        if known is None or length < known:
            best_base[key] = length

    best: dict[tuple[str, str], int] = {}
    results = PathSet()
    tie_breaker = count()

    heap: list[tuple[int, int, Path]] = []
    for path in base:
        length = path.len()
        if max_length is not None and length > max_length:
            continue
        if length > best_base[path.endpoints()]:
            continue
        heapq.heappush(heap, (length, next(tie_breaker), path))

    budgeted = budget is not None
    batch = _BUDGET_BATCH
    pending = 0
    seen: set[Path] = set()
    while heap:
        length, _, path = heapq.heappop(heap)
        if budgeted:
            pending += 1
            if pending >= batch:
                budget.note_depth(length)
                budget.charge(pending, "ϕShortest")
                pending = 0
        if path in seen:
            continue
        seen.add(path)
        key = path.endpoints()
        known = best.get(key)
        if known is None:
            best[key] = length
        elif length > known:
            continue
        results.add(path)
        last = path.last()
        for extension in index.extensions(last):
            new_length = length + extension.len()
            if max_length is not None and new_length > max_length:
                continue
            new_key = (path.first(), extension.last())
            known_new = best.get(new_key)
            if known_new is not None and new_length > known_new:
                continue
            new_path = path.concat(extension)
            if new_path not in seen:
                heapq.heappush(heap, (new_length, next(tie_breaker), new_path))
    if budgeted and pending:
        budget.charge(pending, "ϕShortest")
    return results


# ----------------------------------------------------------------------
# Pre-incremental baseline (perf oracle)
# ----------------------------------------------------------------------
def recursive_closure_baseline(
    base: PathSet,
    restrictor: Restrictor = Restrictor.WALK,
    max_length: int | None = None,
    budget: QueryBudget | None = None,
) -> PathSet:
    """The pre-incremental closure strategy, retained as a measurable baseline.

    On every fix-point round it wraps the frontier in a fresh :class:`PathSet`
    (re-hashing every path), re-indexes the unchanged base via
    :meth:`PathSet.join`, and classifies each candidate with a full
    end-to-end predicate scan.  Results are identical to
    :func:`recursive_closure` (asserted by the equivalence property tests);
    only the work per candidate differs.  ``BENCH_closure.json`` records the
    speedup of the incremental engine over this strategy.
    """
    if restrictor is Restrictor.SHORTEST:
        return _baseline_shortest(base, max_length, budget)
    predicate = _PREDICATES.get(restrictor)
    if predicate is None:
        conforming = list(base)
    else:
        conforming = [path for path in base if predicate(path)]

    distinct_edges = {edge_id for path in base for edge_id in path.edge_ids}
    termination_bound = len(distinct_edges)

    label = _closure_label(restrictor)
    depth = 0
    result = PathSet(conforming)
    frontier = list(conforming)
    while frontier:
        if budget is not None:
            depth += 1
            budget.checkpoint(label, depth=depth)
        produced: list[Path] = []
        joined = PathSet(frontier).join(base, budget=budget)
        for path in joined:
            if max_length is not None and path.len() > max_length:
                continue
            if predicate is None and max_length is None and path.len() > termination_bound:
                raise NonTerminatingQueryError(
                    "ϕWalk does not terminate on this input (cycle detected); "
                    "provide max_length or use a restricted ϕ variant"
                )
            if predicate is not None and not predicate(path):
                continue
            if result.add(path):
                produced.append(path)
        frontier = produced
    return result


def _baseline_shortest(
    base: PathSet, max_length: int | None, budget: QueryBudget | None = None
) -> PathSet:
    """The pre-incremental ϕShortest: no insert-time domination check."""
    best: dict[tuple[str, str], int] = {}
    results = PathSet()
    tie_breaker = count()

    heap: list[tuple[int, int, Path]] = []
    for path in base:
        if max_length is not None and path.len() > max_length:
            continue
        heapq.heappush(heap, (path.len(), next(tie_breaker), path))

    base_by_first: dict[str, list[Path]] = {}
    for path in base:
        base_by_first.setdefault(path.first(), []).append(path)

    budgeted = budget is not None
    pending = 0
    seen: set[Path] = set()
    while heap:
        length, _, path = heapq.heappop(heap)
        if budgeted:
            pending += 1
            if pending >= _BUDGET_BATCH:
                budget.note_depth(length)
                budget.charge(pending, "ϕShortest")
                pending = 0
        if path in seen:
            continue
        seen.add(path)
        key = path.endpoints()
        known = best.get(key)
        if known is None:
            best[key] = length
        elif length > known:
            continue
        results.add(path)
        for extension in base_by_first.get(path.last(), ()):
            new_path = path.concat(extension)
            new_length = new_path.len()
            if max_length is not None and new_length > max_length:
                continue
            new_key = new_path.endpoints()
            known_new = best.get(new_key)
            if known_new is not None and new_length > known_new:
                continue
            if new_path not in seen:
                heapq.heappush(heap, (new_length, next(tie_breaker), new_path))
    if budgeted and pending:
        budget.charge(pending, "ϕShortest")
    return results
