"""Translation of GQL selector/restrictor path queries into algebra plans (Section 6).

The paper shows that every GQL path query of the form

    selector? restrictor (x, regex, y)

translates into a path-algebra expression (Table 7): the restrictor becomes
the ϕ variant applied to the regular-expression plan, and the selector
becomes a group-by / order-by / projection pipeline on top.  This module
builds those expression trees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import Expression, GroupBy, OrderBy, Projection, Recursive
from repro.semantics.restrictors import Restrictor
from repro.semantics.selectors import Selector, SelectorKind, selector_plan

__all__ = ["PathQuerySpec", "translate_selector_restrictor", "translate_path_query"]


@dataclass(frozen=True)
class PathQuerySpec:
    """An abstract GQL path query: ``selector restrictor (x, regex, y)``.

    ``pattern_plan`` is the algebra expression for the regular path pattern
    (typically produced by :func:`repro.rpq.compile.compile_regex`), i.e. the
    ``RE`` placeholder of Table 7 *before* the ϕ wrapper is applied when the
    pattern is already recursive, or the base-path plan otherwise.
    """

    selector: Selector
    restrictor: Restrictor
    pattern_plan: Expression


def translate_selector_restrictor(
    selector: Selector,
    restrictor: Restrictor,
    pattern_plan: Expression,
    already_recursive: bool = True,
    max_length: int | None = None,
) -> Expression:
    """Build the Table 7 algebra expression for a selector/restrictor combination.

    Args:
        selector: The GQL selector (Table 1).
        restrictor: The GQL restrictor (Table 2) or SHORTEST.
        pattern_plan: The plan computing the matched paths.  When
            ``already_recursive`` is ``False`` the plan is wrapped in the
            restrictor's ϕ variant (the ``ϕ_restrictor(RE)`` of Table 7);
            otherwise the restrictor is expected to have been applied while
            compiling the regular expression (which is what
            :func:`repro.rpq.compile.compile_regex` does for ``+``/``*``).
        max_length: Optional bound forwarded to a ϕWalk wrapper.

    Returns:
        The full ``π(τ(γ(ϕ(RE))))`` expression.
    """
    plan = pattern_plan
    if not already_recursive:
        plan = Recursive(plan, restrictor, max_length)

    pipeline = selector_plan(selector)
    plan = GroupBy(plan, pipeline.group_key)
    if pipeline.order_key is not None:
        plan = OrderBy(plan, pipeline.order_key)
    return Projection(plan, pipeline.projection)


def translate_path_query(spec: PathQuerySpec, max_length: int | None = None) -> Expression:
    """Translate a :class:`PathQuerySpec` into its algebra plan."""
    return translate_selector_restrictor(
        spec.selector,
        spec.restrictor,
        spec.pattern_plan,
        already_recursive=False,
        max_length=max_length,
    )


def all_selector_restrictor_combinations() -> list[tuple[Selector, Restrictor]]:
    """Return the 28 selector × restrictor combinations GQL allows (Section 6).

    ``k``-parameterized selectors use ``k = 2`` as a representative value.
    """
    selectors = [
        Selector(SelectorKind.ALL),
        Selector(SelectorKind.ANY_SHORTEST),
        Selector(SelectorKind.ALL_SHORTEST),
        Selector(SelectorKind.ANY),
        Selector(SelectorKind.ANY_K, 2),
        Selector(SelectorKind.SHORTEST_K, 2),
        Selector(SelectorKind.SHORTEST_K_GROUP, 2),
    ]
    restrictors = [Restrictor.WALK, Restrictor.TRAIL, Restrictor.ACYCLIC, Restrictor.SIMPLE]
    return [(selector, restrictor) for selector in selectors for restrictor in restrictors]
