"""Selector semantics (paper Table 1 and Section 6).

GQL and SQL/PGQ selectors decide *which* of the matched paths are returned.
The paper shows (Table 7) that every selector can be expressed with the
extended algebra as a ``group-by -> order-by -> projection`` pipeline; this
module encodes that mapping and also offers a direct set-level application
(:func:`apply_selector`) used by tests as an independent oracle.

The seven selectors are:

======================  =====================================================
``ALL``                 every path in every group and partition
``ANY SHORTEST``        one shortest path per partition (non-deterministic)
``ALL SHORTEST``        all minimum-length paths per partition (deterministic)
``ANY``                 one arbitrary path per partition (non-deterministic)
``ANY k``               k arbitrary paths per partition
``SHORTEST k``          the k shortest paths per partition
``SHORTEST k GROUP``    all paths in the first k length-groups per partition
======================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.algebra.solution_space import (
    ALL,
    GroupByKey,
    OrderByKey,
    ProjectionSpec,
    group_by,
    order_by,
    project,
)
from repro.paths.pathset import PathSet

__all__ = ["SelectorKind", "Selector", "SelectorPlan", "selector_plan", "apply_selector"]


class SelectorKind(str, Enum):
    """The selector keywords of Table 1."""

    ALL = "ALL"
    ANY_SHORTEST = "ANY SHORTEST"
    ALL_SHORTEST = "ALL SHORTEST"
    ANY = "ANY"
    ANY_K = "ANY k"
    SHORTEST_K = "SHORTEST k"
    SHORTEST_K_GROUP = "SHORTEST k GROUP"

    @property
    def requires_k(self) -> bool:
        """Whether the selector takes a count parameter ``k``."""
        return self in (SelectorKind.ANY_K, SelectorKind.SHORTEST_K, SelectorKind.SHORTEST_K_GROUP)

    @property
    def is_deterministic(self) -> bool:
        """Whether Table 1 classifies the selector as deterministic."""
        return self in (SelectorKind.ALL, SelectorKind.ALL_SHORTEST, SelectorKind.SHORTEST_K_GROUP)


@dataclass(frozen=True)
class Selector:
    """A selector keyword together with its optional count parameter."""

    kind: SelectorKind
    k: int | None = None

    def __post_init__(self) -> None:
        if self.kind.requires_k:
            if self.k is None or self.k < 1:
                raise ValueError(f"selector {self.kind.value} requires a positive k")
        elif self.k is not None:
            raise ValueError(f"selector {self.kind.value} does not take a k parameter")

    @classmethod
    def parse(cls, text: str) -> "Selector":
        """Parse selector text such as ``"ANY SHORTEST"``, ``"SHORTEST 3 GROUP"`` or ``"ANY 2"``."""
        tokens = text.strip().upper().split()
        if not tokens:
            raise ValueError("empty selector")
        if tokens == ["ALL"]:
            return cls(SelectorKind.ALL)
        if tokens == ["ANY", "SHORTEST"]:
            return cls(SelectorKind.ANY_SHORTEST)
        if tokens == ["ALL", "SHORTEST"]:
            return cls(SelectorKind.ALL_SHORTEST)
        if tokens == ["ANY"]:
            return cls(SelectorKind.ANY)
        if len(tokens) == 2 and tokens[0] == "ANY" and tokens[1].isdigit():
            return cls(SelectorKind.ANY_K, int(tokens[1]))
        if len(tokens) == 2 and tokens[0] == "SHORTEST" and tokens[1].isdigit():
            return cls(SelectorKind.SHORTEST_K, int(tokens[1]))
        if (
            len(tokens) == 3
            and tokens[0] == "SHORTEST"
            and tokens[1].isdigit()
            and tokens[2] == "GROUP"
        ):
            return cls(SelectorKind.SHORTEST_K_GROUP, int(tokens[1]))
        raise ValueError(f"unknown selector: {text!r}")

    def __str__(self) -> str:
        if self.kind is SelectorKind.ANY_K:
            return f"ANY {self.k}"
        if self.kind is SelectorKind.SHORTEST_K:
            return f"SHORTEST {self.k}"
        if self.kind is SelectorKind.SHORTEST_K_GROUP:
            return f"SHORTEST {self.k} GROUP"
        return self.kind.value


@dataclass(frozen=True)
class SelectorPlan:
    """The extended-algebra pipeline a selector translates to (one row of Table 7)."""

    group_key: GroupByKey
    order_key: OrderByKey | None
    projection: ProjectionSpec


#: Table 7 of the paper, keyed by selector kind.  ``{k}`` components are
#: filled in by :func:`selector_plan`.
_TABLE7: dict[SelectorKind, tuple[GroupByKey, OrderByKey | None, tuple]] = {
    SelectorKind.ALL: (GroupByKey.NONE, None, (ALL, ALL, ALL)),
    SelectorKind.ANY_SHORTEST: (GroupByKey.ST, OrderByKey.A, (ALL, ALL, 1)),
    SelectorKind.ALL_SHORTEST: (GroupByKey.STL, OrderByKey.G, (ALL, 1, ALL)),
    SelectorKind.ANY: (GroupByKey.ST, None, (ALL, ALL, 1)),
    SelectorKind.ANY_K: (GroupByKey.ST, None, (ALL, ALL, "k")),
    SelectorKind.SHORTEST_K: (GroupByKey.ST, OrderByKey.A, (ALL, ALL, "k")),
    SelectorKind.SHORTEST_K_GROUP: (GroupByKey.STL, OrderByKey.G, (ALL, "k", ALL)),
}


def selector_plan(selector: Selector) -> SelectorPlan:
    """Return the group-by / order-by / projection pipeline for ``selector`` (Table 7)."""
    group_key, order_key, projection_template = _TABLE7[selector.kind]
    components = [selector.k if component == "k" else component for component in projection_template]
    return SelectorPlan(group_key, order_key, ProjectionSpec(*components))


def apply_selector(paths: PathSet, selector: Selector) -> PathSet:
    """Apply a selector directly to a set of paths.

    This is the semantic shortcut ``π(γ/τ pipeline)(paths)`` — it evaluates
    the Table 7 pipeline using the solution-space operators without building
    an expression tree, and is used by tests as an oracle for the plan-based
    translation.
    """
    plan = selector_plan(selector)
    space = group_by(paths, plan.group_key)
    if plan.order_key is not None:
        space = order_by(space, plan.order_key)
    return project(space, plan.projection)
