"""Int-encoded closure strategies over a frozen :class:`CompactGraph`.

These are the columnar twins of the fix-point strategies in
:mod:`repro.semantics.restrictors`.  When :func:`recursive_closure` (or its
streaming twin) detects a current compact core behind the query's graph view,
it encodes the base into interleaved int sequences (:mod:`repro.paths.intpath`)
and runs the closure here: every frontier scan, visited-set probe, candidate
hash and concat operates on small int tuples instead of string-tuple-backed
``Path`` objects.  Results decode back into ``Path`` objects only at the end.

**Byte-identical by construction.**  Each strategy below mirrors its object
twin decision for decision: the same frontier iteration order, the same
per-bucket extension order (:class:`~repro.paths.join_index.IntJoinIndex`
buckets in base order exactly like ``JoinIndex``), the same seen-set usage
(membership only — never iterated, so hash order cannot leak into results),
the same heap tie-breakers, and the same budget labels / charge / checkpoint
sites (``"ϕWalk"``, ``"ϕTrail"``, …, ``"ϕShortest"``), so even a
budget-killed closure reports identical partial progress.  The pruned
closures differ from the object twins in *representation* only: visited
sets are bitmasks over the dense indexes, so a conformance probe is one
``&`` and the extended state one ``|`` (see
``IntJoinIndex.mask_annotated``) — accepting and rejecting exactly the
candidates ``extend_trail_state`` / ``extend_acyclic_state`` /
``extend_simple_state`` would.  The frozen-vs-
mutable differential sweep in ``tests/test_compact.py`` holds this to the
letter over the 50-graph corpus.

The one deliberate asymmetry: ``_iter_closure_walk``'s object twin seeds its
frontier with ``list(set(base))`` — a hash-ordered list.  The int mirror
replays that exact object-set ordering (the ``Path`` hashes involved are the
same either way) before switching to int sequences, because an int-keyed set
would order differently and leak into the round-1 production order.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Iterator

from repro.errors import NonTerminatingQueryError
from repro.execution import QueryBudget
from repro.graph.compact import CompactGraph
from repro.paths.intpath import encode_base
from repro.paths.join_index import IntJoinIndex
from repro.paths.path import Path
from repro.paths.pathset import PathSet

__all__ = ["int_recursive_closure", "int_iter_recursive_closure"]

_BUDGET_BATCH = QueryBudget.CHARGE_BATCH

_NON_TERMINATING = (
    "ϕWalk does not terminate on this input (cycle detected); "
    "provide max_length or use a restricted ϕ variant"
)


# ----------------------------------------------------------------------
# Int-level restrictor predicates (same semantics as paths.predicates)
# ----------------------------------------------------------------------
def _seq_is_trail(seq: tuple[int, ...]) -> bool:
    edges = seq[1::2]
    return len(set(edges)) == len(edges)


def _seq_is_acyclic(seq: tuple[int, ...]) -> bool:
    nodes = seq[::2]
    return len(set(nodes)) == len(nodes)


def _seq_is_simple(seq: tuple[int, ...]) -> bool:
    nodes = seq[::2]
    if len(nodes) <= 1:
        return True
    interior = nodes[:-1]
    if len(set(interior)) != len(interior):
        return False
    return nodes[-1] not in nodes[1:-1]


_SEQ_PREDICATES = {
    "TRAIL": _seq_is_trail,
    "ACYCLIC": _seq_is_acyclic,
    "SIMPLE": _seq_is_simple,
}


def _decode_all(compact: CompactGraph, graph, seqs) -> PathSet:
    # Hot path: one result Path per surviving sequence.  ``map`` over the
    # bound ``__getitem__`` keeps the id translation in C; the genexpr
    # equivalent costs one frame per element and shows up at ~45 % of the
    # closure's total wall-clock on dense result sets.
    nget = compact._node_ids.__getitem__
    eget = compact._edge_ids.__getitem__
    unchecked = Path._unchecked
    return PathSet.from_unique(
        unchecked(graph, tuple(map(nget, seq[::2])), tuple(map(eget, seq[1::2])))
        for seq in seqs
    )


def _decode_one(compact: CompactGraph, graph, seq) -> Path:
    return Path._unchecked(
        graph,
        tuple(map(compact._node_ids.__getitem__, seq[::2])),
        tuple(map(compact._edge_ids.__getitem__, seq[1::2])),
    )


# ----------------------------------------------------------------------
# Entry points (called from recursive_closure / iter_recursive_closure)
# ----------------------------------------------------------------------
def int_recursive_closure(
    compact: CompactGraph,
    base: PathSet,
    restrictor,
    max_length: int | None,
    budget: QueryBudget | None,
) -> PathSet | None:
    """Int-encoded ``ϕ_restrictor(base)``; ``None`` if the base cannot be
    encoded against ``compact`` (the caller then runs the object strategy).

    ``base`` must be non-empty (the dispatcher guarantees it)."""
    seqs = encode_base(compact, base)
    if seqs is None:
        return None
    graph = next(iter(base)).graph
    name = restrictor.value
    if name == "SHORTEST":
        result = _int_shortest(seqs, max_length, budget)
    elif name == "WALK":
        result = _int_walk(seqs, max_length, budget)
    else:
        result = _int_pruned(seqs, name, max_length, budget)
    return _decode_all(compact, graph, result)


def int_iter_recursive_closure(
    compact: CompactGraph,
    base: PathSet,
    restrictor,
    max_length: int | None,
    budget: QueryBudget | None,
) -> Iterator[Path] | None:
    """Streaming twin of :func:`int_recursive_closure` (``None`` on encode
    failure, decided eagerly so the caller can fall back before iterating)."""
    seqs = encode_base(compact, base)
    if seqs is None:
        return None
    graph = next(iter(base)).graph
    name = restrictor.value
    if name == "SHORTEST":
        return _int_iter_shortest(compact, graph, seqs, max_length, budget)
    if name == "WALK":
        return _int_iter_walk(compact, graph, base, seqs, max_length, budget)
    return _int_iter_pruned(compact, graph, base, seqs, name, max_length, budget)


# ----------------------------------------------------------------------
# Walk closure (mirror of _closure_walk)
# ----------------------------------------------------------------------
def _int_walk(
    seqs: list[tuple[int, ...]],
    max_length: int | None,
    budget: QueryBudget | None,
) -> list[tuple[int, ...]]:
    distinct_edges = {e for seq in seqs for e in seq[1::2]}
    termination_bound = len(distinct_edges)

    bound = max_length if max_length is not None else termination_bound
    guard = max_length is None
    buckets = IntJoinIndex(seqs).annotated("none")
    bucket_of = buckets.get
    budgeted = budget is not None
    batch = _BUDGET_BATCH
    depth = 0

    result_seqs = list(seqs)
    seen = set(result_seqs)
    frontier = list(result_seqs)
    while frontier:
        produced: list[tuple[int, ...]] = []
        if budgeted:
            depth += 1
            budget.checkpoint("ϕWalk", depth=depth)
            split = len(frontier) > batch
        else:
            split = False
        charged = 0
        for start in range(0, len(frontier), batch) if split else (0,):
            chunk = frontier[start : start + batch] if split else frontier
            for seq in chunk:
                extensions = bucket_of(seq[-1])
                if not extensions:
                    continue
                length = len(seq) // 2
                for ext_len, _, tail in extensions:
                    if length + ext_len > bound:
                        if guard:
                            raise NonTerminatingQueryError(_NON_TERMINATING)
                        continue
                    joined = seq + tail
                    known = len(seen)
                    seen.add(joined)
                    if len(seen) != known:
                        result_seqs.append(joined)
                        produced.append(joined)
            if budgeted:
                if len(produced) > charged:
                    budget.charge(len(produced) - charged, "ϕWalk")
                    charged = len(produced)
                budget.checkpoint("ϕWalk")
        frontier = produced
    return result_seqs


# ----------------------------------------------------------------------
# Pruned closures (mirror of _closure_pruned)
# ----------------------------------------------------------------------
def _mask_of(ids) -> int:
    """Bitmask over dense int ids (bit ``i`` ⇔ id ``i``)."""
    mask = 0
    for index in ids:
        mask |= 1 << index
    return mask


def _int_pruned(
    seqs: list[tuple[int, ...]],
    name: str,
    max_length: int | None,
    budget: QueryBudget | None,
) -> list[tuple[int, ...]]:
    predicate = _SEQ_PREDICATES[name]
    conforming = [seq for seq in seqs if predicate(seq)]
    if not conforming:
        return conforming

    # Visited sets are bitmasks over the dense indexes (see
    # IntJoinIndex.mask_annotated): a rejected candidate costs one ``&``, an
    # accepted one a single ``|`` — no per-candidate set copy.  The
    # accept/reject decisions are exactly those of extend_trail_state /
    # extend_acyclic_state / extend_simple_state, so production order and
    # budget accounting stay byte-identical to the object closures.
    simple = name == "SIMPLE"
    bound = max_length if max_length is not None else float("inf")
    index = IntJoinIndex(seqs)
    if name == "TRAIL":
        buckets = index.mask_annotated("edges")
        frontier = [(seq, _mask_of(seq[1::2])) for seq in conforming]
    elif simple:
        buckets = index.mask_annotated("simple")
        frontier = [(seq, _mask_of(seq[::2])) for seq in conforming]
    else:
        buckets = index.mask_annotated("tail_nodes")
        frontier = [(seq, _mask_of(seq[::2])) for seq in conforming]

    bucket_of = buckets.get
    budgeted = budget is not None
    label = f"ϕ{name.capitalize()}" if budgeted else ""
    batch = _BUDGET_BATCH
    depth = 0

    result_seqs = list(conforming)
    seen = set(result_seqs)
    while frontier:
        produced: list[tuple[tuple[int, ...], int]] = []
        if budgeted:
            depth += 1
            budget.checkpoint(label, depth=depth)
            split = len(frontier) > batch
        else:
            split = False
        charged = 0
        for start in range(0, len(frontier), batch) if split else (0,):
            chunk = frontier[start : start + batch] if split else frontier
            for seq, visited in chunk:
                extensions = bucket_of(seq[-1])
                if not extensions:
                    continue
                length = len(seq) // 2
                if simple:
                    first = seq[0]
                    closed = length > 0 and first == seq[-1]
                    for ext_len, prefix_mask, distinct, last_bit, last_node, tail in extensions:
                        if length + ext_len > bound:
                            continue
                        if closed or not distinct or visited & prefix_mask:
                            continue
                        if last_node == first:
                            extended = visited | prefix_mask
                        else:
                            extended = visited | prefix_mask
                            if extended & last_bit:
                                continue
                            extended |= last_bit
                        joined = seq + tail
                        known = len(seen)
                        seen.add(joined)
                        if len(seen) != known:
                            result_seqs.append(joined)
                            produced.append((joined, extended))
                else:
                    for ext_len, ext_mask, distinct, tail in extensions:
                        if length + ext_len > bound:
                            continue
                        if not distinct or visited & ext_mask:
                            continue
                        joined = seq + tail
                        known = len(seen)
                        seen.add(joined)
                        if len(seen) != known:
                            result_seqs.append(joined)
                            produced.append((joined, visited | ext_mask))
            if budgeted:
                if len(produced) > charged:
                    budget.charge(len(produced) - charged, label)
                    charged = len(produced)
                budget.checkpoint(label)
        frontier = produced
    return result_seqs


# ----------------------------------------------------------------------
# Shortest closure (mirror of _closure_shortest)
# ----------------------------------------------------------------------
def _int_shortest(
    seqs: list[tuple[int, ...]],
    max_length: int | None,
    budget: QueryBudget | None,
) -> list[tuple[int, ...]]:
    best_base: dict[tuple[int, int], int] = {}
    for seq in seqs:
        length = len(seq) // 2
        if max_length is not None and length > max_length:
            continue
        key = (seq[0], seq[-1])
        known = best_base.get(key)
        if known is None or length < known:
            best_base[key] = length

    best: dict[tuple[int, int], int] = {}
    result_seqs: list[tuple[int, ...]] = []
    tie_breaker = count()

    heap: list[tuple[int, int, tuple[int, ...]]] = []
    for seq in seqs:
        length = len(seq) // 2
        if max_length is not None and length > max_length:
            continue
        if length > best_base[(seq[0], seq[-1])]:
            continue
        heapq.heappush(heap, (length, next(tie_breaker), seq))

    index = IntJoinIndex(seqs)
    extensions_of = index.extensions
    budgeted = budget is not None
    batch = _BUDGET_BATCH
    pending = 0
    seen: set[tuple[int, ...]] = set()
    while heap:
        length, _, seq = heapq.heappop(heap)
        if budgeted:
            pending += 1
            if pending >= batch:
                budget.note_depth(length)
                budget.charge(pending, "ϕShortest")
                pending = 0
        if seq in seen:
            continue
        seen.add(seq)
        key = (seq[0], seq[-1])
        known = best.get(key)
        if known is None:
            best[key] = length
        elif length > known:
            continue
        result_seqs.append(seq)
        for ext in extensions_of(seq[-1]):
            new_length = length + len(ext) // 2
            if max_length is not None and new_length > max_length:
                continue
            new_key = (seq[0], ext[-1])
            known_new = best.get(new_key)
            if known_new is not None and new_length > known_new:
                continue
            new_seq = seq + ext[1:]
            if new_seq not in seen:
                heapq.heappush(heap, (new_length, next(tie_breaker), new_seq))
    if budgeted and pending:
        budget.charge(pending, "ϕShortest")
    return result_seqs


# ----------------------------------------------------------------------
# Streaming variants (mirrors of _iter_closure_walk / _iter_closure_pruned)
# ----------------------------------------------------------------------
def _int_iter_shortest(
    compact: CompactGraph,
    graph,
    seqs: list[tuple[int, ...]],
    max_length: int | None,
    budget: QueryBudget | None,
) -> Iterator[Path]:
    # SHORTEST is inherently blocking (see iter_recursive_closure); the
    # generator defers the materialization to the first next(), like the
    # object twin's `yield from _closure_shortest(...)`.
    for seq in _int_shortest(seqs, max_length, budget):
        yield _decode_one(compact, graph, seq)


def _int_iter_walk(
    compact: CompactGraph,
    graph,
    base: PathSet,
    seqs: list[tuple[int, ...]],
    max_length: int | None,
    budget: QueryBudget | None,
) -> Iterator[Path]:
    distinct_edges = {e for seq in seqs for e in seq[1::2]}
    termination_bound = len(distinct_edges)
    bound = max_length if max_length is not None else termination_bound
    guard = max_length is None
    buckets = IntJoinIndex(seqs).annotated("none")
    bucket_of = buckets.get
    budgeted = budget is not None
    depth = 0
    scanned = 0

    # The object twin seeds with `list(set(base))` — replay that exact
    # hash-ordered bootstrap on the object paths, then encode in its order.
    node_index = compact._node_index
    edge_index = compact._edge_index
    initial = list(set(base))
    yield from initial
    frontier: list[tuple[int, ...]] = []
    for path in initial:
        flat = [0] * (2 * len(path._nodes) - 1)
        flat[::2] = [node_index[n] for n in path._nodes]
        flat[1::2] = [edge_index[e] for e in path._edges]
        frontier.append(tuple(flat))
    seen = set(frontier)

    while frontier:
        produced: list[tuple[int, ...]] = []
        if budgeted:
            depth += 1
            budget.checkpoint("ϕWalk", depth=depth)
        for seq in frontier:
            if budgeted:
                scanned += 1
                if scanned >= _BUDGET_BATCH:
                    scanned = 0
                    budget.checkpoint("ϕWalk")
            extensions = bucket_of(seq[-1])
            if not extensions:
                continue
            length = len(seq) // 2
            for ext_len, _, tail in extensions:
                if length + ext_len > bound:
                    if guard:
                        raise NonTerminatingQueryError(_NON_TERMINATING)
                    continue
                joined = seq + tail
                if joined not in seen:
                    seen.add(joined)
                    produced.append(joined)
                    if budgeted:
                        budget.charge(1, "ϕWalk")
                    yield _decode_one(compact, graph, joined)
        frontier = produced


def _int_iter_pruned(
    compact: CompactGraph,
    graph,
    base: PathSet,
    seqs: list[tuple[int, ...]],
    name: str,
    max_length: int | None,
    budget: QueryBudget | None,
) -> Iterator[Path]:
    predicate = _SEQ_PREDICATES[name]
    base_paths = list(base)
    conforming: list[tuple[int, ...]] = []
    conforming_paths: list[Path] = []
    for path, seq in zip(base_paths, seqs):
        if predicate(seq):
            conforming.append(seq)
            conforming_paths.append(path)
    if not conforming:
        return

    simple = name == "SIMPLE"
    bound = max_length if max_length is not None else float("inf")
    index = IntJoinIndex(seqs)
    if name == "TRAIL":
        buckets = index.mask_annotated("edges")
        frontier = [(seq, _mask_of(seq[1::2])) for seq in conforming]
    elif simple:
        buckets = index.mask_annotated("simple")
        frontier = [(seq, _mask_of(seq[::2])) for seq in conforming]
    else:
        buckets = index.mask_annotated("tail_nodes")
        frontier = [(seq, _mask_of(seq[::2])) for seq in conforming]

    bucket_of = buckets.get
    budgeted = budget is not None
    label = f"ϕ{name.capitalize()}" if budgeted else ""
    depth = 0
    scanned = 0

    seen = set(conforming)
    yield from conforming_paths
    while frontier:
        produced: list[tuple[tuple[int, ...], int]] = []
        if budgeted:
            depth += 1
            budget.checkpoint(label, depth=depth)
        for seq, visited in frontier:
            if budgeted:
                scanned += 1
                if scanned >= _BUDGET_BATCH:
                    scanned = 0
                    budget.checkpoint(label)
            extensions = bucket_of(seq[-1])
            if not extensions:
                continue
            length = len(seq) // 2
            if simple:
                first = seq[0]
                closed = length > 0 and first == seq[-1]
                for ext_len, prefix_mask, distinct, last_bit, last_node, tail in extensions:
                    if length + ext_len > bound:
                        continue
                    if closed or not distinct or visited & prefix_mask:
                        continue
                    if last_node == first:
                        extended = visited | prefix_mask
                    else:
                        extended = visited | prefix_mask
                        if extended & last_bit:
                            continue
                        extended |= last_bit
                    joined = seq + tail
                    if joined not in seen:
                        seen.add(joined)
                        produced.append((joined, extended))
                        if budgeted:
                            budget.charge(1, label)
                        yield _decode_one(compact, graph, joined)
            else:
                for ext_len, ext_mask, distinct, tail in extensions:
                    if length + ext_len > bound:
                        continue
                    if not distinct or visited & ext_mask:
                        continue
                    joined = seq + tail
                    if joined not in seen:
                        seen.add(joined)
                        produced.append((joined, visited | ext_mask))
                        if budgeted:
                            budget.charge(1, label)
                        yield _decode_one(compact, graph, joined)
        frontier = produced
