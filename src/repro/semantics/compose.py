"""Composition of path queries (paper Section 2.3).

GQL and SQL/PGQ allow *concatenating* two path queries into a sequence and
taking *unions* of answer sets:

    s r [ s1 r1 (x, regex1, y) ] · [ s2 r2 (z, regex2, w) ]

The inner queries are evaluated with their own selector/restrictor pair, the
answers are concatenated path-wise (when the first answer's last node matches
the second answer's first node), and the outer selector/restrictor pair is
applied to the concatenated set.  The paper's example: "all trails connecting
n1 and n2, then all shortest walks connecting n2 to n3, and require that the
entire concatenated path between n1 and n3 be a shortest trail".

This module implements that composition both at the *plan* level (producing
one algebra expression, so the composition itself stays inside the algebra)
and at the *set* level (used as an oracle in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import Expression, GroupBy, Join, OrderBy, Projection, Recursive, Union
from repro.paths.pathset import PathSet
from repro.semantics.restrictors import Restrictor, filter_by_restrictor
from repro.semantics.selectors import Selector, SelectorKind, apply_selector, selector_plan

__all__ = ["ComposedQuery", "QueryStep", "compose_concatenation", "compose_union", "evaluate_composition"]


@dataclass(frozen=True)
class QueryStep:
    """One inner path query: a selector, a restrictor, and a pattern plan.

    ``pattern_plan`` computes the candidate paths of this step *without* the
    restrictor applied (typically the compiled regular expression); the
    restrictor is attached here so the step can be reused under different
    semantics.
    """

    selector: Selector
    restrictor: Restrictor
    pattern_plan: Expression
    max_length: int | None = None

    def plan(self) -> Expression:
        """Return the algebra plan of this step alone (Table 7 pipeline)."""
        pipeline = selector_plan(self.selector)
        plan: Expression = Recursive(self.pattern_plan, self.restrictor, self.max_length)
        plan = GroupBy(plan, pipeline.group_key)
        if pipeline.order_key is not None:
            plan = OrderBy(plan, pipeline.order_key)
        return Projection(plan, pipeline.projection)


@dataclass(frozen=True)
class ComposedQuery:
    """An outer selector/restrictor applied to a combination of inner steps.

    ``combiner`` is ``"concat"`` (the ``·`` of Section 2.3, implemented with
    the path join) or ``"union"`` (set union of the answer sets).
    """

    outer_selector: Selector
    outer_restrictor: Restrictor
    steps: tuple[QueryStep, ...]
    combiner: str = "concat"

    def plan(self) -> Expression:
        """Return a single algebra expression for the whole composition.

        The inner steps compile to their own ``π(τ(γ(ϕ(...))))`` pipelines;
        the combiner becomes a chain of joins (concatenation) or unions; the
        outer restrictor is applied as a selection-free filter step via the
        outer selector's pipeline over the combined set.  Because every piece
        is an algebra operator, the composition itself is again a plan — the
        composability property the paper emphasizes.
        """
        if not self.steps:
            raise ValueError("a composed query needs at least one step")
        combined: Expression = self.steps[0].plan()
        for step in self.steps[1:]:
            if self.combiner == "concat":
                combined = Join(combined, step.plan())
            else:
                combined = Union(combined, step.plan())

        # The outer restrictor re-filters the combined paths; expressing it as
        # a ϕ would re-close the set under join, so it is applied as a
        # path-level filter during evaluation (see evaluate_composition) and
        # as the selector pipeline here.
        pipeline = selector_plan(self.outer_selector)
        plan: Expression = GroupBy(combined, pipeline.group_key)
        if pipeline.order_key is not None:
            plan = OrderBy(plan, pipeline.order_key)
        return Projection(plan, pipeline.projection)


def compose_concatenation(
    outer_selector: Selector,
    outer_restrictor: Restrictor,
    *steps: QueryStep,
) -> ComposedQuery:
    """Build the ``s r [step1] · [step2] · ...`` composition of Section 2.3."""
    return ComposedQuery(outer_selector, outer_restrictor, tuple(steps), combiner="concat")


def compose_union(
    outer_selector: Selector,
    outer_restrictor: Restrictor,
    *steps: QueryStep,
) -> ComposedQuery:
    """Build the union composition (usual set-union semantics, Section 2.3)."""
    return ComposedQuery(outer_selector, outer_restrictor, tuple(steps), combiner="union")


def evaluate_composition(query: ComposedQuery, graph, optimize_steps: bool = True) -> PathSet:
    """Evaluate a composed query over ``graph``.

    The inner steps are evaluated independently (each with its own selector
    and restrictor), combined by concatenation (path join) or union, filtered
    by the outer restrictor at the path level, and finally reduced by the
    outer selector.  Step plans are run through the optimizer by default so
    that ``ANY SHORTEST WALK`` steps terminate on cyclic graphs (the
    walk-to-shortest rewrite of Section 7.3).
    """
    from repro.algebra.evaluator import Evaluator  # local import to avoid a cycle
    from repro.optimizer.engine import Optimizer

    optimizer = Optimizer() if optimize_steps else None
    evaluator = Evaluator(graph)
    combined: PathSet | None = None
    for step in query.steps:
        plan = step.plan()
        if optimizer is not None:
            plan = optimizer.optimize(plan).optimized
        answer = evaluator.evaluate_paths(plan)
        if combined is None:
            combined = answer
        elif query.combiner == "concat":
            combined = combined.join(answer)
        else:
            combined = combined.union(answer)
    assert combined is not None

    restricted = filter_by_restrictor(combined, query.outer_restrictor)
    return apply_selector(restricted, query.outer_selector)


def paper_example_composition(
    first_pattern: Expression,
    second_pattern: Expression,
    max_length: int | None = None,
) -> ComposedQuery:
    """The Section 2.3 example: ``ALL TRAIL [...] · ANY SHORTEST WALK [...]`` as SHORTEST TRAIL.

    "we can ask for all trails connecting nodes n1 and n2, then all shortest
    walks connecting n2 to n3, and require that the entire concatenated path
    between n1 and n3 be a shortest trail."
    """
    return compose_concatenation(
        Selector(SelectorKind.ALL_SHORTEST),
        Restrictor.TRAIL,
        QueryStep(Selector(SelectorKind.ALL), Restrictor.TRAIL, first_pattern, max_length),
        QueryStep(Selector(SelectorKind.ANY_SHORTEST), Restrictor.WALK, second_pattern, max_length),
    )
