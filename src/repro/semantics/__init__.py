"""GQL / SQL-PGQ path modes: restrictors, selectors, and their algebra translation.

The :mod:`repro.semantics.translate` module (Table 7 translation) is not
re-exported here to keep the import graph acyclic — import it directly or use
the re-exports in the top-level :mod:`repro` package.
"""

from repro.semantics.restrictors import (
    Restrictor,
    filter_by_restrictor,
    recursive_closure,
    recursive_closure_baseline,
    recursive_closure_postfilter,
    shortest_paths_per_pair,
)
from repro.semantics.selectors import (
    Selector,
    SelectorKind,
    SelectorPlan,
    apply_selector,
    selector_plan,
)

__all__ = [
    "Restrictor",
    "recursive_closure",
    "recursive_closure_baseline",
    "recursive_closure_postfilter",
    "filter_by_restrictor",
    "shortest_paths_per_pair",
    "Selector",
    "SelectorKind",
    "SelectorPlan",
    "selector_plan",
    "apply_selector",
]
