"""The rewrite-rule driver for logical plan optimization.

:class:`Optimizer` repeatedly applies a rule set bottom-up over the plan until
no rule fires anymore (a fix point), recording which rules fired.  The rules
themselves live in :mod:`repro.optimizer.rules`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.algebra.expressions import (
    Difference,
    Expression,
    GroupBy,
    Intersection,
    Join,
    OrderBy,
    Projection,
    Recursive,
    Selection,
    Union,
)
from repro.errors import OptimizerError
from repro.optimizer.rules import DEFAULT_RULES, RewriteRule

__all__ = ["OptimizationResult", "Optimizer", "optimize"]

_MAX_PASSES = 50


@dataclass
class OptimizationResult:
    """The outcome of optimizing a plan."""

    original: Expression
    optimized: Expression
    applied_rules: list[str] = field(default_factory=list)
    passes: int = 0

    @property
    def changed(self) -> bool:
        """Whether any rule fired."""
        return bool(self.applied_rules)


class Optimizer:
    """Apply rewrite rules to logical plans until a fix point is reached."""

    def __init__(self, rules: Sequence[RewriteRule] | None = None) -> None:
        self.rules: tuple[RewriteRule, ...] = tuple(rules) if rules is not None else DEFAULT_RULES

    def optimize(self, plan: Expression) -> OptimizationResult:
        """Optimize ``plan`` and return the result together with the applied-rule trace."""
        applied: list[str] = []
        current = plan
        for pass_number in range(1, _MAX_PASSES + 1):
            rewritten, fired = self._rewrite_once(current)
            applied.extend(fired)
            if not fired:
                return OptimizationResult(plan, current, applied, pass_number - 1)
            current = rewritten
        raise OptimizerError(
            f"optimization did not reach a fix point within {_MAX_PASSES} passes; "
            f"rules applied so far: {applied}"
        )

    # ------------------------------------------------------------------
    # One bottom-up pass
    # ------------------------------------------------------------------
    def _rewrite_once(self, expression: Expression) -> tuple[Expression, list[str]]:
        fired: list[str] = []
        rewritten = self._rewrite_node(expression, fired)
        return rewritten, fired

    def _rewrite_node(self, expression: Expression, fired: list[str]) -> Expression:
        rebuilt = self._rebuild_with_children(
            expression,
            tuple(self._rewrite_node(child, fired) for child in expression.children()),
        )
        for rule in self.rules:
            result = rule.apply(rebuilt)
            if result is not None and result != rebuilt:
                fired.append(rule.name)
                return result
        return rebuilt

    @staticmethod
    def _rebuild_with_children(
        expression: Expression, children: tuple[Expression, ...]
    ) -> Expression:
        """Return a copy of ``expression`` with its children replaced."""
        if not children:
            return expression
        if isinstance(expression, Selection):
            return Selection(expression.condition, children[0])
        if isinstance(expression, Join):
            return Join(children[0], children[1])
        if isinstance(expression, Union):
            return Union(children[0], children[1])
        if isinstance(expression, Intersection):
            return Intersection(children[0], children[1])
        if isinstance(expression, Difference):
            return Difference(children[0], children[1])
        if isinstance(expression, Recursive):
            return Recursive(children[0], expression.restrictor, expression.max_length)
        if isinstance(expression, GroupBy):
            return GroupBy(children[0], expression.key)
        if isinstance(expression, OrderBy):
            return OrderBy(children[0], expression.key)
        if isinstance(expression, Projection):
            return Projection(children[0], expression.spec)
        raise OptimizerError(f"cannot rebuild expression of type {type(expression).__name__}")


def optimize(plan: Expression, rules: Sequence[RewriteRule] | None = None) -> OptimizationResult:
    """Convenience wrapper: optimize ``plan`` with the default (or given) rule set."""
    return Optimizer(rules).optimize(plan)
