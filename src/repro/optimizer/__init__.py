"""Logical plan optimization: rewrite rules, rule driver, and a cost model."""

from repro.optimizer.cost import CostModel, PlanCost, estimate_cost
from repro.optimizer.engine import OptimizationResult, Optimizer, optimize
from repro.optimizer.rules import (
    DEFAULT_RULES,
    MergeSelections,
    PushSelectionBelowUnion,
    PushSelectionIntoJoin,
    RemoveRedundantOrderBy,
    RewriteRule,
    SimplifyUnionDuplicates,
    WalkToShortest,
)

__all__ = [
    "Optimizer",
    "OptimizationResult",
    "optimize",
    "RewriteRule",
    "DEFAULT_RULES",
    "PushSelectionBelowUnion",
    "PushSelectionIntoJoin",
    "MergeSelections",
    "RemoveRedundantOrderBy",
    "WalkToShortest",
    "SimplifyUnionDuplicates",
    "CostModel",
    "PlanCost",
    "estimate_cost",
]
