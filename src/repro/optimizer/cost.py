"""A simple cardinality-based cost model for logical plans.

The paper argues that an algebra enables cost-based optimization; this module
provides the minimal machinery: per-operator output-cardinality estimates
derived from graph statistics, and a total plan cost defined as the sum of
estimated intermediate result sizes (a common proxy for execution effort in
textbook optimizers).  The estimates are deliberately coarse — they are meant
to rank alternative plans for the same query, not to predict wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.conditions import (
    And,
    Condition,
    LabelCondition,
    LengthCondition,
    Not,
    Or,
    PropertyCondition,
)
from repro.algebra.conditions import Target as ConditionTarget
from repro.algebra.expressions import (
    Difference,
    EdgesScan,
    Expression,
    GroupBy,
    Intersection,
    Join,
    NodesScan,
    OrderBy,
    Projection,
    Recursive,
    Selection,
    Union,
)
from repro.graph.model import PropertyGraph
from repro.graph.stats import GraphStatistics, compute_statistics
from repro.semantics.restrictors import Restrictor

__all__ = ["CostModel", "PlanCost", "estimate_cost"]

_DEFAULT_PROPERTY_SELECTIVITY = 0.1
_RECURSION_EXPANSION = {
    Restrictor.WALK: 8.0,
    Restrictor.TRAIL: 6.0,
    Restrictor.ACYCLIC: 4.0,
    Restrictor.SIMPLE: 4.0,
    Restrictor.SHORTEST: 2.0,
}


@dataclass(frozen=True)
class PlanCost:
    """Estimated cost of a plan: output cardinality and total intermediate work."""

    output_cardinality: float
    total_cost: float


class CostModel:
    """Estimate cardinalities and costs of plans over a specific graph."""

    def __init__(self, graph: PropertyGraph, statistics: GraphStatistics | None = None) -> None:
        self.graph = graph
        self.statistics = statistics or compute_statistics(graph)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def estimate(self, plan: Expression) -> PlanCost:
        """Return the estimated :class:`PlanCost` of ``plan``."""
        cardinality, cost = self._estimate(plan)
        return PlanCost(output_cardinality=cardinality, total_cost=cost)

    def recursive_cost_fraction(self, plan: Expression) -> float:
        """Fraction of ``plan``'s estimated cost spent inside blocking fix points.

        Sums the estimated cost of every *maximal* ``Recursive`` subtree
        (recursions nested inside another recursion are already covered by
        their ancestor) and divides by the plan's total estimated cost.  The
        executor layer uses this plan-shape signal to decide between the
        streaming pipeline (fraction low: the work is in streamable scans,
        selections and joins) and the materializing evaluator (fraction high:
        the work is dominated by inherently blocking recursion).
        """
        total = self.estimate(plan).total_cost
        if total <= 0:
            return 0.0
        recursive_cost = sum(
            self.estimate(subtree).total_cost
            for subtree in self._maximal_recursive_subtrees(plan)
        )
        return min(recursive_cost / total, 1.0)

    def _maximal_recursive_subtrees(self, plan: Expression) -> list[Expression]:
        if isinstance(plan, Recursive):
            return [plan]
        found: list[Expression] = []
        for child in plan.children():
            found.extend(self._maximal_recursive_subtrees(child))
        return found

    def shortest_cost_fraction(self, plan: Expression) -> float:
        """Fraction of ``plan``'s estimated cost inside ``ϕShortest`` fix points.

        Same construction as :meth:`recursive_cost_fraction` but restricted to
        maximal ``Recursive`` subtrees whose restrictor is ``SHORTEST`` — the
        signal the executor layer uses to route SHORTEST-heavy plans to the
        streaming product-automaton executor.
        """
        total = self.estimate(plan).total_cost
        if total <= 0:
            return 0.0
        shortest_cost = sum(
            self.estimate(subtree).total_cost
            for subtree in self._maximal_recursive_subtrees(plan)
            if isinstance(subtree, Recursive)
            and subtree.restrictor is Restrictor.SHORTEST
        )
        return min(shortest_cost / total, 1.0)

    def compare(self, left: Expression, right: Expression) -> int:
        """Return -1/0/+1 depending on which plan is estimated to be cheaper."""
        left_cost = self.estimate(left).total_cost
        right_cost = self.estimate(right).total_cost
        if left_cost < right_cost:
            return -1
        if left_cost > right_cost:
            return 1
        return 0

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _estimate(self, plan: Expression) -> tuple[float, float]:
        if isinstance(plan, NodesScan):
            cardinality = float(self.statistics.num_nodes)
            return cardinality, cardinality
        if isinstance(plan, EdgesScan):
            cardinality = float(self.statistics.num_edges)
            return cardinality, cardinality
        if isinstance(plan, Selection):
            child_card, child_cost = self._estimate(plan.child)
            selectivity = self._condition_selectivity(plan.condition)
            cardinality = child_card * selectivity
            return cardinality, child_cost + cardinality
        if isinstance(plan, Join):
            left_card, left_cost = self._estimate(plan.left)
            right_card, right_cost = self._estimate(plan.right)
            nodes = max(self.statistics.num_nodes, 1)
            cardinality = left_card * right_card / nodes
            return cardinality, left_cost + right_cost + cardinality
        if isinstance(plan, Union):
            left_card, left_cost = self._estimate(plan.left)
            right_card, right_cost = self._estimate(plan.right)
            cardinality = left_card + right_card
            return cardinality, left_cost + right_cost + cardinality
        if isinstance(plan, Intersection):
            left_card, left_cost = self._estimate(plan.left)
            right_card, right_cost = self._estimate(plan.right)
            cardinality = min(left_card, right_card) * 0.5
            return cardinality, left_cost + right_cost + cardinality
        if isinstance(plan, Difference):
            left_card, left_cost = self._estimate(plan.left)
            right_card, right_cost = self._estimate(plan.right)
            cardinality = max(left_card * 0.5, left_card - right_card)
            return cardinality, left_cost + right_cost + cardinality
        if isinstance(plan, Recursive):
            child_card, child_cost = self._estimate(plan.child)
            expansion = _RECURSION_EXPANSION[plan.restrictor]
            cardinality = child_card * expansion
            return cardinality, child_cost + cardinality * expansion
        if isinstance(plan, (GroupBy, OrderBy)):
            child_card, child_cost = self._estimate(plan.child)
            return child_card, child_cost + child_card
        if isinstance(plan, Projection):
            child_card, child_cost = self._estimate(plan.child)
            spec = plan.spec
            fraction = 1.0
            if spec.paths != "*":
                fraction *= 0.5
            if spec.groups != "*":
                fraction *= 0.5
            if spec.partitions != "*":
                fraction *= 0.5
            cardinality = max(child_card * fraction, 1.0)
            return cardinality, child_cost + cardinality
        return 1.0, 1.0

    def _condition_selectivity(self, condition: Condition) -> float:
        if isinstance(condition, LabelCondition):
            if condition.target is ConditionTarget.EDGE:
                return max(self.statistics.edge_label_fraction(condition.value), 0.01)
            return max(self.statistics.node_label_fraction(condition.value), 0.01)
        if isinstance(condition, PropertyCondition):
            return _DEFAULT_PROPERTY_SELECTIVITY
        if isinstance(condition, LengthCondition):
            return 0.3
        if isinstance(condition, And):
            return self._condition_selectivity(condition.left) * self._condition_selectivity(
                condition.right
            )
        if isinstance(condition, Or):
            left = self._condition_selectivity(condition.left)
            right = self._condition_selectivity(condition.right)
            return min(left + right, 1.0)
        if isinstance(condition, Not):
            return 1.0 - self._condition_selectivity(condition.operand)
        return 0.5


def estimate_cost(plan: Expression, graph: PropertyGraph) -> PlanCost:
    """Convenience wrapper: estimate the cost of ``plan`` over ``graph``."""
    return CostModel(graph).estimate(plan)
