"""Rewrite rules over path-algebra logical plans (paper Section 7.3).

Each rule is a small class with a ``name`` and an ``apply`` method that takes
an expression node and either returns a rewritten node or ``None`` when the
rule does not match.  Rules are purely structural: they never consult the
data, only the plan, so they are valid for every graph (the walk-to-shortest
rule is the one the paper discusses at length — it is only applied in the
specific selector shapes where it is semantics-preserving).

Implemented rules:

* :class:`PushSelectionBelowUnion` — ``σc(A ∪ B) -> σc(A) ∪ σc(B)``;
* :class:`PushSelectionIntoJoin` — endpoint conditions move to the join side
  they constrain (Figure 6's classical "pushing filters" example);
* :class:`MergeSelections` — ``σc1(σc2(X)) -> σ(c1 ∧ c2)(X)``;
* :class:`RemoveRedundantOrderBy` — drop order-by components that order
  singleton collections (the paper's ``τPG`` over ``γ`` example);
* :class:`WalkToShortest` — replace ``ϕWalk`` by ``ϕShortest`` under the
  ``ANY SHORTEST`` / ``ALL SHORTEST`` pipelines of Table 7, which restores
  termination on cyclic graphs (Section 7.3);
* :class:`SimplifyUnionDuplicates` — ``A ∪ A -> A``.
"""

from __future__ import annotations

from repro.algebra.conditions import (
    And,
    Condition,
    LabelCondition,
    PropertyCondition,
)
from repro.algebra.conditions import Target as ConditionTarget
from repro.algebra.expressions import (
    Expression,
    GroupBy,
    Join,
    OrderBy,
    Projection,
    Recursive,
    Selection,
    Union,
)
from repro.algebra.solution_space import GroupByKey, OrderByKey
from repro.semantics.restrictors import Restrictor

__all__ = [
    "RewriteRule",
    "PushSelectionBelowUnion",
    "PushSelectionIntoJoin",
    "MergeSelections",
    "RemoveRedundantOrderBy",
    "WalkToShortest",
    "SimplifyUnionDuplicates",
    "DEFAULT_RULES",
]


class RewriteRule:
    """Base class for plan rewrite rules."""

    name: str = "rule"

    def apply(self, expression: Expression) -> Expression | None:
        """Return the rewritten node, or ``None`` when the rule does not apply here."""
        raise NotImplementedError


def _split_conjunction(condition: Condition) -> list[Condition]:
    """Flatten nested conjunctions into a list of conjuncts."""
    if isinstance(condition, And):
        return _split_conjunction(condition.left) + _split_conjunction(condition.right)
    return [condition]


def _join_conjunction(conditions: list[Condition]) -> Condition:
    result = conditions[0]
    for extra in conditions[1:]:
        result = And(result, extra)
    return result


def _references_first_only(condition: Condition) -> bool:
    """True if the condition constrains only the first node of a path."""
    if isinstance(condition, (LabelCondition, PropertyCondition)):
        return condition.target is ConditionTarget.FIRST
    return False


def _references_last_only(condition: Condition) -> bool:
    """True if the condition constrains only the last node of a path."""
    if isinstance(condition, (LabelCondition, PropertyCondition)):
        return condition.target is ConditionTarget.LAST
    return False


class PushSelectionBelowUnion(RewriteRule):
    """``σc(A ∪ B) -> σc(A) ∪ σc(B)`` — selection distributes over union."""

    name = "push-selection-below-union"

    def apply(self, expression: Expression) -> Expression | None:
        if not isinstance(expression, Selection):
            return None
        child = expression.child
        if not isinstance(child, Union):
            return None
        return Union(
            Selection(expression.condition, child.left),
            Selection(expression.condition, child.right),
        )


class PushSelectionIntoJoin(RewriteRule):
    """Move endpoint conjuncts of a selection to the join side they constrain.

    For ``σc(A ⋈ B)``: conjuncts that only reference the *first* node hold on
    the left input (the first node of ``p1 ∘ p2`` is the first node of
    ``p1``), and conjuncts that only reference the *last* node hold on the
    right input.  Remaining conjuncts stay above the join.  This is the
    pushdown of Figure 6.
    """

    name = "push-selection-into-join"

    def apply(self, expression: Expression) -> Expression | None:
        if not isinstance(expression, Selection):
            return None
        child = expression.child
        if not isinstance(child, Join):
            return None

        conjuncts = _split_conjunction(expression.condition)
        to_left = [c for c in conjuncts if _references_first_only(c)]
        to_right = [c for c in conjuncts if _references_last_only(c)]
        remaining = [c for c in conjuncts if c not in to_left and c not in to_right]
        if not to_left and not to_right:
            return None

        left: Expression = child.left
        right: Expression = child.right
        if to_left:
            left = Selection(_join_conjunction(to_left), left)
        if to_right:
            right = Selection(_join_conjunction(to_right), right)
        new_join = Join(left, right)
        if remaining:
            return Selection(_join_conjunction(remaining), new_join)
        return new_join


class MergeSelections(RewriteRule):
    """``σc1(σc2(X)) -> σ(c1 ∧ c2)(X)`` — adjacent selections collapse into one."""

    name = "merge-selections"

    def apply(self, expression: Expression) -> Expression | None:
        if not isinstance(expression, Selection):
            return None
        child = expression.child
        if not isinstance(child, Selection):
            return None
        return Selection(And(expression.condition, child.condition), child.child)


class RemoveRedundantOrderBy(RewriteRule):
    """Drop order-by components that order collections that are necessarily singletons.

    Ordering partitions is useless when the group-by key has neither Source
    nor Target (there is a single partition); ordering groups is useless when
    the key has no Length component (one group per partition).  If every
    component of the order-by is useless, the operator disappears entirely —
    this is the paper's ``π(*,*,1)(τPG(γ(...)))`` simplification.
    """

    name = "remove-redundant-order-by"

    def apply(self, expression: Expression) -> Expression | None:
        if not isinstance(expression, OrderBy):
            return None
        child = expression.child
        if not isinstance(child, GroupBy):
            return None
        key = expression.key
        group_key = child.key

        single_partition = not (group_key.uses_source or group_key.uses_target)
        single_group = not group_key.uses_length

        letters = ""
        if key.orders_partitions and not single_partition:
            letters += "P"
        if key.orders_groups and not single_group:
            letters += "G"
        if key.orders_paths:
            letters += "A"

        if letters == key.value:
            return None
        if not letters:
            return child
        return OrderBy(child, OrderByKey.from_string(letters))


class WalkToShortest(RewriteRule):
    """Replace ``ϕWalk`` by ``ϕShortest`` under shortest-selecting pipelines (Section 7.3).

    Two shapes are rewritten, both derived from Table 7:

    * ``π(*,*,1)(τA(γST(ϕWalk(X))))``   (ANY SHORTEST WALK)
    * ``π(*,1,*)(τG(γSTL(ϕWalk(X))))``  (ALL SHORTEST WALK)

    In both, only minimum-length paths per endpoint pair can survive the
    projection, so computing the full (possibly infinite) walk closure is
    unnecessary; ``ϕShortest`` produces the same result and always terminates.
    """

    name = "walk-to-shortest"

    def apply(self, expression: Expression) -> Expression | None:
        if not isinstance(expression, Projection):
            return None
        order = expression.child
        if not isinstance(order, OrderBy):
            return None
        group = order.child
        if not isinstance(group, GroupBy):
            return None
        recursive = group.child
        target = self._find_walk(recursive)
        if target is None:
            return None

        spec = expression.spec
        any_shortest_shape = (
            spec.partitions == "*"
            and spec.groups == "*"
            and spec.paths == 1
            and order.key is OrderByKey.A
            and group.key is GroupByKey.ST
        )
        all_shortest_shape = (
            spec.partitions == "*"
            and spec.groups == 1
            and spec.paths == "*"
            and order.key is OrderByKey.G
            and group.key is GroupByKey.STL
        )
        if not (any_shortest_shape or all_shortest_shape):
            return None

        rewritten = self._replace_walk(recursive, target)
        return Projection(OrderBy(GroupBy(rewritten, group.key), order.key), spec)

    @staticmethod
    def _find_walk(expression: Expression) -> Recursive | None:
        """Return the ϕWalk node if ``expression`` is ϕWalk or σ(ϕWalk)."""
        if isinstance(expression, Recursive) and expression.restrictor is Restrictor.WALK:
            return expression
        if isinstance(expression, Selection):
            child = expression.child
            if isinstance(child, Recursive) and child.restrictor is Restrictor.WALK:
                return child
        return None

    @staticmethod
    def _replace_walk(expression: Expression, target: Recursive) -> Expression:
        replacement = Recursive(target.child, Restrictor.SHORTEST, target.max_length)
        if expression is target:
            return replacement
        assert isinstance(expression, Selection)
        return Selection(expression.condition, replacement)


class SimplifyUnionDuplicates(RewriteRule):
    """``A ∪ A -> A`` — union of identical subplans is the subplan itself."""

    name = "simplify-union-duplicates"

    def apply(self, expression: Expression) -> Expression | None:
        if not isinstance(expression, Union):
            return None
        if expression.left == expression.right:
            return expression.left
        return None


#: The rule set used by the optimizer by default, in priority order.
DEFAULT_RULES: tuple[RewriteRule, ...] = (
    MergeSelections(),
    PushSelectionBelowUnion(),
    PushSelectionIntoJoin(),
    SimplifyUnionDuplicates(),
    RemoveRedundantOrderBy(),
    WalkToShortest(),
)
