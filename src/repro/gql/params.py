"""Binding ``$name`` placeholders in logical plans (prepared queries).

A parameterized query — ``MATCH ... (?x {name: $name})-[:Knows]->+(?y)`` —
parses, plans and optimizes exactly once: the :class:`~repro.gql.ast.Parameter`
placeholders survive planning as opaque values inside the plan's selection
conditions, and the resulting plan is cached under the *parameterized* text.
Executing the plan substitutes concrete values with :func:`bind_parameters`,
a structural rewrite that rebuilds only the subtrees actually containing a
placeholder (untouched subtrees are shared with the cached plan), so fifty
bindings of one prepared query cost fifty cheap substitutions and a single
parse/plan/optimize.

:func:`collect_parameters` is the inspection half: it reports the parameter
names a plan declares, which the engine uses both to validate bindings
before execution and to refuse executing a parameterized plan unbound.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping

from repro.algebra.conditions import (
    And,
    Condition,
    LabelCondition,
    Not,
    Or,
    PropertyCondition,
)
from repro.algebra.expressions import Expression, Selection
from repro.errors import ParameterError
from repro.gql.ast import Parameter

__all__ = ["collect_parameters", "bind_parameters"]


def collect_parameters(plan: Expression) -> tuple[str, ...]:
    """Return the ``$name`` placeholders occurring in ``plan``, in plan order.

    Placeholders live in the ``value`` slot of the plan's simple selection
    conditions (label / property comparisons); the walk visits every
    :class:`~repro.algebra.expressions.Selection` in the tree.
    """
    names: dict[str, None] = {}
    for node in plan.iter_subtree():
        if isinstance(node, Selection):
            _collect_condition(node.condition, names)
    return tuple(names)


def _collect_condition(condition: Condition, names: dict[str, None]) -> None:
    if isinstance(condition, (And, Or)):
        _collect_condition(condition.left, names)
        _collect_condition(condition.right, names)
    elif isinstance(condition, Not):
        _collect_condition(condition.operand, names)
    elif isinstance(condition, (LabelCondition, PropertyCondition)):
        if isinstance(condition.value, Parameter):
            names.setdefault(condition.value.name, None)


def bind_parameters(plan: Expression, bindings: Mapping[str, Any]) -> Expression:
    """Substitute concrete values for every placeholder in ``plan``.

    Returns a new plan sharing every parameter-free subtree with the input
    (the cached plan is never mutated).  When ``plan`` holds no placeholders
    it is returned unchanged.

    Raises:
        ParameterError: when a placeholder has no binding.
    """
    return _bind_expression(plan, bindings)


def _bind_expression(expr: Expression, bindings: Mapping[str, Any]) -> Expression:
    if isinstance(expr, Selection):
        condition = _bind_condition(expr.condition, bindings)
        child = _bind_expression(expr.child, bindings)
        if condition is expr.condition and child is expr.child:
            return expr
        return Selection(condition, child)
    children = expr.children()
    if not children:
        return expr
    bound = tuple(_bind_expression(child, bindings) for child in children)
    if all(new is old for new, old in zip(bound, children)):
        return expr
    if len(children) == 1:
        return replace(expr, child=bound[0])
    return replace(expr, left=bound[0], right=bound[1])


def _bind_condition(condition: Condition, bindings: Mapping[str, Any]) -> Condition:
    if isinstance(condition, (And, Or)):
        left = _bind_condition(condition.left, bindings)
        right = _bind_condition(condition.right, bindings)
        if left is condition.left and right is condition.right:
            return condition
        return type(condition)(left, right)
    if isinstance(condition, Not):
        operand = _bind_condition(condition.operand, bindings)
        if operand is condition.operand:
            return condition
        return Not(operand)
    if isinstance(condition, (LabelCondition, PropertyCondition)):
        value = condition.value
        if isinstance(value, Parameter):
            if value.name not in bindings:
                raise ParameterError(f"parameter ${value.name} is unbound")
            return replace(condition, value=bindings[value.name])
    return condition
