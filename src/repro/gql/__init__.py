"""Extended-GQL front end: lexer, parser, AST and logical planner (Section 7)."""

from repro.gql.ast import NodePattern, Parameter, PathPattern, PathQuery
from repro.gql.lexer import Token, TokenKind, tokenize
from repro.gql.params import bind_parameters, collect_parameters
from repro.gql.parser import GQLParser, parse_query
from repro.gql.planner import endpoint_condition, plan_query, plan_text

__all__ = [
    "NodePattern",
    "Parameter",
    "PathPattern",
    "PathQuery",
    "Token",
    "TokenKind",
    "tokenize",
    "GQLParser",
    "parse_query",
    "plan_query",
    "plan_text",
    "endpoint_condition",
    "bind_parameters",
    "collect_parameters",
]
