"""Lexer for the extended GQL path-query syntax (paper Section 7.1).

The token stream feeds the recursive-descent parser in
:mod:`repro.gql.parser`.  Keywords are case-insensitive; identifiers,
numbers, single- or double-quoted strings, ``$name`` parameter placeholders
(bound at execution time through prepared queries) and the punctuation of
path patterns (``()-[]->{}`` etc.) are recognized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GQLSyntaxError

__all__ = ["Token", "TokenKind", "tokenize", "KEYWORDS"]

#: Keywords of the extended grammar (upper-cased canonical spelling).
KEYWORDS = {
    "MATCH",
    "ALL",
    "ANY",
    "SHORTEST",
    "WALK",
    "TRAIL",
    "SIMPLE",
    "ACYCLIC",
    "PARTITIONS",
    "GROUPS",
    "PATHS",
    "GROUP",
    "ORDER",
    "BY",
    "SOURCE",
    "TARGET",
    "LENGTH",
    "PARTITION",
    "PATH",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "LABEL",
    "FIRST",
    "LAST",
    "NODE",
    "EDGE",
    "LEN",
    "TRUE",
    "FALSE",
}


class TokenKind:
    """Token kind constants (plain strings to keep the parser readable)."""

    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    NUMBER = "NUMBER"
    STRING = "STRING"
    PARAMETER = "PARAMETER"
    PUNCT = "PUNCT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """A lexical token with position information (1-based line/column)."""

    kind: str
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        """Return ``True`` if this token is one of the given keywords."""
        return self.kind == TokenKind.KEYWORD and self.value in names

    def is_punct(self, *symbols: str) -> bool:
        """Return ``True`` if this token is one of the given punctuation symbols."""
        return self.kind == TokenKind.PUNCT and self.value in symbols


_MULTI_CHAR_PUNCT = ("->", "<=", ">=", "!=", "<-")
_SINGLE_CHAR_PUNCT = "()[]{}<>=,:.?/|*+-%"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` and return the token list terminated by an EOF token.

    Raises:
        GQLSyntaxError: on unterminated strings or unexpected characters.
    """
    tokens: list[Token] = []
    index = 0
    line = 1
    column = 1
    length = len(text)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char.isspace():
            advance(1)
            continue
        if char in "\"'":
            quote = char
            end = text.find(quote, index + 1)
            if end == -1:
                raise GQLSyntaxError("unterminated string literal", line, column)
            value = text[index + 1 : end]
            tokens.append(Token(TokenKind.STRING, value, line, column))
            advance(end - index + 1)
            continue
        if char.isdigit():
            start = index
            start_line, start_column = line, column
            while index < length and text[index].isdigit():
                advance(1)
            tokens.append(Token(TokenKind.NUMBER, text[start:index], start_line, start_column))
            continue
        if char == "$":
            start_line, start_column = line, column
            advance(1)
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                advance(1)
            name = text[start:index]
            if not name or name[0].isdigit():
                raise GQLSyntaxError(
                    "expected a parameter name after '$'", start_line, start_column
                )
            tokens.append(Token(TokenKind.PARAMETER, name, start_line, start_column))
            continue
        if char.isalpha() or char == "_":
            start = index
            start_line, start_column = line, column
            while index < length and (text[index].isalnum() or text[index] == "_"):
                advance(1)
            word = text[start:index]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, word.upper(), start_line, start_column))
            else:
                tokens.append(Token(TokenKind.IDENTIFIER, word, start_line, start_column))
            continue
        two = text[index : index + 2]
        if two in _MULTI_CHAR_PUNCT:
            tokens.append(Token(TokenKind.PUNCT, two, line, column))
            advance(2)
            continue
        if char in _SINGLE_CHAR_PUNCT:
            tokens.append(Token(TokenKind.PUNCT, char, line, column))
            advance(1)
            continue
        raise GQLSyntaxError(f"unexpected character {char!r}", line, column)

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
