"""Recursive-descent parser for the extended GQL path-query syntax (Section 7.1).

Two "path mode" styles are accepted after ``MATCH``:

* the extended style of Section 7.1::

      MATCH ALL PARTITIONS ALL GROUPS 1 PATHS
      TRAIL p = (?x)-[(:Knows)*]->(?y)
      GROUP BY TARGET ORDER BY PATH

* the standard GQL selector style of Section 2.3::

      MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)

Path patterns support node variables, node labels, inline property maps and
a ``WHERE`` clause over the selection-condition language of Section 3.1.
"""

from __future__ import annotations

from typing import Any

from repro.algebra.conditions import (
    Comparator,
    Condition,
    label_of_edge,
    label_of_first,
    label_of_last,
    label_of_node,
    LengthCondition,
    Not,
    prop_of_edge,
    prop_of_first,
    prop_of_last,
    prop_of_node,
)
from repro.algebra.solution_space import ALL, GroupByKey, OrderByKey, ProjectionSpec
from repro.errors import GQLSyntaxError
from repro.gql.ast import NodePattern, Parameter, PathPattern, PathQuery
from repro.gql.lexer import Token, TokenKind, tokenize
from repro.rpq.ast import Plus, RegexNode, Star
from repro.rpq.parser import parse_regex
from repro.semantics.restrictors import Restrictor
from repro.semantics.selectors import Selector, SelectorKind

__all__ = ["parse_query", "GQLParser"]

_RESTRICTOR_KEYWORDS = ("WALK", "TRAIL", "SIMPLE", "ACYCLIC", "SHORTEST")


def parse_query(text: str, max_length: int | None = None) -> PathQuery:
    """Parse an extended-GQL path query and return its AST.

    Args:
        text: The query text.
        max_length: Optional length bound recorded on the query (forwarded to
            ϕWalk during planning).

    Raises:
        GQLSyntaxError: if the text does not conform to the grammar.
    """
    return GQLParser(text).parse(max_length=max_length)


class GQLParser:
    """Recursive-descent parser over the token stream of :func:`repro.gql.lexer.tokenize`."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = tokenize(text)
        self._position = 0
        #: ``$name`` placeholders encountered while parsing, in order.
        self._parameters: list[str] = []

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != TokenKind.EOF:
            self._position += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> GQLSyntaxError:
        token = token or self._peek()
        return GQLSyntaxError(message, token.line, token.column)

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*names):
            raise self._error(f"expected {' or '.join(names)}, found {token.value!r}")
        return self._advance()

    def _expect_punct(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_punct(symbol):
            raise self._error(f"expected {symbol!r}, found {token.value!r}")
        return self._advance()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self, max_length: int | None = None) -> PathQuery:
        """Parse the whole query text."""
        self._expect_keyword("MATCH")

        projection: ProjectionSpec | None = None
        selector: Selector | None = None
        if self._looks_like_extended_projection():
            projection = self._parse_projection()
        else:
            selector = self._parse_selector()

        restrictor = self._parse_restrictor()
        pattern = self._parse_path_pattern()

        group_by: GroupByKey | None = None
        order_by: OrderByKey | None = None
        while self._peek().is_keyword("GROUP", "ORDER"):
            if self._peek().is_keyword("GROUP"):
                group_by = self._parse_group_by()
            else:
                order_by = self._parse_order_by()

        token = self._peek()
        if token.kind != TokenKind.EOF:
            raise self._error(f"unexpected trailing input {token.value!r}")

        return PathQuery(
            pattern=pattern,
            restrictor=restrictor,
            projection=projection,
            group_by=group_by,
            order_by=order_by,
            selector=selector,
            max_length=max_length,
            parameters=tuple(dict.fromkeys(self._parameters)),
        )

    # ------------------------------------------------------------------
    # Path mode
    # ------------------------------------------------------------------
    def _looks_like_extended_projection(self) -> bool:
        first = self._peek()
        second = self._peek(1)
        is_count = first.is_keyword("ALL") or first.kind == TokenKind.NUMBER
        return is_count and second.is_keyword("PARTITIONS")

    def _parse_count(self, unit_keyword: str) -> int | str:
        token = self._peek()
        if token.is_keyword("ALL"):
            self._advance()
            value: int | str = ALL
        elif token.kind == TokenKind.NUMBER:
            self._advance()
            value = int(token.value)
        else:
            raise self._error(f"expected ALL or a number before {unit_keyword}")
        self._expect_keyword(unit_keyword)
        return value

    def _parse_projection(self) -> ProjectionSpec:
        partitions = self._parse_count("PARTITIONS")
        groups = self._parse_count("GROUPS")
        paths = self._parse_count("PATHS")
        return ProjectionSpec(partitions, groups, paths)

    def _parse_selector(self) -> Selector | None:
        token = self._peek()
        if token.is_keyword(*_RESTRICTOR_KEYWORDS) and not self._is_selector_shortest():
            return None
        if token.is_keyword("ALL"):
            self._advance()
            if self._peek().is_keyword("SHORTEST"):
                # "ALL SHORTEST [restrictor]" — read SHORTEST as part of the
                # selector; a missing restrictor defaults to WALK.
                self._advance()
                return Selector(SelectorKind.ALL_SHORTEST)
            return Selector(SelectorKind.ALL)
        if token.is_keyword("ANY"):
            self._advance()
            nxt = self._peek()
            if nxt.is_keyword("SHORTEST"):
                self._advance()
                return Selector(SelectorKind.ANY_SHORTEST)
            if nxt.kind == TokenKind.NUMBER:
                self._advance()
                return Selector(SelectorKind.ANY_K, int(nxt.value))
            return Selector(SelectorKind.ANY)
        if token.is_keyword("SHORTEST") and self._peek(1).kind == TokenKind.NUMBER:
            self._advance()
            count_token = self._advance()
            if self._peek().is_keyword("GROUP") and not self._peek(1).is_keyword("BY"):
                self._advance()
                return Selector(SelectorKind.SHORTEST_K_GROUP, int(count_token.value))
            return Selector(SelectorKind.SHORTEST_K, int(count_token.value))
        return None

    def _is_selector_shortest(self) -> bool:
        """Distinguish the SHORTEST selector prefix from the SHORTEST restrictor."""
        token = self._peek()
        return token.is_keyword("SHORTEST") and self._peek(1).kind == TokenKind.NUMBER

    def _parse_restrictor(self) -> Restrictor:
        token = self._peek()
        if token.is_keyword(*_RESTRICTOR_KEYWORDS):
            self._advance()
            return Restrictor(token.value)
        # Standard GQL allows omitting the restrictor; WALK is the default.
        return Restrictor.WALK

    # ------------------------------------------------------------------
    # Path pattern
    # ------------------------------------------------------------------
    def _parse_path_pattern(self) -> PathPattern:
        variable: str | None = None
        if (
            self._peek().kind == TokenKind.IDENTIFIER
            and self._peek(1).is_punct("=")
        ):
            variable = self._advance().value
            self._advance()  # '='

        source = self._parse_node_pattern()
        self._expect_punct("-")
        self._expect_punct("[")
        regex = self._parse_regex_body()
        self._expect_punct("]")
        self._expect_punct("->")
        regex = self._apply_postfix_quantifier(regex)
        target = self._parse_node_pattern()

        where: Condition | None = None
        if self._peek().is_keyword("WHERE"):
            self._advance()
            where = self._parse_condition(source_variable=source.variable, target_variable=target.variable)

        return PathPattern(variable, source, regex, target, where)

    def _apply_postfix_quantifier(self, regex: RegexNode) -> RegexNode:
        """Handle the ``]->+`` / ``]->*`` forms where the quantifier follows the arrow."""
        token = self._peek()
        if token.is_punct("+"):
            self._advance()
            return Plus(regex)
        if token.is_punct("*"):
            self._advance()
            return Star(regex)
        return regex

    def _parse_node_pattern(self) -> NodePattern:
        self._expect_punct("(")
        variable: str | None = None
        label: str | None = None
        properties: dict[str, Any] = {}

        if self._peek().is_punct("?"):
            self._advance()
            token = self._peek()
            if token.kind not in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
                raise self._error("expected a variable name after '?'")
            variable = self._advance().value
        elif self._peek().kind == TokenKind.IDENTIFIER:
            variable = self._advance().value

        if self._peek().is_punct(":"):
            self._advance()
            token = self._peek()
            if token.kind not in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
                raise self._error("expected a label name after ':'")
            label = self._advance().value

        if self._peek().is_punct("{"):
            properties = self._parse_property_map()

        self._expect_punct(")")
        return NodePattern(variable, label, properties)

    def _parse_property_map(self) -> dict[str, Any]:
        self._expect_punct("{")
        properties: dict[str, Any] = {}
        while True:
            token = self._peek()
            if token.kind not in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
                raise self._error("expected a property name")
            name = self._advance().value
            self._expect_punct(":")
            properties[name] = self._parse_literal()
            if self._peek().is_punct(","):
                self._advance()
                continue
            break
        self._expect_punct("}")
        return properties

    def _parse_literal(self) -> Any:
        token = self._peek()
        if token.kind == TokenKind.PARAMETER:
            self._advance()
            self._parameters.append(token.value)
            return Parameter(token.value)
        if token.kind == TokenKind.STRING:
            self._advance()
            return token.value
        if token.kind == TokenKind.NUMBER:
            self._advance()
            return int(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return True
        if token.is_keyword("FALSE"):
            self._advance()
            return False
        if token.kind == TokenKind.IDENTIFIER:
            self._advance()
            return token.value
        raise self._error(f"expected a literal value, found {token.value!r}")

    def _parse_regex_body(self) -> RegexNode:
        """Collect the raw token text between ``[`` and ``]`` and reuse the RPQ parser."""
        parts: list[str] = []
        depth = 0
        while True:
            token = self._peek()
            if token.kind == TokenKind.EOF:
                raise self._error("unterminated '[' in path pattern")
            if token.kind == TokenKind.PARAMETER:
                raise self._error(
                    "parameters are not supported inside the edge pattern "
                    "(labels are part of the cached plan shape)"
                )
            if token.is_punct("["):
                depth += 1
            if token.is_punct("]"):
                if depth == 0:
                    break
                depth -= 1
            parts.append(token.value)
            self._advance()
        text = " ".join(parts)
        if not text.strip():
            raise self._error("empty regular expression in path pattern")
        return parse_regex(text)

    # ------------------------------------------------------------------
    # WHERE conditions
    # ------------------------------------------------------------------
    def _parse_condition(
        self, source_variable: str | None, target_variable: str | None
    ) -> Condition:
        return self._parse_or(source_variable, target_variable)

    def _parse_or(self, source_var: str | None, target_var: str | None) -> Condition:
        left = self._parse_and(source_var, target_var)
        while self._peek().is_keyword("OR"):
            self._advance()
            right = self._parse_and(source_var, target_var)
            left = left | right
        return left

    def _parse_and(self, source_var: str | None, target_var: str | None) -> Condition:
        left = self._parse_not(source_var, target_var)
        while self._peek().is_keyword("AND"):
            self._advance()
            right = self._parse_not(source_var, target_var)
            left = left & right
        return left

    def _parse_not(self, source_var: str | None, target_var: str | None) -> Condition:
        if self._peek().is_keyword("NOT"):
            self._advance()
            return Not(self._parse_not(source_var, target_var))
        if self._peek().is_punct("("):
            self._advance()
            condition = self._parse_or(source_var, target_var)
            self._expect_punct(")")
            return condition
        return self._parse_simple_condition(source_var, target_var)

    def _parse_comparator(self) -> Comparator:
        token = self._peek()
        mapping = {
            "=": Comparator.EQ,
            "!=": Comparator.NE,
            "<": Comparator.LT,
            ">": Comparator.GT,
            "<=": Comparator.LE,
            ">=": Comparator.GE,
        }
        if token.kind == TokenKind.PUNCT and token.value in mapping:
            self._advance()
            return mapping[token.value]
        raise self._error(f"expected a comparison operator, found {token.value!r}")

    def _parse_position_argument(self) -> int:
        self._expect_punct("(")
        token = self._peek()
        if token.kind != TokenKind.NUMBER:
            raise self._error("expected a position number")
        self._advance()
        self._expect_punct(")")
        return int(token.value)

    def _parse_simple_condition(
        self, source_var: str | None, target_var: str | None
    ) -> Condition:
        token = self._peek()

        # label(first) = v / label(last) = v / label(node(i)) = v / label(edge(i)) = v
        if token.is_keyword("LABEL"):
            self._advance()
            self._expect_punct("(")
            inner = self._peek()
            if inner.is_keyword("FIRST"):
                self._advance()
                self._expect_punct(")")
                comparator = self._parse_comparator()
                return label_of_first(self._parse_literal(), comparator)
            if inner.is_keyword("LAST"):
                self._advance()
                self._expect_punct(")")
                comparator = self._parse_comparator()
                return label_of_last(self._parse_literal(), comparator)
            if inner.is_keyword("NODE"):
                self._advance()
                position = self._parse_position_argument()
                self._expect_punct(")")
                comparator = self._parse_comparator()
                return label_of_node(position, self._parse_literal(), comparator)
            if inner.is_keyword("EDGE"):
                self._advance()
                position = self._parse_position_argument()
                self._expect_punct(")")
                comparator = self._parse_comparator()
                return label_of_edge(position, self._parse_literal(), comparator)
            raise self._error("expected first, last, node(i) or edge(i) inside label(...)")

        # len() = i
        if token.is_keyword("LEN"):
            self._advance()
            self._expect_punct("(")
            self._expect_punct(")")
            comparator = self._parse_comparator()
            value = self._parse_literal()
            if not isinstance(value, int):
                raise self._error("len() comparisons require an integer")
            return LengthCondition(value, comparator)

        # first.pr / last.pr / node(i).pr / edge(i).pr
        if token.is_keyword("FIRST", "LAST"):
            self._advance()
            self._expect_punct(".")
            property_name = self._parse_property_name()
            comparator = self._parse_comparator()
            value = self._parse_literal()
            factory = prop_of_first if token.value == "FIRST" else prop_of_last
            return factory(property_name, value, comparator)

        if token.is_keyword("NODE", "EDGE"):
            self._advance()
            position = self._parse_position_argument()
            self._expect_punct(".")
            property_name = self._parse_property_name()
            comparator = self._parse_comparator()
            value = self._parse_literal()
            factory = prop_of_node if token.value == "NODE" else prop_of_edge
            return factory(position, property_name, value, comparator)

        # variable.pr — resolved against the pattern's endpoint variables.
        if token.kind == TokenKind.IDENTIFIER:
            variable = self._advance().value
            self._expect_punct(".")
            property_name = self._parse_property_name()
            comparator = self._parse_comparator()
            value = self._parse_literal()
            if variable == source_var:
                return prop_of_first(property_name, value, comparator)
            if variable == target_var:
                return prop_of_last(property_name, value, comparator)
            raise self._error(
                f"unknown variable {variable!r} in WHERE clause (expected "
                f"{source_var!r} or {target_var!r})",
                token,
            )

        raise self._error(f"cannot parse condition starting at {token.value!r}")

    def _parse_property_name(self) -> str:
        token = self._peek()
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
            self._advance()
            return token.value if token.kind == TokenKind.IDENTIFIER else token.value.lower()
        raise self._error("expected a property name")

    # ------------------------------------------------------------------
    # GROUP BY / ORDER BY
    # ------------------------------------------------------------------
    def _parse_group_by(self) -> GroupByKey:
        self._expect_keyword("GROUP")
        self._expect_keyword("BY")
        letters = ""
        mapping = {"SOURCE": "S", "TARGET": "T", "LENGTH": "L"}
        while self._peek().is_keyword("SOURCE", "TARGET", "LENGTH"):
            token = self._advance()
            letters += mapping[token.value]
        if not letters:
            return GroupByKey.NONE
        return GroupByKey.from_string(letters)

    def _parse_order_by(self) -> OrderByKey:
        self._expect_keyword("ORDER")
        self._expect_keyword("BY")
        letters = ""
        mapping = {"PARTITION": "P", "GROUP": "G", "PATH": "A"}
        while self._peek().is_keyword("PARTITION", "GROUP", "PATH"):
            token = self._advance()
            letters += mapping[token.value]
        if not letters:
            raise self._error("ORDER BY requires at least one of PARTITION, GROUP, PATH")
        return OrderByKey.from_string(letters)
