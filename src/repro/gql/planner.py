"""Logical planning: extended-GQL ASTs to path-algebra expression trees.

The planner implements the translation sketched in Sections 6 and 7 of the
paper:

1. the regular expression of the path pattern compiles into the core /
   recursive algebra (:func:`repro.rpq.compile.compile_regex`), with the
   query's restrictor attached to every recursive operator;
2. node-pattern constraints (labels and inline properties) and the ``WHERE``
   clause become a selection on top;
3. the path mode becomes the extended-algebra pipeline — either the explicit
   ``GROUP BY`` / ``ORDER BY`` / projection of the extended syntax, or the
   Table 7 pipeline of the query's selector.
"""

from __future__ import annotations

from repro.algebra.conditions import (
    Condition,
    label_of_first,
    label_of_last,
    prop_of_first,
    prop_of_last,
)
from repro.algebra.expressions import Expression, GroupBy, OrderBy, Projection, Selection
from repro.algebra.solution_space import GroupByKey, ProjectionSpec
from repro.errors import PlanningError
from repro.gql.ast import NodePattern, PathQuery
from repro.gql.parser import parse_query
from repro.rpq.compile import CompileOptions, compile_regex
from repro.semantics.selectors import Selector, SelectorKind, selector_plan

__all__ = ["plan_query", "plan_text", "endpoint_condition"]


def endpoint_condition(pattern: NodePattern, is_source: bool) -> Condition | None:
    """Build the selection condition induced by a node pattern's label and properties."""
    label_factory = label_of_first if is_source else label_of_last
    prop_factory = prop_of_first if is_source else prop_of_last

    conditions: list[Condition] = []
    if pattern.label is not None:
        conditions.append(label_factory(pattern.label))
    for name, value in pattern.properties.items():
        conditions.append(prop_factory(name, value))
    if not conditions:
        return None
    result = conditions[0]
    for extra in conditions[1:]:
        result = result & extra
    return result


def plan_query(query: PathQuery) -> Expression:
    """Translate a parsed :class:`~repro.gql.ast.PathQuery` into a logical plan."""
    options = CompileOptions(restrictor=query.restrictor, max_length=query.max_length)
    plan: Expression = compile_regex(query.pattern.regex, options)

    condition: Condition | None = None
    for extra in (
        endpoint_condition(query.pattern.source, is_source=True),
        endpoint_condition(query.pattern.target, is_source=False),
        query.pattern.where,
    ):
        if extra is None:
            continue
        condition = extra if condition is None else condition & extra
    if condition is not None:
        plan = Selection(condition, plan)

    if query.uses_selector_style():
        return _apply_selector_pipeline(plan, query.selector)
    return _apply_extended_pipeline(plan, query)


def _apply_selector_pipeline(plan: Expression, selector: Selector | None) -> Expression:
    """Wrap ``plan`` in the Table 7 pipeline of ``selector`` (default ALL)."""
    selector = selector or Selector(SelectorKind.ALL)
    pipeline = selector_plan(selector)
    plan = GroupBy(plan, pipeline.group_key)
    if pipeline.order_key is not None:
        plan = OrderBy(plan, pipeline.order_key)
    return Projection(plan, pipeline.projection)


def _apply_extended_pipeline(plan: Expression, query: PathQuery) -> Expression:
    """Wrap ``plan`` in the explicit group-by / order-by / projection of the extended syntax."""
    if query.projection is None:
        raise PlanningError("extended-style queries require a projection clause")
    group_key = query.group_by if query.group_by is not None else GroupByKey.NONE
    plan = GroupBy(plan, group_key)
    if query.order_by is not None:
        plan = OrderBy(plan, query.order_by)
    spec: ProjectionSpec = query.projection
    return Projection(plan, spec)


def plan_text(text: str, max_length: int | None = None) -> Expression:
    """Parse and plan an extended-GQL query in one step."""
    return plan_query(parse_query(text, max_length=max_length))
