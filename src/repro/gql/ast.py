"""Abstract syntax tree of extended-GQL path queries (paper Section 7.1).

The AST separates the surface syntax from the algebra: the parser produces
these nodes, and the planner (:mod:`repro.gql.planner`) turns them into
path-algebra expression trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.algebra.conditions import Condition
from repro.algebra.solution_space import GroupByKey, OrderByKey, ProjectionSpec
from repro.rpq.ast import RegexNode
from repro.semantics.restrictors import Restrictor
from repro.semantics.selectors import Selector

__all__ = [
    "Parameter",
    "NodePattern",
    "PathPattern",
    "PathQuery",
]


@dataclass(frozen=True)
class Parameter:
    """A ``$name`` placeholder standing in for a literal value.

    Parameters flow from the lexer through the AST into the selection
    conditions of the logical plan, so a parameterized query parses, plans
    and optimizes exactly once; executing the plan substitutes concrete
    values via :func:`repro.gql.params.bind_parameters`.  A placeholder is an
    opaque, hashable value object — structural plan equality and plan-cache
    keys treat distinct parameter names as distinct plans.
    """

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class NodePattern:
    """A node pattern ``(?x :Person {name: "Moe"})``.

    Attributes:
        variable: The variable name (without the optional ``?`` prefix), or
            ``None`` for an anonymous node.
        label: Optional node label constraint.
        properties: Inline property constraints (conjunctive equality).
    """

    variable: str | None = None
    label: str | None = None
    properties: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = ""
        if self.variable:
            parts += f"?{self.variable}"
        if self.label:
            parts += f" :{self.label}"
        if self.properties:
            props = ", ".join(f"{key}: {value!r}" for key, value in self.properties.items())
            parts += f" {{{props}}}"
        return f"({parts.strip()})"


@dataclass(frozen=True)
class PathPattern:
    """A path pattern ``p = (?x ...)-[regex]->(?y ...) WHERE condition``."""

    variable: str | None
    source: NodePattern
    regex: RegexNode
    target: NodePattern
    where: Condition | None = None

    def __str__(self) -> str:
        name = f"{self.variable} = " if self.variable else ""
        where = f" WHERE {self.where}" if self.where is not None else ""
        return f"{name}{self.source}-[{self.regex}]->{self.target}{where}"


@dataclass(frozen=True)
class PathQuery:
    """A full extended-GQL path query.

    Exactly one of the two "path mode" styles is populated:

    * the *extended* style of Section 7.1 — an explicit ``projection``
      (``<n|ALL> PARTITIONS <n|ALL> GROUPS <n|ALL> PATHS``) plus optional
      ``group_by`` and ``order_by`` clauses;
    * the *standard GQL* style of Section 2.3 — a ``selector`` (Table 1)
      whose Table 7 translation supplies the projection pipeline.

    The ``restrictor`` is common to both styles.
    """

    pattern: PathPattern
    restrictor: Restrictor = Restrictor.WALK
    projection: ProjectionSpec | None = None
    group_by: GroupByKey | None = None
    order_by: OrderByKey | None = None
    selector: Selector | None = None
    max_length: int | None = None
    #: ``$name`` placeholders the query declares, in first-occurrence order.
    parameters: tuple[str, ...] = ()

    def uses_selector_style(self) -> bool:
        """Return ``True`` when the query uses the standard GQL selector style."""
        return self.selector is not None

    def __str__(self) -> str:
        if self.uses_selector_style():
            mode = f"{self.selector} {self.restrictor.value}"
        else:
            assert self.projection is not None
            def render(component: int | str) -> str:
                return "ALL" if component == "*" else str(component)
            mode = (
                f"{render(self.projection.partitions)} PARTITIONS "
                f"{render(self.projection.groups)} GROUPS "
                f"{render(self.projection.paths)} PATHS {self.restrictor.value}"
            )
        clauses = ""
        if self.group_by is not None:
            names = {"S": "SOURCE", "T": "TARGET", "L": "LENGTH"}
            clauses += " GROUP BY " + " ".join(names[letter] for letter in self.group_by.value)
        if self.order_by is not None:
            names = {"P": "PARTITION", "G": "GROUP", "A": "PATH"}
            clauses += " ORDER BY " + " ".join(names[letter] for letter in self.order_by.value)
        return f"MATCH {mode} {self.pattern}{clauses}"
