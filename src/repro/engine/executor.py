"""The pluggable execution layer: one interface, two physical realizations.

The paper separates *logical* plans from their *physical* realization; this
module is where the engine makes that separation operational.  An
:class:`Executor` takes a logical :class:`~repro.algebra.expressions.Expression`
and a :class:`~repro.graph.model.PropertyGraph` and produces an
:class:`ExecutionResult` — the result paths plus unified
:class:`~repro.execution.ExecutionStatistics`.  Three executors exist:

* :class:`MaterializeExecutor` — the bottom-up materializing
  :class:`~repro.algebra.evaluator.Evaluator` (every intermediate path set is
  built in full); robust, and the cheapest option when the plan is dominated
  by inherently blocking recursion;
* :class:`PipelineExecutor` — the pull-based iterator pipeline of
  :mod:`repro.engine.physical`; streams selections, joins and unions, and
  honours a ``limit`` by simply not pulling more paths (early termination);
* ``AutomatonExecutor`` (:mod:`repro.engine.automaton`) — lazy BFS over the
  product of graph × NFA; makes ϕShortest streaming and falls back to the
  materializing evaluator on plans outside its native envelope.

:func:`choose_executor` implements the ``"auto"`` policy: it consults the
:class:`~repro.optimizer.cost.CostModel` for the fraction of estimated work
spent inside blocking fix points and routes streaming-friendly plans to the
pipeline, recursion-heavy plans to the materializing evaluator, and
natively-supported ϕShortest-heavy plans to the product automaton.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Protocol, runtime_checkable

from repro.algebra.evaluator import Evaluator
from repro.algebra.expressions import Expression
from repro.engine.footprint import plan_footprint
from repro.engine.physical import build_pipeline
from repro.execution import ExecutionStatistics, QueryBudget
from repro.graph.delta import QueryFootprint
from repro.graph.model import PropertyGraph
from repro.optimizer.cost import CostModel
from repro.paths.pathset import PathSet

__all__ = [
    "AUTOMATON_EXECUTOR_NAME",
    "EXECUTOR_NAMES",
    "ExecutionResult",
    "Executor",
    "MaterializeExecutor",
    "PipelineExecutor",
    "choose_executor",
    "choose_executor_with_fraction",
    "resolve_executor",
]

#: The values accepted by every ``executor=`` knob in the engine and the CLI.
EXECUTOR_NAMES = ("auto", "materialize", "pipeline", "automaton")

#: Name of the product-automaton executor (class in
#: :mod:`repro.engine.automaton`; referenced by name here because that
#: package builds on this module).
AUTOMATON_EXECUTOR_NAME = "automaton"

#: Above this fraction of estimated cost inside ϕ fix points, ``auto``
#: considers a plan recursion-heavy and picks the materializing evaluator.
RECURSIVE_COST_THRESHOLD = 0.5

#: Above this fraction of estimated cost inside ϕShortest fix points, ``auto``
#: routes a natively-supported plan to the product-automaton executor (whose
#: streaming level-BFS dominates the path-level Dijkstra closure there).
SHORTEST_COST_THRESHOLD = 0.5


@dataclass
class ExecutionResult:
    """What an executor returns: paths, statistics, and truncation info.

    Attributes:
        paths: The result paths (possibly truncated when ``limit`` was given).
        statistics: Unified per-operator counters.
        truncated: ``True`` when a ``limit`` stopped the executor before the
            full result was produced (more paths may exist).
        total_paths: Size of the *full* result when the executor computed it
            (the materializing executor always knows it; the pipeline only
            when it ran to exhaustion).  ``None`` under early termination.
    """

    paths: PathSet
    statistics: ExecutionStatistics
    truncated: bool = False
    total_paths: int | None = None


@runtime_checkable
class Executor(Protocol):
    """Execute a logical plan over a property graph."""

    name: str

    def execute(
        self,
        plan: Expression,
        graph: PropertyGraph,
        *,
        default_max_length: int | None = None,
        limit: int | None = None,
        budget: QueryBudget | None = None,
        footprint: QueryFootprint | None = None,
    ) -> ExecutionResult:
        """Run ``plan`` over ``graph`` and return paths plus statistics.

        ``footprint`` is the plan's precomputed static footprint; the engine
        passes the once-per-cached-plan value so repeat executions (prepared
        bindings, plan-cache hits) skip the per-call plan walk.  When absent
        the executor computes it from ``plan``.

        ``budget`` is a cooperative cancellation token; executors thread it
        into every loop that can run long and raise
        :class:`~repro.errors.BudgetExceeded` when it is exhausted.
        """
        ...  # pragma: no cover - protocol definition


class MaterializeExecutor:
    """Executor backed by the bottom-up materializing :class:`Evaluator`.

    Cannot terminate early: a ``limit`` keeps the smallest ``limit`` paths of
    the fully materialized result (path order is lexicographic, so limited
    output is deterministic and matches the sorted-then-truncate behavior a
    caller displaying sorted paths expects), and the full result size is
    still reported via :attr:`ExecutionResult.total_paths`.
    """

    name = "materialize"

    def execute(
        self,
        plan: Expression,
        graph: PropertyGraph,
        *,
        default_max_length: int | None = None,
        limit: int | None = None,
        budget: QueryBudget | None = None,
        footprint: QueryFootprint | None = None,
    ) -> ExecutionResult:
        evaluator = Evaluator(graph, default_max_length=default_max_length, budget=budget)
        paths = evaluator.evaluate_paths(plan)
        statistics = evaluator.statistics
        statistics.executor = self.name
        statistics.footprint = footprint if footprint is not None else plan_footprint(plan)
        total = len(paths)
        truncated = False
        if limit is not None and total > limit:
            paths = PathSet.from_unique(islice(iter(paths.sorted()), max(limit, 0)))
            truncated = True
        if budget is not None:
            # The cap applies to the result the caller receives — checked
            # after any limit truncation so both executors agree on whether
            # a limited query fits its budget.
            budget.check_result_size(len(paths), "result")
            statistics.capture_budget(budget)
        return ExecutionResult(
            paths=paths, statistics=statistics, truncated=truncated, total_paths=total
        )


class PipelineExecutor:
    """Executor backed by the pull-based physical pipeline.

    A ``limit`` is pushed into the pipeline: the root iterator is pulled at
    most ``limit`` times, so streaming stages (scans, selections, joins,
    unions) never produce paths beyond what the limit requires.
    """

    name = "pipeline"

    def execute(
        self,
        plan: Expression,
        graph: PropertyGraph,
        *,
        default_max_length: int | None = None,
        limit: int | None = None,
        budget: QueryBudget | None = None,
        footprint: QueryFootprint | None = None,
    ) -> ExecutionResult:
        pipeline = build_pipeline(plan, graph, default_max_length, budget=budget)
        statistics = pipeline.statistics
        statistics.executor = self.name
        statistics.footprint = footprint if footprint is not None else plan_footprint(plan)
        if limit is None:
            paths = pipeline.execute()
            if budget is not None:
                budget.check_result_size(len(paths), "result")
                statistics.capture_budget(budget)
            return ExecutionResult(
                paths=paths, statistics=statistics, total_paths=len(paths)
            )
        stream = pipeline.stream()
        paths = PathSet.from_unique(islice(stream, max(limit, 0)))
        # One extra pull decides whether the limit actually cut the stream:
        # exhausting the root here is the exact situation where the limit did
        # not matter, so the probe costs at most one surplus path.
        truncated = next(stream, None) is not None
        if budget is not None:
            budget.check_result_size(len(paths), "result")
            statistics.capture_budget(budget)
        return ExecutionResult(
            paths=paths,
            statistics=statistics,
            truncated=truncated,
            total_paths=None if truncated else len(paths),
        )


def choose_executor(plan: Expression, cost_model: CostModel) -> str:
    """The ``"auto"`` policy: pick an executor name for ``plan``.

    Streaming-friendly plans (little or no estimated work inside blocking ϕ
    fix points) go to the pipeline — they benefit from bounded memory and
    from early termination under a ``limit``.  Recursion-heavy plans go to
    the materializing evaluator: the fix point is blocking either way, and
    materializing avoids the pipeline's per-path iterator overhead.
    """
    return choose_executor_with_fraction(plan, cost_model)[0]


def choose_executor_with_fraction(
    plan: Expression, cost_model: CostModel
) -> tuple[str, float]:
    """Like :func:`choose_executor`, also returning the recursive cost fraction.

    The fraction is the decision's input signal; the portfolio router
    (:mod:`repro.engine.router`) uses it to judge how *confident* the choice
    is — fractions near :data:`RECURSIVE_COST_THRESHOLD` are coin flips worth
    racing, fractions near 0 or 1 are not.

    Plans dominated by ``ϕShortest`` fix points that the product-automaton
    executor supports natively route there first: the streaming level-BFS on
    the product graph beats both the blocking Dijkstra closure and the
    pipeline for that mode.  Selection for every other plan is unchanged.
    """
    fraction = cost_model.recursive_cost_fraction(plan)
    if cost_model.shortest_cost_fraction(plan) > SHORTEST_COST_THRESHOLD:
        # Imported lazily: the automaton package builds on this module.
        from repro.engine.automaton.decompile import plan_supported

        if plan_supported(plan):
            return AUTOMATON_EXECUTOR_NAME, fraction
    if fraction > RECURSIVE_COST_THRESHOLD:
        return MaterializeExecutor.name, fraction
    return PipelineExecutor.name, fraction


def resolve_executor(name: str) -> Executor:
    """Return the executor instance for a non-``auto`` executor name."""
    if name == MaterializeExecutor.name:
        return MaterializeExecutor()
    if name == PipelineExecutor.name:
        return PipelineExecutor()
    if name == AUTOMATON_EXECUTOR_NAME:
        from repro.engine.automaton.executor import AutomatonExecutor

        return AutomatonExecutor()
    raise ValueError(
        f"unresolvable executor {name!r}; expected "
        f"{MaterializeExecutor.name!r}, {PipelineExecutor.name!r} or "
        f"{AUTOMATON_EXECUTOR_NAME!r} "
        "('auto' must be resolved by the engine first)"
    )
