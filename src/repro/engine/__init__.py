"""Query engine facade: parse, plan, optimize and execute path queries."""

from repro.engine.engine import ExplainResult, PathQueryEngine, QueryResult
from repro.engine.physical import (
    PhysicalPlan,
    PipelineStatistics,
    build_pipeline,
    execute_pipeline,
)
from repro.engine.results import BindingTable, PathBinding, bind_paths

__all__ = [
    "PathQueryEngine",
    "QueryResult",
    "ExplainResult",
    "PhysicalPlan",
    "PipelineStatistics",
    "build_pipeline",
    "execute_pipeline",
    "BindingTable",
    "PathBinding",
    "bind_paths",
]
