"""Query engine facade: parse, plan, optimize and execute path queries."""

from repro.engine.automaton import AutomatonExecutor
from repro.engine.engine import (
    CachedPlan,
    ExplainResult,
    PathQueryEngine,
    PlanCache,
    QueryResult,
)
from repro.engine.executor import (
    EXECUTOR_NAMES,
    ExecutionResult,
    Executor,
    MaterializeExecutor,
    PipelineExecutor,
    choose_executor,
    choose_executor_with_fraction,
    resolve_executor,
)
from repro.engine.router import EXECUTION_MODES, PortfolioRouter, RouteDecision
from repro.engine.physical import (
    PhysicalPlan,
    PipelineStatistics,
    build_pipeline,
    execute_pipeline,
)
from repro.engine.results import BindingTable, PathBinding, ResultCursor, bind_paths
from repro.execution import ExecutionStatistics

__all__ = [
    "AutomatonExecutor",
    "PathQueryEngine",
    "QueryResult",
    "ExplainResult",
    "PlanCache",
    "CachedPlan",
    "EXECUTOR_NAMES",
    "Executor",
    "ExecutionResult",
    "ExecutionStatistics",
    "MaterializeExecutor",
    "PipelineExecutor",
    "choose_executor",
    "choose_executor_with_fraction",
    "resolve_executor",
    "EXECUTION_MODES",
    "PortfolioRouter",
    "RouteDecision",
    "PhysicalPlan",
    "PipelineStatistics",
    "build_pipeline",
    "execute_pipeline",
    "BindingTable",
    "PathBinding",
    "ResultCursor",
    "bind_paths",
]
