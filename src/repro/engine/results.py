"""Tabular views of path-query results (bindings and group variables).

GQL queries ultimately return tables; the paper notes (Section 2.3) that
*group variables* — collecting the nodes or edges along a path into a list —
fit naturally on top of the algebra because paths are first-class values.
This module provides that bridge: it turns a :class:`~repro.paths.pathset.PathSet`
into rows of bindings, optionally projecting node/edge properties, so that a
downstream application (or a relational engine hosting SQL/PGQ) can consume
path-query answers as ordinary tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.paths.path import Path
from repro.paths.pathset import PathSet

__all__ = ["PathBinding", "BindingTable", "bind_paths"]


@dataclass(frozen=True)
class PathBinding:
    """The bindings induced by one path.

    Attributes:
        path: The witnessing path itself (composability is preserved).
        source: Identifier of the first node (the ``x`` endpoint variable).
        target: Identifier of the last node (the ``y`` endpoint variable).
        length: Number of edges.
        nodes: Group variable collecting every node identifier along the path.
        edges: Group variable collecting every edge identifier along the path.
        labels: The edge-label word of the path.
    """

    path: Path
    source: str
    target: str
    length: int
    nodes: tuple[str, ...]
    edges: tuple[str, ...]
    labels: tuple[str | None, ...]

    @classmethod
    def from_path(cls, path: Path) -> "PathBinding":
        """Build the binding row for one path."""
        return cls(
            path=path,
            source=path.first(),
            target=path.last(),
            length=path.len(),
            nodes=path.node_ids,
            edges=path.edge_ids,
            labels=path.label_sequence(),
        )

    def node_property(self, position: int, name: str, default: Any = None) -> Any:
        """Property ``name`` of the node at 1-based ``position`` along the path."""
        return self.path.graph.property_of(self.path.node(position), name, default)

    def source_property(self, name: str, default: Any = None) -> Any:
        """Property ``name`` of the source node."""
        return self.path.graph.property_of(self.source, name, default)

    def target_property(self, name: str, default: Any = None) -> Any:
        """Property ``name`` of the target node."""
        return self.path.graph.property_of(self.target, name, default)

    def to_dict(self) -> dict[str, Any]:
        """Return the binding as a plain dictionary (JSON-friendly)."""
        return {
            "source": self.source,
            "target": self.target,
            "length": self.length,
            "nodes": list(self.nodes),
            "edges": list(self.edges),
            "labels": list(self.labels),
        }


@dataclass
class BindingTable:
    """A sequence of :class:`PathBinding` rows with tabular conveniences."""

    rows: list[PathBinding] = field(default_factory=list)

    @classmethod
    def from_paths(cls, paths: Iterable[Path]) -> "BindingTable":
        """Build a table with one row per path."""
        return cls([PathBinding.from_path(path) for path in paths])

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def columns(self, *names: str) -> list[tuple]:
        """Return the requested columns as tuples (``source``, ``target``, ``length``...)."""
        return [tuple(getattr(row, name) for name in names) for row in self.rows]

    def endpoints(self) -> list[tuple[str, str]]:
        """The classical RPQ answer: the (source, target) pairs, duplicates removed, order kept."""
        seen: set[tuple[str, str]] = set()
        result = []
        for row in self.rows:
            pair = (row.source, row.target)
            if pair not in seen:
                seen.add(pair)
                result.append(pair)
        return result

    def project_properties(
        self,
        source_properties: Sequence[str] = (),
        target_properties: Sequence[str] = (),
    ) -> list[dict[str, Any]]:
        """Return one dictionary per row with the requested endpoint properties."""
        projected = []
        for row in self.rows:
            record: dict[str, Any] = {"source": row.source, "target": row.target, "length": row.length}
            for name in source_properties:
                record[f"source.{name}"] = row.source_property(name)
            for name in target_properties:
                record[f"target.{name}"] = row.target_property(name)
            projected.append(record)
        return projected

    def sort_by(self, key: Callable[[PathBinding], Any]) -> "BindingTable":
        """Return a new table with rows sorted by ``key``."""
        return BindingTable(sorted(self.rows, key=key))

    def filter(self, predicate: Callable[[PathBinding], bool]) -> "BindingTable":
        """Return a new table keeping only rows satisfying ``predicate``."""
        return BindingTable([row for row in self.rows if predicate(row)])

    def group_sizes(self) -> dict[tuple[str, str], int]:
        """Number of paths per endpoint pair (the partition sizes of γST)."""
        sizes: dict[tuple[str, str], int] = {}
        for row in self.rows:
            sizes[(row.source, row.target)] = sizes.get((row.source, row.target), 0) + 1
        return sizes


def bind_paths(paths: PathSet | Iterable[Path]) -> BindingTable:
    """Convenience wrapper: build a :class:`BindingTable` from a path set."""
    return BindingTable.from_paths(paths)
