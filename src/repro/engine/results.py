"""Tabular views of path-query results (bindings and group variables).

GQL queries ultimately return tables; the paper notes (Section 2.3) that
*group variables* — collecting the nodes or edges along a path into a list —
fit naturally on top of the algebra because paths are first-class values.
This module provides that bridge: it turns a :class:`~repro.paths.pathset.PathSet`
into rows of bindings, optionally projecting node/edge properties, so that a
downstream application (or a relational engine hosting SQL/PGQ) can consume
path-query answers as ordinary tuples.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import BudgetExceeded
from repro.execution import ExecutionStatistics, QueryBudget
from repro.paths.path import Path
from repro.paths.pathset import PathSet

__all__ = ["PathBinding", "BindingTable", "bind_paths", "ResultCursor"]


@dataclass(frozen=True)
class PathBinding:
    """The bindings induced by one path.

    Attributes:
        path: The witnessing path itself (composability is preserved).
        source: Identifier of the first node (the ``x`` endpoint variable).
        target: Identifier of the last node (the ``y`` endpoint variable).
        length: Number of edges.
        nodes: Group variable collecting every node identifier along the path.
        edges: Group variable collecting every edge identifier along the path.
        labels: The edge-label word of the path.
    """

    path: Path
    source: str
    target: str
    length: int
    nodes: tuple[str, ...]
    edges: tuple[str, ...]
    labels: tuple[str | None, ...]

    @classmethod
    def from_path(cls, path: Path) -> "PathBinding":
        """Build the binding row for one path."""
        return cls(
            path=path,
            source=path.first(),
            target=path.last(),
            length=path.len(),
            nodes=path.node_ids,
            edges=path.edge_ids,
            labels=path.label_sequence(),
        )

    def node_property(self, position: int, name: str, default: Any = None) -> Any:
        """Property ``name`` of the node at 1-based ``position`` along the path."""
        return self.path.graph.property_of(self.path.node(position), name, default)

    def source_property(self, name: str, default: Any = None) -> Any:
        """Property ``name`` of the source node."""
        return self.path.graph.property_of(self.source, name, default)

    def target_property(self, name: str, default: Any = None) -> Any:
        """Property ``name`` of the target node."""
        return self.path.graph.property_of(self.target, name, default)

    def to_dict(self) -> dict[str, Any]:
        """Return the binding as a plain dictionary (JSON-friendly)."""
        return {
            "source": self.source,
            "target": self.target,
            "length": self.length,
            "nodes": list(self.nodes),
            "edges": list(self.edges),
            "labels": list(self.labels),
        }


@dataclass
class BindingTable:
    """A sequence of :class:`PathBinding` rows with tabular conveniences."""

    rows: list[PathBinding] = field(default_factory=list)

    @classmethod
    def from_paths(cls, paths: Iterable[Path]) -> "BindingTable":
        """Build a table with one row per path."""
        return cls([PathBinding.from_path(path) for path in paths])

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def columns(self, *names: str) -> list[tuple]:
        """Return the requested columns as tuples (``source``, ``target``, ``length``...)."""
        return [tuple(getattr(row, name) for name in names) for row in self.rows]

    def endpoints(self) -> list[tuple[str, str]]:
        """The classical RPQ answer: the (source, target) pairs, duplicates removed, order kept."""
        seen: set[tuple[str, str]] = set()
        result = []
        for row in self.rows:
            pair = (row.source, row.target)
            if pair not in seen:
                seen.add(pair)
                result.append(pair)
        return result

    def project_properties(
        self,
        source_properties: Sequence[str] = (),
        target_properties: Sequence[str] = (),
    ) -> list[dict[str, Any]]:
        """Return one dictionary per row with the requested endpoint properties."""
        projected = []
        for row in self.rows:
            record: dict[str, Any] = {"source": row.source, "target": row.target, "length": row.length}
            for name in source_properties:
                record[f"source.{name}"] = row.source_property(name)
            for name in target_properties:
                record[f"target.{name}"] = row.target_property(name)
            projected.append(record)
        return projected

    def sort_by(self, key: Callable[[PathBinding], Any]) -> "BindingTable":
        """Return a new table with rows sorted by ``key``."""
        return BindingTable(sorted(self.rows, key=key))

    def filter(self, predicate: Callable[[PathBinding], bool]) -> "BindingTable":
        """Return a new table keeping only rows satisfying ``predicate``."""
        return BindingTable([row for row in self.rows if predicate(row)])

    def group_sizes(self) -> dict[tuple[str, str], int]:
        """Number of paths per endpoint pair (the partition sizes of γST)."""
        sizes: dict[tuple[str, str], int] = {}
        for row in self.rows:
            sizes[(row.source, row.target)] = sizes.get((row.source, row.target), 0) + 1
        return sizes


def bind_paths(paths: PathSet | Iterable[Path]) -> BindingTable:
    """Convenience wrapper: build a :class:`BindingTable` from a path set."""
    return BindingTable.from_paths(paths)


class ResultCursor:
    """A streaming, forward-only view of one query execution.

    The uniform result surface of the client API
    (:meth:`repro.api.Session.execute` and friends): iterating the cursor
    pulls result paths one at a time from the underlying executor.  Behind
    the pull-based pipeline executor that means *bounded memory* — consuming
    five rows of a huge walk query costs a few fix-point rounds, not the
    whole closure; behind the materializing executor the result is already
    complete and the cursor simply iterates it, so client code never needs to
    know which executor ran.

    DB-API-flavoured access: lazy iteration, :meth:`fetchone`,
    :meth:`fetchmany`, :meth:`fetchall`, :meth:`close` (also a context
    manager).  :meth:`bindings` is the tabular row view — a lazy stream of
    :class:`PathBinding` rows for applications that consume binding tables
    rather than path values.

    Execution metadata — :attr:`statistics`, :attr:`truncated`,
    :attr:`total_paths`, :attr:`elapsed_seconds`, the budget's
    partial-progress counters — *finalizes on close* (closing happens
    automatically when the stream is exhausted).  ``truncated`` is ``None``
    while it cannot be known yet: a pipeline cursor abandoned mid-stream has
    no way to tell whether more paths existed.

    A :class:`~repro.errors.BudgetExceeded` raised mid-stream (deadline or
    resource cap) closes the cursor, finalizes the partial-progress counters
    into :attr:`statistics`, and propagates to the consumer.

    Thread-safety: iteration is single-consumer, but :meth:`close` may be
    called from *any* thread, any number of times — the contract the network
    front-end's teardown path relies on (the event loop closes a cursor while
    an executor thread is suspended inside :meth:`fetchmany`).  One lock
    serializes each single-path pull against ``close``: a concurrent close
    waits for the in-flight pull to hand its path over, then closes the
    underlying generator exactly once (never while it is executing, which
    would raise ``ValueError``), and the interrupted ``fetchmany`` returns
    the partial batch it had.  Statistics finalize exactly once however many
    closers race.
    """

    def __init__(
        self,
        source: Iterator[Path],
        *,
        statistics: ExecutionStatistics,
        executor: str = "",
        plan: Any = None,
        optimized_plan: Any = None,
        applied_rules: Sequence[str] = (),
        cache_hit: bool = False,
        limit: int | None = None,
        budget: QueryBudget | None = None,
        truncated: bool | None = None,
        total_paths: int | None = None,
        started: float | None = None,
        phase_seconds: dict[str, float] | None = None,
        graph_version: int | None = None,
    ) -> None:
        self._source = source
        self.statistics = statistics
        self.executor = executor
        self.plan = plan
        self.optimized_plan = optimized_plan
        self.applied_rules = list(applied_rules)
        self.cache_hit = cache_hit
        self.graph_version = graph_version
        self.truncated = truncated
        self.total_paths = total_paths
        self.phase_seconds = dict(phase_seconds) if phase_seconds is not None else {}
        self.elapsed_seconds = 0.0
        self._limit = limit
        self._budget = budget
        self._started = started if started is not None else time.perf_counter()
        self._opened = time.perf_counter()
        self._returned = 0
        self._closed = False
        self._exhausted = False
        self._finalized = False
        # Serializes pulls against cross-thread close(); reentrant because a
        # pull that finishes the stream finalizes while already holding it.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> "ResultCursor":
        return self

    def __next__(self) -> Path:
        with self._lock:
            if self._closed or self._exhausted:
                raise StopIteration
            if self._limit is not None and self._returned >= self._limit:
                # The limit cut the stream; one probe pull decides whether it
                # actually mattered (mirrors PipelineExecutor's probe).
                if self.truncated is None:
                    self.truncated = next(self._source, None) is not None
                    if not self.truncated:
                        self.total_paths = self._returned
                self._finish_stream()
                raise StopIteration
            try:
                path = next(self._source)
            except StopIteration:
                if self.truncated is None:
                    self.truncated = False
                    self.total_paths = self._returned
                self._finish_stream()
                raise
            except BudgetExceeded:
                self._closed = True
                self._release_source()
                self._finalize()
                raise
            self._returned += 1
            if self._budget is not None:
                # The result-size cap applies to what the caller receives; a
                # streaming consumer trips it on the offending fetch.
                try:
                    self._budget.check_result_size(self._returned, "result")
                except BudgetExceeded:
                    self._closed = True
                    self._release_source()
                    self._finalize()
                    raise
            return path

    def _finish_stream(self) -> None:
        self._exhausted = True
        self._release_source()
        self._finalize()

    def _release_source(self) -> None:
        """Close the underlying stream so abandoned pipeline work is freed.

        A limit-stopped or mid-stream-closed cursor leaves the pipeline's
        generator chain suspended (frontier lists, seen-sets, join indexes);
        closing the root generator unwinds it immediately instead of waiting
        for garbage collection.
        """
        close_source = getattr(self._source, "close", None)
        if close_source is not None:
            close_source()

    # ------------------------------------------------------------------
    # Fetch API
    # ------------------------------------------------------------------
    def fetchone(self) -> Path | None:
        """Return the next path, or ``None`` when the stream is exhausted."""
        return next(self, None)

    def fetchmany(self, size: int = 1) -> list[Path]:
        """Return up to ``size`` further paths (fewer at the end of the stream)."""
        if size < 0:
            raise ValueError(f"fetchmany size must be >= 0, got {size}")
        batch: list[Path] = []
        while len(batch) < size:
            path = next(self, None)
            if path is None:
                break
            batch.append(path)
        return batch

    def fetchall(self) -> list[Path]:
        """Drain the remaining stream into a list (closes the cursor)."""
        return list(self)

    def bindings(self) -> Iterator[PathBinding]:
        """Lazily yield one :class:`PathBinding` row per remaining path.

        The tabular face of the cursor: each row carries the endpoint and
        group variables (nodes, edges, labels) GQL binds for a path, ready
        for JSON serialization via :meth:`PathBinding.to_dict` — this is what
        the CLI's ``--format jsonl`` streams, one row per line, without ever
        materializing the result.
        """
        for path in self:
            yield PathBinding.from_path(path)

    def to_table(self) -> BindingTable:
        """Drain the remaining stream into a :class:`BindingTable`."""
        return BindingTable(list(self.bindings()))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """``True`` once the cursor is closed (explicitly or by exhaustion)."""
        return self._closed or self._exhausted

    @property
    def rows_returned(self) -> int:
        """Number of paths handed to the consumer so far."""
        return self._returned

    def close(self) -> None:
        """Stop the stream and finalize statistics; idempotent and thread-safe.

        Abandoned upstream work is released (the pipeline's suspended
        generators are closed), and the budget's partial-progress counters
        are captured into :attr:`statistics` even when the stream was not
        consumed to the end.  Safe to call from any thread, any number of
        times, including while another thread is mid-``fetchmany``: the call
        waits for the in-flight pull to complete, so the generator is never
        closed while executing and the fetching thread sees a clean
        end-of-stream on its next pull.
        """
        with self._lock:
            if self.closed:
                return
            self._closed = True
            self._release_source()
            self._finalize()

    def _finalize(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        self.statistics.capture_budget(self._budget)
        now = time.perf_counter()
        self.phase_seconds["execute"] = (
            self.phase_seconds.get("execute", 0.0) + (now - self._opened)
        )
        self.elapsed_seconds = now - self._started

    def __enter__(self) -> "ResultCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        return (
            f"ResultCursor({state}, executor={self.executor!r}, "
            f"rows_returned={self._returned})"
        )
