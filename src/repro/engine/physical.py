"""Pipelined physical operators for path-algebra plans.

The paper separates *logical* plans (algebra expression trees) from their
*physical* realization and argues that, once an algorithm is fixed for each
operator, a reference implementation of GQL / SQL-PGQ follows.  The default
:class:`~repro.algebra.evaluator.Evaluator` materializes every intermediate
path set; this module provides the other classical execution style — a
pull-based iterator pipeline — with three practical benefits:

* **early termination** — a projection that only needs ``k`` paths per group
  stops pulling once those paths cannot change anymore (exploited for the
  ``ALL`` selector and for bare selections/joins);
* **bounded memory for streaming stages** — selections, unions and joins
  stream their inputs instead of materializing them up front (the join builds
  a hash table on its right input only);
* **per-operator counters** — the number of paths flowing across each edge of
  the plan, which the benchmarks report.

Recursive operators and solution-space operators are inherently blocking, so
they materialize internally; results are always identical to the logical
evaluator (asserted by the test suite), which is exactly the
logical/physical-equivalence property a query engine needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.algebra.expressions import (
    Difference,
    EdgesScan,
    Expression,
    GroupBy,
    Intersection,
    Join,
    NodesScan,
    OrderBy,
    Projection,
    Recursive,
    Selection,
    Union,
)
from repro.algebra.solution_space import ALL, group_by, order_by, project
from repro.errors import EvaluationError
from repro.execution import ExecutionStatistics, QueryBudget
from repro.graph.model import PropertyGraph
from repro.graph.compact import compact_core_of
from repro.paths.join_index import JoinIndex
from repro.paths.path import Path
from repro.paths.pathset import PathSet
from repro.semantics.restrictors import iter_recursive_closure

__all__ = ["PhysicalPlan", "PipelineStatistics", "build_pipeline", "execute_pipeline"]


#: Historical name of the pipeline's statistics; the counters are now shared
#: with the materializing evaluator (see :mod:`repro.execution`).
PipelineStatistics = ExecutionStatistics


class _PhysicalOperator:
    """Base class of physical operators: an iterator factory over paths.

    Every operator carries the (possibly ``None``) :class:`QueryBudget` of
    the pipeline; :meth:`_emit` charges each path crossing the operator's
    output boundary against it, so a budgeted pipeline is killed within one
    check interval no matter which operator is doing the work.
    """

    def __init__(
        self,
        name: str,
        statistics: PipelineStatistics,
        budget: QueryBudget | None = None,
    ) -> None:
        self.name = name
        self.statistics = statistics
        self.statistics.register_operator(name)
        self._budget = budget
        self._pending = 0

    def paths(self) -> Iterator[Path]:
        """Yield result paths one at a time."""
        raise NotImplementedError

    def _emit(self, path: Path) -> Path:
        self.statistics.count(self.name)
        if self._budget is not None:
            # Batched like every other charging site: an early-terminated
            # stream leaves at most one partial batch per operator
            # unaccounted, the same granularity the caps promise anyway.
            self._pending += 1
            if self._pending >= QueryBudget.CHARGE_BATCH:
                self._budget.charge(self._pending, self.name)
                self._pending = 0
        return path


class _NodesScanOp(_PhysicalOperator):
    def __init__(
        self,
        graph: PropertyGraph,
        statistics: PipelineStatistics,
        budget: QueryBudget | None = None,
    ) -> None:
        super().__init__("Nodes(G)", statistics, budget)
        self._graph = graph

    def paths(self) -> Iterator[Path]:
        compact = compact_core_of(self._graph)
        if compact is not None:
            for path in compact.iter_node_paths(self._graph):
                yield self._emit(path)
            return
        for node_id in self._graph.node_ids():
            yield self._emit(Path.from_node(self._graph, node_id))


class _EdgesScanOp(_PhysicalOperator):
    def __init__(
        self,
        graph: PropertyGraph,
        statistics: PipelineStatistics,
        budget: QueryBudget | None = None,
    ) -> None:
        super().__init__("Edges(G)", statistics, budget)
        self._graph = graph

    def paths(self) -> Iterator[Path]:
        compact = compact_core_of(self._graph)
        if compact is not None:
            for path in compact.iter_edge_paths(self._graph):
                yield self._emit(path)
            return
        for edge_id in self._graph.edge_ids():
            yield self._emit(Path.from_edge(self._graph, edge_id))


class _FilterOp(_PhysicalOperator):
    def __init__(
        self,
        expression: Selection,
        child: _PhysicalOperator,
        statistics: PipelineStatistics,
        budget: QueryBudget | None = None,
    ) -> None:
        super().__init__(f"σ[{expression.condition}]", statistics, budget)
        self._condition = expression.condition
        self._child = child

    def paths(self) -> Iterator[Path]:
        for path in self._child.paths():
            if self._condition.evaluate(path):
                yield self._emit(path)


class _HashJoinOp(_PhysicalOperator):
    """Streaming hash join: builds on the right input, probes with the left."""

    def __init__(
        self,
        left: _PhysicalOperator,
        right: _PhysicalOperator,
        statistics: PipelineStatistics,
        budget: QueryBudget | None = None,
    ) -> None:
        super().__init__("⋈", statistics, budget)
        self._left = left
        self._right = right

    def paths(self) -> Iterator[Path]:
        index = JoinIndex(self._right.paths())
        seen: set[Path] = set()
        for left_path in self._left.paths():
            for joined in index.join_from(left_path):
                if joined not in seen:
                    seen.add(joined)
                    yield self._emit(joined)


class _UnionOp(_PhysicalOperator):
    def __init__(
        self,
        left: _PhysicalOperator,
        right: _PhysicalOperator,
        statistics: PipelineStatistics,
        budget: QueryBudget | None = None,
    ) -> None:
        super().__init__("∪", statistics, budget)
        self._left = left
        self._right = right

    def paths(self) -> Iterator[Path]:
        seen: set[Path] = set()
        for source in (self._left, self._right):
            for path in source.paths():
                if path not in seen:
                    seen.add(path)
                    yield self._emit(path)


class _IntersectionOp(_PhysicalOperator):
    def __init__(
        self,
        left: _PhysicalOperator,
        right: _PhysicalOperator,
        statistics: PipelineStatistics,
        budget: QueryBudget | None = None,
    ) -> None:
        super().__init__("∩", statistics, budget)
        self._left = left
        self._right = right

    def paths(self) -> Iterator[Path]:
        right_paths = set(self._right.paths())
        seen: set[Path] = set()
        for path in self._left.paths():
            if path in right_paths and path not in seen:
                seen.add(path)
                yield self._emit(path)


class _DifferenceOp(_PhysicalOperator):
    def __init__(
        self,
        left: _PhysicalOperator,
        right: _PhysicalOperator,
        statistics: PipelineStatistics,
        budget: QueryBudget | None = None,
    ) -> None:
        super().__init__("∖", statistics, budget)
        self._left = left
        self._right = right

    def paths(self) -> Iterator[Path]:
        right_paths = set(self._right.paths())
        seen: set[Path] = set()
        for path in self._left.paths():
            if path not in right_paths and path not in seen:
                seen.add(path)
                yield self._emit(path)


class _RecursiveOp(_PhysicalOperator):
    """Materializes its input, then *streams* the fix-point closure round by round.

    The input must be materialized (every frontier round joins against the
    full base), but the closure itself is produced through
    :func:`~repro.semantics.restrictors.iter_recursive_closure`: each newly
    discovered path is yielded immediately, so a limited pull (LIMIT
    pushdown, a :class:`~repro.engine.results.ResultCursor` consuming a few
    rows) suspends the fix point instead of paying for the whole closure.
    SHORTEST remains blocking inside the iterator (domination is a global
    property of the closure).
    """

    def __init__(
        self,
        expression: Recursive,
        child: _PhysicalOperator,
        statistics: PipelineStatistics,
        default_max_length: int | None,
        budget: QueryBudget | None = None,
    ) -> None:
        super().__init__(expression.operator_name(), statistics, budget)
        self._expression = expression
        self._child = child
        self._default_max_length = default_max_length

    def paths(self) -> Iterator[Path]:
        # Every upstream operator deduplicates while streaming, so the base
        # can be bulk-materialized without re-probing each path; the join
        # index over it is built once and shared by all fix-point rounds.
        base = PathSet.from_unique(self._child.paths())
        max_length = self._expression.max_length
        if max_length is None:
            max_length = self._default_max_length
        # The int closure builds its own IntJoinIndex over the encoded base;
        # only build the object index when the closure will run object-side.
        if len(base) and compact_core_of(next(iter(base)).graph) is not None:
            join_index = None
        else:
            join_index = JoinIndex(base)
        closure = iter_recursive_closure(
            base,
            self._expression.restrictor,
            max_length,
            join_index=join_index,
            budget=self._budget,
        )
        for path in closure:
            yield self._emit(path)


class _SolutionSpaceOp(_PhysicalOperator):
    """Operator covering GroupBy / OrderBy / Projection chains.

    A projection over (order-by over) group-by is executed as one unit so the
    projection limits can be applied without materializing more than the
    grouped structure requires.  The chain is inherently blocking *only when
    a projection can actually drop paths*: a chain whose projections keep
    everything (``ALL PARTITIONS ALL GROUPS ALL PATHS`` — the plan shape of
    the GQL ``ALL`` selector) returns exactly the child's path set, so it
    streams the child through untouched instead of materializing it.
    """

    def __init__(
        self,
        expression: Projection | GroupBy | OrderBy,
        child: _PhysicalOperator,
        pipeline: list[Expression],
        statistics: PipelineStatistics,
        budget: QueryBudget | None = None,
    ) -> None:
        super().__init__(expression.operator_name(), statistics, budget)
        self._child = child
        self._pipeline = pipeline

    def _streams_through(self) -> bool:
        """``True`` when the chain provably keeps every child path *in order*.

        Group-by only restructures the solution space, so the path set — and
        the order paths stream out in — survives it.  Two stages force the
        blocking path: a projection with a numeric component (it drops
        paths), and an order-by (it defines a caller-visible ordering that a
        pass-through would silently discard).
        """
        for stage in self._pipeline:
            if isinstance(stage, OrderBy):
                return False
            if isinstance(stage, Projection):
                spec = stage.spec
                if not (spec.partitions == ALL and spec.groups == ALL and spec.paths == ALL):
                    return False
        return True

    def paths(self) -> Iterator[Path]:
        if self._streams_through():
            for path in self._child.paths():
                yield self._emit(path)
            return
        current = PathSet.from_unique(self._child.paths())
        space = None
        for stage in self._pipeline:
            if isinstance(stage, GroupBy):
                space = group_by(current, stage.key)
            elif isinstance(stage, OrderBy):
                if space is None:
                    raise EvaluationError("order-by requires a group-by below it")
                space = order_by(space, stage.key)
            elif isinstance(stage, Projection):
                if space is None:
                    space = group_by(current)
                current = project(space, stage.spec)
                space = None
        if space is not None:
            current = space.all_paths()
        for path in current:
            yield self._emit(path)


@dataclass
class PhysicalPlan:
    """A compiled physical pipeline ready for execution."""

    root: _PhysicalOperator
    statistics: PipelineStatistics
    logical_plan: Expression

    def execute(self) -> PathSet:
        """Run the pipeline to completion and return the result paths.

        Physical operators deduplicate while streaming, so the root's output
        is bulk-collected without a second round of dedup probes.
        """
        return PathSet.from_unique(self.root.paths())

    def stream(self, limit: int | None = None) -> Iterator[Path]:
        """Yield result paths lazily; stop after ``limit`` paths when given."""
        if limit is not None and limit <= 0:
            return
        produced = 0
        for path in self.root.paths():
            yield path
            produced += 1
            if limit is not None and produced >= limit:
                return


def build_pipeline(
    plan: Expression,
    graph: PropertyGraph,
    default_max_length: int | None = None,
    budget: QueryBudget | None = None,
) -> PhysicalPlan:
    """Compile a logical plan into a pull-based physical pipeline.

    A :class:`QueryBudget` is shared by every operator of the pipeline; each
    path crossing any operator boundary is charged against it.
    """
    statistics = PipelineStatistics()
    root = _build(plan, graph, statistics, default_max_length, budget)
    return PhysicalPlan(root=root, statistics=statistics, logical_plan=plan)


def execute_pipeline(
    plan: Expression,
    graph: PropertyGraph,
    default_max_length: int | None = None,
) -> PathSet:
    """Compile and run a physical pipeline for ``plan`` over ``graph``."""
    return build_pipeline(plan, graph, default_max_length).execute()


def _build(
    plan: Expression,
    graph: PropertyGraph,
    statistics: PipelineStatistics,
    default_max_length: int | None,
    budget: QueryBudget | None = None,
) -> _PhysicalOperator:
    if isinstance(plan, NodesScan):
        return _NodesScanOp(graph, statistics, budget)
    if isinstance(plan, EdgesScan):
        return _EdgesScanOp(graph, statistics, budget)
    if isinstance(plan, Selection):
        return _FilterOp(
            plan,
            _build(plan.child, graph, statistics, default_max_length, budget),
            statistics,
            budget,
        )
    if isinstance(plan, Join):
        return _HashJoinOp(
            _build(plan.left, graph, statistics, default_max_length, budget),
            _build(plan.right, graph, statistics, default_max_length, budget),
            statistics,
            budget,
        )
    if isinstance(plan, Union):
        return _UnionOp(
            _build(plan.left, graph, statistics, default_max_length, budget),
            _build(plan.right, graph, statistics, default_max_length, budget),
            statistics,
            budget,
        )
    if isinstance(plan, Intersection):
        return _IntersectionOp(
            _build(plan.left, graph, statistics, default_max_length, budget),
            _build(plan.right, graph, statistics, default_max_length, budget),
            statistics,
            budget,
        )
    if isinstance(plan, Difference):
        return _DifferenceOp(
            _build(plan.left, graph, statistics, default_max_length, budget),
            _build(plan.right, graph, statistics, default_max_length, budget),
            statistics,
            budget,
        )
    if isinstance(plan, Recursive):
        return _RecursiveOp(
            plan,
            _build(plan.child, graph, statistics, default_max_length, budget),
            statistics,
            default_max_length,
            budget,
        )
    if isinstance(plan, (GroupBy, OrderBy, Projection)):
        pipeline, base = _collect_solution_space_pipeline(plan)
        child = _build(base, graph, statistics, default_max_length, budget)
        return _SolutionSpaceOp(plan, child, pipeline, statistics, budget)
    raise EvaluationError(f"cannot build a physical operator for {type(plan).__name__}")


def _collect_solution_space_pipeline(plan: Expression) -> tuple[list[Expression], Expression]:
    """Collect a maximal GroupBy/OrderBy/Projection chain and return (stages bottom-up, base plan)."""
    stages: list[Expression] = []
    node: Expression = plan
    while isinstance(node, (GroupBy, OrderBy, Projection)):
        stages.append(node)
        node = node.child
    stages.reverse()
    return stages, node
