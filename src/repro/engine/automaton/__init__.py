"""Product-graph automaton evaluation (graph × NFA), the third executor.

The paper's automaton semantics — evaluate a regular path query by searching
the product of the graph with the Thompson NFA of the regex — previously
lived only in the differential baseline (:mod:`repro.baselines.automaton_eval`).
This package promotes it to a first-class :class:`AutomatonExecutor` behind
the engine's cost-based selection, with a streaming ϕShortest (witnesses per
endpoint pair as soon as their BFS level completes), an int-encoded fast path
over frozen :class:`~repro.graph.compact.CompactGraph` cores, and full
:class:`~repro.execution.QueryBudget` integration.
"""

from repro.engine.automaton.decompile import (
    AutomatonPlan,
    classify_plan,
    decompile_plan,
    plan_supported,
)
from repro.engine.automaton.executor import AutomatonExecutor, stream_product_paths

__all__ = [
    "AutomatonExecutor",
    "AutomatonPlan",
    "classify_plan",
    "decompile_plan",
    "plan_supported",
    "stream_product_paths",
]
