"""Lazy product-graph search over ``graph × NFA`` (object-path route).

Evaluates the shapes recognized by :mod:`repro.engine.automaton.decompile`
directly on the product of the property graph with the Thompson NFA of the
decompiled regex, instead of composing materialized path sets:

* ``"walks"`` — depth-first enumeration of all walks whose label word the
  (star-free) regex accepts; the regex's maximum word length bounds the
  search, so no closure machinery is needed.
* ``"closure"`` under ϕWalk / ϕTrail / ϕAcyclic / ϕSimple — the same
  enumeration against *two* NFAs tracked jointly: ``NFA(R+)`` (compositions,
  bounded by ``max_length``) and ``NFA(R)`` (single base segments, which the
  closure includes regardless of the bound).  Restrictor predicates prune
  edge-by-edge: every prefix of a trail is a trail, every prefix of an
  acyclic path is acyclic, and a simple path is an acyclic prefix that may
  close on its first node once.
* ``"closure"`` under ϕShortest — a *level-synchronized* BFS across all
  sources at once over ``NFA(R+)``.  Every product state stores all its
  predecessors at the previous level, so when level ``d`` completes, each
  endpoint pair first reached at distance ``d`` is final and **all** of its
  minimal witnesses are emitted immediately — this is what makes SHORTEST
  stream instead of blocking on the whole closure.

Each walk corresponds to exactly one determinized product trace, so the
enumeration is duplicate-free by construction and the results feed
``PathSet.from_unique`` directly.

Every generator charges the :class:`~repro.execution.QueryBudget` in
``CHARGE_BATCH`` steps with per-level checkpoints, so budget kills carry
partial progress exactly like the closure strategies do.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.automaton.decompile import AutomatonPlan
from repro.execution import QueryBudget
from repro.graph.model import PropertyGraph
from repro.paths.path import Path
from repro.rpq.ast import Plus, RegexNode
from repro.rpq.automaton import NFA, build_nfa
from repro.semantics.restrictors import Restrictor

__all__ = ["iter_product_plan"]

#: Budget labels for the product search (mirrors the ϕ-closure conventions).
_PRODUCT_LABEL = "automaton-product"
_WITNESS_LABEL = "automaton-witness"


class _BudgetMeter:
    """Batched charge helper shared by every product-search loop."""

    __slots__ = ("budget", "pending", "batch")

    def __init__(self, budget: QueryBudget | None) -> None:
        self.budget = budget
        self.pending = 0
        self.batch = QueryBudget.CHARGE_BATCH

    def tick(self, label: str = _PRODUCT_LABEL) -> None:
        if self.budget is None:
            return
        self.pending += 1
        if self.pending >= self.batch:
            self.budget.charge(self.pending, label)
            self.pending = 0

    def checkpoint(self, label: str, depth: int | None = None) -> None:
        if self.budget is None:
            return
        if self.pending:
            self.budget.charge(self.pending, label)
            self.pending = 0
        if depth is not None:
            self.budget.note_depth(depth)
        self.budget.checkpoint(label, depth=depth)

    def flush(self, label: str = _PRODUCT_LABEL) -> None:
        if self.budget is not None and self.pending:
            self.budget.charge(self.pending, label)
            self.pending = 0


class _CachedNFA:
    """Memoizes ``step`` and ``is_accepting`` over determinized state sets.

    The product search revisits the same (state set, label) transition once
    per *graph* edge, but only a handful of distinct determinized sets ever
    arise — caching turns the per-edge epsilon closures into dict lookups.
    """

    __slots__ = ("nfa", "steps", "accepting")

    def __init__(self, nfa: NFA) -> None:
        self.nfa = nfa
        self.steps: dict[tuple[frozenset, str | None], frozenset] = {}
        self.accepting: dict[frozenset, bool] = {}

    def initial(self) -> frozenset:
        return self.nfa.initial_states()

    def step(self, states: frozenset, label: str | None) -> frozenset:
        key = (states, label)
        hit = self.steps.get(key)
        if hit is None:
            hit = self.steps[key] = self.nfa.step(states, label)
        return hit

    def accepts(self, states: frozenset) -> bool:
        hit = self.accepting.get(states)
        if hit is None:
            hit = self.accepting[states] = self.nfa.is_accepting(states)
        return hit


def _adjacency(graph: PropertyGraph) -> dict[str, tuple[tuple[str | None, str, str], ...]]:
    """Per-node ``(label, edge id, target)`` triples, fetched once per search."""
    return {
        node_id: tuple(
            (edge.label, edge.id, edge.target) for edge in graph.out_edges(node_id)
        )
        for node_id in graph.node_ids()
    }


def iter_product_plan(
    graph: PropertyGraph, spec: AutomatonPlan, budget: QueryBudget | None = None
) -> Iterator[Path]:
    """Stream the result paths of a classified plan shape."""
    if spec.kind == "walks":
        yield from _iter_walks(graph, spec.regex, spec.max_length, budget)
        return
    if spec.kind == "closure_with_nodes":
        # The R* compile shape unions NodesScan *after* the closure, so every
        # node path joins the result unconditionally; emit them first (they
        # are free) and suppress the closure's own zero-length duplicates.
        zero_emitted = set()
        for node_id in graph.node_ids():
            zero_emitted.add(node_id)
            yield Path.from_node(graph, node_id)
        for path in _iter_closure(graph, spec, budget):
            if path.len() == 0 and path.first() in zero_emitted:
                continue
            yield path
        return
    yield from _iter_closure(graph, spec, budget)


def _iter_closure(
    graph: PropertyGraph, spec: AutomatonPlan, budget: QueryBudget | None
) -> Iterator[Path]:
    if spec.restrictor is Restrictor.SHORTEST:
        yield from _iter_shortest(graph, spec.regex, spec.max_length, budget)
    else:
        yield from _iter_restricted_closure(
            graph, spec.regex, spec.restrictor, spec.max_length, budget
        )


def _iter_walks(
    graph: PropertyGraph,
    regex: RegexNode,
    depth_cap: int | None,
    budget: QueryBudget | None,
) -> Iterator[Path]:
    """All walks whose label word is accepted by a star-free ``regex``."""
    nfa = _CachedNFA(build_nfa(regex))
    init = nfa.initial()
    adj = _adjacency(graph)
    meter = _BudgetMeter(budget)
    cap = depth_cap if depth_cap is not None else 0
    for source in graph.node_ids():
        meter.checkpoint(_PRODUCT_LABEL)
        if nfa.accepts(init):
            meter.tick()
            yield Path.from_node(graph, source)
        stack = [(source, init, (source,), ())]
        while stack:
            node, states, nodes, edges = stack.pop()
            if len(edges) >= cap:
                continue
            for label, edge_id, target in adj[node]:
                moved = nfa.step(states, label)
                if not moved:
                    continue
                meter.tick()
                child = (target, moved, nodes + (target,), edges + (edge_id,))
                if nfa.accepts(moved):
                    yield Path._unchecked(graph, child[2], child[3])
                stack.append(child)
    meter.flush()


def _iter_restricted_closure(
    graph: PropertyGraph,
    regex: RegexNode,
    restrictor: Restrictor,
    max_length: int | None,
    budget: QueryBudget | None,
) -> Iterator[Path]:
    """ϕWalk/ϕTrail/ϕAcyclic/ϕSimple closure of the base set ``L(regex)``.

    Tracks two NFA state sets per product state: ``plus`` over ``L(R+)`` for
    compositions (live only while the bound permits another emission) and
    ``base`` over ``L(R)`` for single segments, which the closure admits at
    any length — the star-free base automaton dies out on its own.  A path is
    emitted when either automaton accepts it within its regime.
    """
    nfa_plus = _CachedNFA(build_nfa(Plus(regex)))
    nfa_base = _CachedNFA(build_nfa(regex))
    init_plus = nfa_plus.initial()
    init_base = nfa_base.initial()
    adj = _adjacency(graph)
    empty: frozenset[int] = frozenset()
    bound = max_length  # None means unbounded compositions (pruned modes only)
    trail = restrictor is Restrictor.TRAIL
    acyclic = restrictor is Restrictor.ACYCLIC
    simple = restrictor is Restrictor.SIMPLE
    meter = _BudgetMeter(budget)
    for source in graph.node_ids():
        meter.checkpoint(_PRODUCT_LABEL)
        if nfa_base.accepts(init_base) or (
            nfa_plus.accepts(init_plus) and (bound is None or bound >= 0)
        ):
            meter.tick()
            yield Path.from_node(graph, source)
        visited = frozenset((source,)) if (acyclic or simple) else frozenset()
        # entry: (node, plus states, base states, nodes, edges, visited, closed)
        stack = [(source, init_plus, init_base, (source,), (), visited, False)]
        while stack:
            node, plus, base, nodes, edges, visited, closed = stack.pop()
            if closed:
                # A closed simple path (first == last) cannot be extended:
                # any further node would revisit the shared endpoint.
                continue
            length = len(edges)
            plus_alive = plus and (bound is None or length < bound)
            for label, edge_id, target in adj[node]:
                if trail:
                    if edge_id in visited:
                        continue
                    child_visited = visited | {edge_id}
                    child_closed = False
                elif acyclic:
                    if target in visited:
                        continue
                    child_visited = visited | {target}
                    child_closed = False
                elif simple:
                    if target in visited and target != nodes[0]:
                        continue
                    child_closed = target == nodes[0]
                    child_visited = visited if child_closed else visited | {target}
                else:
                    child_visited = visited
                    child_closed = False
                next_plus = nfa_plus.step(plus, label) if plus_alive else empty
                next_base = nfa_base.step(base, label) if base else empty
                if not next_plus and not next_base:
                    continue
                meter.tick()
                child_nodes = nodes + (target,)
                child_edges = edges + (edge_id,)
                if nfa_base.accepts(next_base) or (
                    nfa_plus.accepts(next_plus)
                    and (bound is None or len(child_edges) <= bound)
                ):
                    yield Path._unchecked(graph, child_nodes, child_edges)
                stack.append(
                    (
                        target,
                        next_plus,
                        next_base,
                        child_nodes,
                        child_edges,
                        child_visited,
                        child_closed,
                    )
                )
    meter.flush()


def _iter_shortest(
    graph: PropertyGraph,
    regex: RegexNode,
    max_length: int | None,
    budget: QueryBudget | None,
) -> Iterator[Path]:
    """Streaming ϕShortest: all minimal witnesses per endpoint pair.

    Level-synchronized BFS over ``(source, node, states)`` product states for
    every source simultaneously.  ``preds`` stores *all* incoming
    ``(predecessor state, edge)`` arcs at ``distance - 1``, forming a DAG
    whose source-to-state traces are exactly the minimal walks; once a level
    is fully expanded, every pair first reached in it is final and its
    witnesses are yielded before deeper levels are explored.
    """
    nfa = _CachedNFA(build_nfa(Plus(regex)))
    init = nfa.initial()
    adj = _adjacency(graph)
    meter = _BudgetMeter(budget)
    dist: dict[tuple, int] = {}
    preds: dict[tuple, list] = {}
    finalized: set[tuple[str, str]] = set()
    frontier: list[tuple] = []
    for source in graph.node_ids():
        key = (source, source, init)
        dist[key] = 0
        preds[key] = []
        frontier.append(key)
    accepts = nfa.accepts

    depth = 0
    while frontier:
        meter.checkpoint(_PRODUCT_LABEL, depth=depth)
        # Finalize pairs whose first accepting state appears in this level.
        ready: dict[tuple[str, str], list[tuple]] = {}
        for key in frontier:
            if not accepts(key[2]):
                continue
            pair = (key[0], key[1])
            if pair in finalized:
                continue
            ready.setdefault(pair, []).append(key)
        for pair, keys in ready.items():
            finalized.add(pair)
            for key in keys:
                yield from _witness_paths(graph, key, dist, preds, meter)
        if max_length is not None and depth >= max_length:
            break
        next_frontier: list[tuple] = []
        next_depth = depth + 1
        step = nfa.step
        for key in frontier:
            source, node, states = key
            for label, edge_id, target in adj[node]:
                moved = step(states, label)
                if not moved:
                    continue
                meter.tick()
                child = (source, target, moved)
                seen = dist.get(child)
                if seen is None:
                    dist[child] = next_depth
                    preds[child] = [(key, edge_id)]
                    next_frontier.append(child)
                elif seen == next_depth:
                    preds[child].append((key, edge_id))
                # seen < next_depth: already reached strictly earlier — any
                # walk through this arc is non-minimal, drop it.
        frontier = next_frontier
        depth = next_depth
    meter.flush()


def _witness_paths(
    graph: PropertyGraph,
    key: tuple,
    dist: dict[tuple, int],
    preds: dict[tuple, list],
    meter: _BudgetMeter,
) -> Iterator[Path]:
    """Enumerate every minimal walk ending in product state ``key``."""
    if dist[key] == 0:
        meter.tick(_WITNESS_LABEL)
        yield Path.from_node(graph, key[1])
        return
    # Backward DFS over the predecessor DAG; suffixes accumulate reversed.
    stack = [(key, (key[1],), ())]
    while stack:
        state, rev_nodes, rev_edges = stack.pop()
        if dist[state] == 0:
            meter.tick(_WITNESS_LABEL)
            yield Path._unchecked(graph, rev_nodes[::-1], rev_edges[::-1])
            continue
        for prev, edge_id in preds[state]:
            stack.append((prev, rev_nodes + (prev[1],), rev_edges + (edge_id,)))
