"""Frozen-graph fast path: product BFS over CompactGraph CSR columns.

When the query graph is backed by a current :class:`~repro.graph.compact.
CompactGraph` core, the streaming ϕShortest product search runs int-encoded
(pairing with :mod:`repro.semantics.int_closure`): nodes and edges are dense
CSR indexes, NFA state sets are interned to small ints with a memoized
``(state-set, label-code) → state-set`` transition table, and witnesses stay
integer sequences until the moment they decode to :class:`Path` objects for
emission.  Semantics are identical to the object route in
:mod:`repro.engine.automaton.product` — the differential suite pins the two
together — only the representation changes.

SHORTEST is the mode the executor exists for (ROADMAP item 3), so it is the
one with a dedicated int route; the bounded walk/pruned enumerations stay on
the object path even for frozen graphs.
"""

from __future__ import annotations

from typing import Iterator

from repro.execution import QueryBudget
from repro.paths.path import Path
from repro.rpq.ast import Plus, RegexNode
from repro.rpq.automaton import build_nfa

from repro.engine.automaton.product import _PRODUCT_LABEL, _WITNESS_LABEL, _BudgetMeter

__all__ = ["iter_shortest_compact"]


class _InternedNFA:
    """NFA state sets interned to ints, with a memoized step table."""

    __slots__ = ("nfa", "sets", "ids", "steps", "accepting", "compact")

    def __init__(self, regex: RegexNode, compact) -> None:
        self.nfa = build_nfa(Plus(regex))
        self.sets: list[frozenset[int]] = []
        self.ids: dict[frozenset[int], int] = {}
        self.steps: dict[tuple[int, int], int] = {}
        self.accepting: list[bool] = []
        self.compact = compact

    def intern(self, states: frozenset[int]) -> int:
        sid = self.ids.get(states)
        if sid is None:
            sid = self.ids[states] = len(self.sets)
            self.sets.append(states)
            self.accepting.append(self.nfa.is_accepting(states))
        return sid

    def initial(self) -> int:
        return self.intern(self.nfa.initial_states())

    def step(self, sid: int, label_code: int) -> int:
        """Interned id of ``step(sets[sid], label)``; ``-1`` when dead."""
        key = (sid, label_code)
        hit = self.steps.get(key)
        if hit is None:
            moved = self.nfa.step(self.sets[sid], self.compact.label_for_code(label_code))
            hit = self.steps[key] = self.intern(moved) if moved else -1
        return hit


def iter_shortest_compact(
    graph,
    compact,
    regex: RegexNode,
    max_length: int | None,
    budget: QueryBudget | None,
) -> Iterator[Path]:
    """Streaming ϕShortest over the CSR core; same algorithm as the object
    route's ``_iter_shortest``, on int product states ``(src, node, sid)``."""
    infa = _InternedNFA(regex, compact)
    init = infa.initial()
    meter = _BudgetMeter(budget)
    edge_labels = compact._edge_labels
    num_nodes = compact.node_count()
    dist: dict[tuple[int, int, int], int] = {}
    preds: dict[tuple[int, int, int], list] = {}
    finalized: set[int] = set()  # packed (source << 32) | target pairs
    frontier: list[tuple[int, int, int]] = []
    for source in range(num_nodes):
        key = (source, source, init)
        dist[key] = 0
        preds[key] = []
        frontier.append(key)

    nget = compact._node_ids.__getitem__
    eget = compact._edge_ids.__getitem__
    unchecked = Path._unchecked

    def witnesses(key: tuple[int, int, int]) -> Iterator[Path]:
        if dist[key] == 0:
            meter.tick(_WITNESS_LABEL)
            yield Path.from_node(graph, nget(key[1]))
            return
        stack = [(key, (key[1],), ())]
        while stack:
            state, rev_nodes, rev_edges = stack.pop()
            if dist[state] == 0:
                meter.tick(_WITNESS_LABEL)
                yield unchecked(
                    graph,
                    tuple(map(nget, rev_nodes[::-1])),
                    tuple(map(eget, rev_edges[::-1])),
                )
                continue
            for prev, edge_index in preds[state]:
                stack.append((prev, rev_nodes + (prev[1],), rev_edges + (edge_index,)))

    depth = 0
    while frontier:
        meter.checkpoint(_PRODUCT_LABEL, depth=depth)
        ready: dict[int, list[tuple[int, int, int]]] = {}
        for key in frontier:
            if not infa.accepting[key[2]]:
                continue
            pair = (key[0] << 32) | key[1]
            if pair in finalized:
                continue
            ready.setdefault(pair, []).append(key)
        for pair, keys in ready.items():
            finalized.add(pair)
            for key in keys:
                yield from witnesses(key)
        if max_length is not None and depth >= max_length:
            break
        next_frontier: list[tuple[int, int, int]] = []
        next_depth = depth + 1
        step = infa.step
        for key in frontier:
            source, node, sid = key
            edges, targets, start, end = compact.out_slice(node)
            for i in range(start, end):
                edge_index = edges[i]
                moved = step(sid, edge_labels[edge_index])
                if moved < 0:
                    continue
                meter.tick()
                child = (source, targets[i], moved)
                seen = dist.get(child)
                if seen is None:
                    dist[child] = next_depth
                    preds[child] = [(key, edge_index)]
                    next_frontier.append(child)
                elif seen == next_depth:
                    preds[child].append((key, edge_index))
        frontier = next_frontier
        depth = next_depth
    meter.flush()
