"""The product-graph automaton executor (third member of the executor layer).

``AutomatonExecutor`` evaluates the plan shapes of
:func:`~repro.engine.automaton.decompile.classify_plan` by lazy search over
``graph × NFA`` — see :mod:`repro.engine.automaton.product`.  Plans outside
the native envelope delegate to the materializing evaluator, so an explicit
``executor="automaton"`` request is always safe: results are identical on
every plan, only the evaluation strategy differs.  ``statistics.executor``
reports ``"automaton"`` either way (the strategy the caller addressed);
``operator_calls`` reveals which route ran.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator

from repro.algebra.expressions import Expression
from repro.engine.automaton.decompile import AutomatonPlan, classify_plan
from repro.engine.automaton.int_product import iter_shortest_compact
from repro.engine.automaton.product import iter_product_plan
from repro.engine.executor import ExecutionResult, MaterializeExecutor
from repro.engine.footprint import plan_footprint
from repro.execution import ExecutionStatistics, QueryBudget
from repro.graph.compact import compact_core_of
from repro.graph.delta import QueryFootprint
from repro.graph.model import PropertyGraph
from repro.paths.path import Path
from repro.paths.pathset import PathSet
from repro.semantics.restrictors import Restrictor

__all__ = ["AutomatonExecutor", "stream_product_paths"]


def stream_product_paths(
    graph: PropertyGraph, spec: AutomatonPlan, budget: QueryBudget | None
) -> Iterator[Path]:
    """Stream the result of a classified plan, routing ϕShortest closures to
    the int-encoded CSR search when a compact core is current."""
    if spec.restrictor is Restrictor.SHORTEST and spec.kind in (
        "closure",
        "closure_with_nodes",
    ):
        compact = compact_core_of(graph)
        if compact is not None:
            closure = iter_shortest_compact(
                graph, compact, spec.regex, spec.max_length, budget
            )
            if spec.kind == "closure":
                return closure
            return _nodes_then_closure(graph, closure)
    return iter_product_plan(graph, spec, budget)


def _nodes_then_closure(
    graph: PropertyGraph, closure: Iterator[Path]
) -> Iterator[Path]:
    """The ``closure ∪ NodesScan`` union, zero-length duplicates suppressed."""
    zero_emitted = set()
    for node_id in graph.node_ids():
        zero_emitted.add(node_id)
        yield Path.from_node(graph, node_id)
    for path in closure:
        if path.len() == 0 and path.first() in zero_emitted:
            continue
        yield path


class AutomatonExecutor:
    """Executor backed by lazy BFS/Dijkstra over the product automaton.

    SHORTEST closures stream: witnesses for an endpoint pair are emitted the
    moment their distance level completes, so a cursor sees first rows while
    deeper levels are still unexplored.  A ``limit`` therefore stops the
    search early, exactly like the pipeline executor.
    """

    name = "automaton"

    def execute(
        self,
        plan: Expression,
        graph: PropertyGraph,
        *,
        default_max_length: int | None = None,
        limit: int | None = None,
        budget: QueryBudget | None = None,
        footprint: QueryFootprint | None = None,
    ) -> ExecutionResult:
        spec = classify_plan(plan, default_max_length)
        if spec is None:
            result = MaterializeExecutor().execute(
                plan,
                graph,
                default_max_length=default_max_length,
                limit=limit,
                budget=budget,
                footprint=footprint,
            )
            result.statistics.executor = self.name
            return result
        statistics = ExecutionStatistics()
        statistics.executor = self.name
        statistics.footprint = (
            footprint if footprint is not None else plan_footprint(plan)
        )
        stream = stream_product_paths(graph, spec, budget)
        if limit is None:
            paths = PathSet.from_unique(stream)
            statistics.record("automaton-product", len(paths))
            if budget is not None:
                budget.check_result_size(len(paths), "result")
                statistics.capture_budget(budget)
            return ExecutionResult(
                paths=paths, statistics=statistics, total_paths=len(paths)
            )
        paths = PathSet.from_unique(islice(stream, max(limit, 0)))
        # Same one-pull probe as the pipeline executor: exhausting the stream
        # here means the limit did not actually cut anything off.
        truncated = next(stream, None) is not None
        close = getattr(stream, "close", None)
        if close is not None:
            close()
        statistics.record("automaton-product", len(paths))
        if budget is not None:
            budget.check_result_size(len(paths), "result")
            statistics.capture_budget(budget)
        return ExecutionResult(
            paths=paths,
            statistics=statistics,
            truncated=truncated,
            total_paths=None if truncated else len(paths),
        )

    def stream(
        self,
        plan: Expression,
        graph: PropertyGraph,
        *,
        default_max_length: int | None = None,
        budget: QueryBudget | None = None,
    ) -> Iterator[Path] | None:
        """A lazy path stream for cursors, or ``None`` if the plan needs the
        materializing fallback (the caller then runs :meth:`execute`)."""
        spec = classify_plan(plan, default_max_length)
        if spec is None:
            return None
        return stream_product_paths(graph, spec, budget)
