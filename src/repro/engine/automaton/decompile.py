"""Plan → regex decompiler and native-shape classifier.

The automaton executor evaluates queries on the product of graph × NFA, which
computes *word-level* semantics: a path qualifies iff its label word is in the
regex language (optionally pruned by a restrictor predicate).  The algebra's
``Recursive`` operator instead composes whole sub-paths, and the two notions
coincide only for specific plan shapes — exactly the shapes
:mod:`repro.rpq.compile` emits for regular path queries.  This module
recognizes those shapes by *decompiling* a plan back into the regex it was
compiled from; anything that fails to decompile is reported as unsupported and
the executor falls back to the materializing evaluator, so parity is never at
risk on exotic plans.

Supported shapes (``classify_plan``):

* a ϕ-free plan that decompiles to a star-free regex ``R`` — the result is the
  set of walks whose label word is in ``L(R)``;
* ``Recursive(inner, r, ml)`` with a ϕ-free, star-free, decompilable ``inner``
  → the restrictor closure of the base set ``L(R)``;
* ``Union(Recursive(inner, r, ml), NodesScan())`` — the ``R*`` compile shape:
  the closure above plus every length-zero node path;
* the ``ALL SHORTEST`` crown ``π(*,1,*)(τG(γSTL(ϕShortest(...))))`` produced
  by the ``walk-to-shortest`` rewrite — the crown is an identity over
  ϕShortest output (one length group per endpoint partition), so the inner
  closure's stream passes through unchanged.

A ϕWalk closure with no bound (neither its own ``max_length`` nor the
engine's ``default_max_length``) is rejected so the fallback path can raise
the evaluator's ``NonTerminatingQueryError`` with identical semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.conditions import Comparator, LabelCondition, Target
from repro.algebra.expressions import (
    EdgesScan,
    Expression,
    GroupBy,
    Join,
    NodesScan,
    OrderBy,
    Projection,
    Recursive,
    Selection,
    Union,
)
from repro.algebra.solution_space import GroupByKey, OrderByKey
from repro.rpq.ast import (
    Alternation,
    AnyLabel,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
)
from repro.semantics.restrictors import Restrictor

__all__ = [
    "AutomatonPlan",
    "classify_plan",
    "decompile_plan",
    "max_word_length",
    "plan_supported",
]


@dataclass(frozen=True)
class AutomatonPlan:
    """A plan shape the product-graph executor evaluates natively.

    Attributes:
        kind: ``"walks"`` (ϕ-free regex match), ``"closure"`` (a single
            ``Recursive`` node) or ``"closure_with_nodes"`` (the ``R*``
            compile shape ``closure ∪ NodesScan``).
        regex: For ``"walks"``, the whole plan's regex; for the closure
            kinds, the regex of the ``Recursive`` child (one segment).
        restrictor: The closure restrictor (``WALK`` for ``"walks"``).
        max_length: The *effective* closure bound — the plan's own
            ``max_length`` if set, else the engine ``default_max_length``.
        crowned: ``True`` when an ``ALL SHORTEST`` projection crown was
            stripped (the crown is an identity over ϕShortest output).
    """

    kind: str
    regex: RegexNode
    restrictor: Restrictor
    max_length: int | None
    crowned: bool = False


def decompile_plan(plan: Expression) -> RegexNode | None:
    """Invert :func:`repro.rpq.compile.compile_regex` on ϕ-free plans.

    Returns ``None`` when the plan contains any operator the compiler never
    emits for a regex (recursion, selections other than the single-edge label
    probe, set operators beyond union, solution-space operators, ...).
    """
    if isinstance(plan, NodesScan):
        return Epsilon()
    if isinstance(plan, EdgesScan):
        return AnyLabel()
    if isinstance(plan, Selection):
        condition = plan.condition
        if (
            isinstance(condition, LabelCondition)
            and condition.target is Target.EDGE
            and condition.position == 1
            and condition.comparator is Comparator.EQ
            and isinstance(condition.value, str)
            and isinstance(plan.child, EdgesScan)
        ):
            return Label(condition.value)
        return None
    if isinstance(plan, Join):
        left = decompile_plan(plan.left)
        right = decompile_plan(plan.right)
        if left is None or right is None:
            return None
        return Concat(left, right)
    if isinstance(plan, Union):
        left = decompile_plan(plan.left)
        right = decompile_plan(plan.right)
        if left is None or right is None:
            return None
        return Alternation(left, right)
    return None


def max_word_length(regex: RegexNode) -> int | None:
    """Length of the longest word ``regex`` matches, or ``None`` if unbounded."""
    if isinstance(regex, (Label, AnyLabel)):
        return 1
    if isinstance(regex, Epsilon):
        return 0
    if isinstance(regex, Concat):
        left = max_word_length(regex.left)
        right = max_word_length(regex.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(regex, Alternation):
        left = max_word_length(regex.left)
        right = max_word_length(regex.right)
        if left is None or right is None:
            return None
        return max(left, right)
    if isinstance(regex, Optional):
        return max_word_length(regex.operand)
    if isinstance(regex, (Star, Plus)):
        return None
    return None


def _classify_recursive(
    plan: Recursive, default_max_length: int | None, *, crowned: bool = False
) -> AutomatonPlan | None:
    regex = decompile_plan(plan.child)
    if regex is None or max_word_length(regex) is None:
        return None
    bound = plan.max_length if plan.max_length is not None else default_max_length
    if plan.restrictor is Restrictor.WALK and bound is None:
        # ϕWalk without any bound raises NonTerminatingQueryError in the
        # evaluator (cycle guard); let the fallback replicate it exactly.
        return None
    return AutomatonPlan("closure", regex, plan.restrictor, bound, crowned=crowned)


def _strip_all_shortest_crown(plan: Expression) -> Recursive | None:
    """Match ``π(*,1,*)(τG(γSTL(ϕShortest(...))))`` and return the closure.

    ϕShortest emits, per (source, target) partition, only minimum-length
    paths — a single STL length group.  Keeping one group per partition and
    all paths in it is therefore an identity, so the inner closure can stream
    straight through the crown.
    """
    if not isinstance(plan, Projection):
        return None
    spec = plan.spec
    if not (spec.partitions == "*" and spec.groups == 1 and spec.paths == "*"):
        return None
    order = plan.child
    if not (isinstance(order, OrderBy) and order.key is OrderByKey.G):
        return None
    group = order.child
    if not (isinstance(group, GroupBy) and group.key is GroupByKey.STL):
        return None
    inner = group.child
    if isinstance(inner, Recursive) and inner.restrictor is Restrictor.SHORTEST:
        return inner
    return None


def classify_plan(
    plan: Expression, default_max_length: int | None = None
) -> AutomatonPlan | None:
    """Return the native evaluation shape of ``plan``, or ``None``."""
    crown = _strip_all_shortest_crown(plan)
    if crown is not None:
        return _classify_recursive(crown, default_max_length, crowned=True)
    if isinstance(plan, Recursive):
        return _classify_recursive(plan, default_max_length)
    if (
        isinstance(plan, Union)
        and isinstance(plan.left, Recursive)
        and isinstance(plan.right, NodesScan)
    ):
        closure = _classify_recursive(plan.left, default_max_length)
        if closure is None:
            return None
        return AutomatonPlan(
            "closure_with_nodes", closure.regex, closure.restrictor, closure.max_length
        )
    regex = decompile_plan(plan)
    if regex is None or max_word_length(regex) is None:
        return None
    return AutomatonPlan("walks", regex, Restrictor.WALK, max_word_length(regex))


def plan_supported(plan: Expression) -> bool:
    """``True`` when the executor can evaluate ``plan`` without falling back.

    Used by cost-based selection and the portfolio router; conservative with
    respect to ``default_max_length`` (an unbounded ϕWalk is reported
    unsupported even though a default bound could make it evaluable).
    """
    return classify_plan(plan, None) is not None
