"""Static footprint analysis of logical plans (delta-aware cache maintenance).

:func:`plan_footprint` computes a sound
:class:`~repro.graph.delta.QueryFootprint` for a logical plan: which
node/edge label classes the plan's results can depend on, and whether it
reads property values.  The service's result cache and the engine's plan
memos intersect that footprint with a
:class:`~repro.graph.delta.GraphDelta` to decide whether a graph mutation
can change a cached result, replacing blanket whole-version invalidation.

The analysis exploits the shape the planner and optimizer produce: label
restrictions are pushed down as ``σ[label(edge(1)) = ℓ]`` directly over atom
scans, so the only narrowing rule needed is "Selection chain over
``Edges(G)`` / ``Nodes(G)``".  Everything the analysis cannot prove degrades
to the universal footprint — over-approximation is always safe because a
universal footprint intersects every delta (exactly the old behavior).

Soundness of the narrowing rules:

* ``σ[label(edge(1)) = ℓ](Edges(G))`` only gains paths when an edge labelled
  ``ℓ`` is inserted.  Equality against a concrete string can never match an
  unlabeled edge (label ``None``), so unlabeled insertions are excluded too.
* ``And`` intersects restrictions (both conjuncts must hold), ``Or`` unions
  them and is only a restriction when *both* branches restrict, ``Not`` and
  every other condition restrict nothing.
* A Selection over a non-atom child filters but does not create paths, so
  its footprint is the child's footprint plus whatever the condition itself
  reads (property values — labels of existing objects are immutable).
* Node insertions never change ``Edges(G)`` (a brand-new node has no
  incident edges; wiring it up takes a separate edge insertion that carries
  its own delta entry), so edge scans contribute no node-label dependency.
* The solution-space keys (:class:`GroupByKey`, :class:`OrderByKey`) rank by
  source/target/length only — property-free — so ``γ``/``τ``/``π`` nodes
  contribute nothing beyond their child.
"""

from __future__ import annotations

from repro.algebra.conditions import (
    And,
    Comparator,
    Condition,
    LabelCondition,
    Not,
    Or,
    PropertyCondition,
    Target,
)
from repro.algebra.expressions import EdgesScan, Expression, NodesScan, Selection
from repro.graph.delta import QueryFootprint

__all__ = ["plan_footprint"]

_EMPTY = QueryFootprint()


def plan_footprint(plan: Expression) -> QueryFootprint:
    """Return a sound over-approximation of what ``plan``'s result depends on."""
    footprint = _expression_footprint(plan)
    return footprint


def _expression_footprint(expr: Expression) -> QueryFootprint:
    if isinstance(expr, Selection):
        # Collapse a chain of stacked selections (the optimizer may split a
        # conjunction) so every condition narrows the same atom.
        conditions: list[Condition] = []
        inner: Expression = expr
        while isinstance(inner, Selection):
            conditions.append(inner.condition)
            inner = inner.child
        reads = _condition_reads(conditions)
        if isinstance(inner, EdgesScan):
            labels = _combined_restriction(conditions, _edge_restriction)
            return reads.union(
                QueryFootprint(edge_labels=labels or frozenset(), edge_universal=labels is None)
            )
        if isinstance(inner, NodesScan):
            labels = _combined_restriction(conditions, _node_restriction)
            return reads.union(
                QueryFootprint(node_labels=labels or frozenset(), node_universal=labels is None)
            )
        return reads.union(_expression_footprint(inner))
    if isinstance(expr, EdgesScan):
        return QueryFootprint(edge_universal=True)
    if isinstance(expr, NodesScan):
        return QueryFootprint(node_universal=True)
    footprint = _EMPTY
    for child in expr.children():
        footprint = footprint.union(_expression_footprint(child))
    return footprint


def _combined_restriction(
    conditions: list[Condition], restriction_of
) -> frozenset[str] | None:
    """Intersect the label restrictions of stacked (conjoined) conditions.

    Returns ``None`` when no condition proves a restriction (universal).
    """
    combined: frozenset[str] | None = None
    for condition in conditions:
        labels = restriction_of(condition)
        if labels is None:
            continue
        combined = labels if combined is None else combined & labels
    return combined


def _edge_restriction(condition: Condition) -> frozenset[str] | None:
    """Labels an edge of a single-edge path may carry under ``condition``."""
    if isinstance(condition, LabelCondition):
        if (
            condition.target is Target.EDGE
            and condition.position == 1
            and condition.comparator is Comparator.EQ
            and isinstance(condition.value, str)
        ):
            return frozenset((condition.value,))
        return None
    return _combine_boolean(condition, _edge_restriction)


def _node_restriction(condition: Condition) -> frozenset[str] | None:
    """Labels the node of a length-zero path may carry under ``condition``.

    On ``Nodes(G)`` output, ``node(1)``, ``first`` and ``last`` all denote
    the path's single node.
    """
    if isinstance(condition, LabelCondition):
        is_single_node = (
            condition.target in (Target.FIRST, Target.LAST)
            or (condition.target is Target.NODE and condition.position == 1)
        )
        if (
            is_single_node
            and condition.comparator is Comparator.EQ
            and isinstance(condition.value, str)
        ):
            return frozenset((condition.value,))
        return None
    return _combine_boolean(condition, _node_restriction)


def _combine_boolean(condition: Condition, restriction_of) -> frozenset[str] | None:
    if isinstance(condition, And):
        left = restriction_of(condition.left)
        right = restriction_of(condition.right)
        if left is None:
            return right
        if right is None:
            return left
        return left & right
    if isinstance(condition, Or):
        left = restriction_of(condition.left)
        right = restriction_of(condition.right)
        if left is None or right is None:
            return None
        return left | right
    # Not (and every other condition form) proves nothing: ¬(label = ℓ)
    # matches every other label including None.
    return None


def _condition_reads(conditions: list[Condition]) -> QueryFootprint:
    """Property-read flags for the given conditions (labels are immutable)."""
    reads_node = False
    reads_edge = False
    stack: list[Condition] = list(conditions)
    while stack:
        condition = stack.pop()
        if isinstance(condition, (And, Or)):
            stack.append(condition.left)
            stack.append(condition.right)
        elif isinstance(condition, Not):
            stack.append(condition.operand)
        elif isinstance(condition, PropertyCondition):
            if condition.target is Target.EDGE:
                reads_edge = True
            else:
                reads_node = True
    if not (reads_node or reads_edge):
        return _EMPTY
    return QueryFootprint(
        reads_node_properties=reads_node, reads_edge_properties=reads_edge
    )
