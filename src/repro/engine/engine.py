"""The query engine facade.

:class:`PathQueryEngine` ties the whole pipeline together:

    GQL text --parse--> AST --plan--> logical plan --optimize--> plan
             --execute--> paths / solution space

and exposes the convenience entry points a downstream application would use:
``query`` (text in, paths out), ``query_plan`` (programmatic plans),
``explain`` (plan + cost + rewrite trace without executing), and
``execute_regex`` (bare RPQs).

Execution is routed through the pluggable executor layer
(:mod:`repro.engine.executor`): the ``executor`` knob selects the
materializing evaluator, the pull-based pipeline, or ``"auto"`` cost-based
selection between them.  Parsed-and-optimized plans are memoized in an LRU
:class:`PlanCache` keyed on the query text, the planning options and the
graph's mutation counter, so hot queries skip parse/plan/optimize entirely.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.algebra.expressions import Expression
from repro.algebra.printer import to_algebra_notation, to_plan_tree
from repro.engine.automaton import AutomatonExecutor
from repro.engine.executor import (
    EXECUTOR_NAMES,
    ExecutionResult,
    Executor,
    PipelineExecutor,
    choose_executor,
    resolve_executor,
)
from repro.engine.footprint import plan_footprint
from repro.engine.physical import build_pipeline
from repro.engine.results import ResultCursor
from repro.errors import ParameterError
from repro.execution import ExecutionStatistics, QueryBudget
from repro.graph.delta import QueryFootprint
from repro.graph.model import PropertyGraph
from repro.gql.params import bind_parameters, collect_parameters
from repro.gql.parser import parse_query
from repro.gql.planner import plan_query
from repro.optimizer.cost import CostModel, PlanCost
from repro.optimizer.engine import Optimizer
from repro.paths.pathset import PathSet
from repro.rpq.compile import CompileOptions, compile_regex
from repro.semantics.restrictors import Restrictor

__all__ = ["QueryResult", "ExplainResult", "PlanCache", "CachedPlan", "PathQueryEngine"]

#: Cache-invalidation policies: ``"delta"`` keys plans by text/options only
#: and revalidates version-sensitive memos against a
#: :class:`~repro.graph.delta.GraphDelta`; ``"version"`` is the legacy
#: whole-version keying (any mutation misses every entry).
INVALIDATION_MODES = ("delta", "version")

#: The execution phases reported in :attr:`QueryResult.phase_seconds`.
PHASES = ("parse", "plan", "optimize", "execute")


@dataclass
class QueryResult:
    """The outcome of executing a path query."""

    paths: PathSet
    plan: Expression
    optimized_plan: Expression
    applied_rules: list[str] = field(default_factory=list)
    statistics: ExecutionStatistics = field(default_factory=ExecutionStatistics)
    elapsed_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    executor: str = ""
    cache_hit: bool = False
    truncated: bool = False
    total_paths: int | None = None

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)


@dataclass
class ExplainResult:
    """The outcome of explaining (but not executing) a path query."""

    plan: Expression
    optimized_plan: Expression
    applied_rules: list[str]
    estimated_cost: PlanCost
    estimated_cost_unoptimized: PlanCost
    chosen_executor: str = ""
    executor_policy: str = "auto"

    def render(self) -> str:
        """Return a human-readable explanation."""
        lines = [
            "Logical plan:",
            "  " + to_algebra_notation(self.plan),
            "Optimized plan:",
            "  " + to_algebra_notation(self.optimized_plan),
            f"Applied rules: {', '.join(self.applied_rules) or '(none)'}",
            f"Estimated cost: {self.estimated_cost.total_cost:.1f} "
            f"(unoptimized: {self.estimated_cost_unoptimized.total_cost:.1f})",
        ]
        if self.chosen_executor:
            if self.executor_policy == "auto":
                lines.append(f"Executor (auto): {self.chosen_executor}")
            else:
                lines.append(f"Executor: {self.chosen_executor}")
        lines += [
            "Plan tree:",
            to_plan_tree(self.optimized_plan),
        ]
        return "\n".join(lines)


@dataclass
class CachedPlan:
    """A parse/plan/optimize outcome memoized by the :class:`PlanCache`."""

    plan: Expression
    optimized: Expression
    applied_rules: list[str]
    #: Memoized ``"auto"`` choice: a pure function of the optimized plan and
    #: the graph version.  Parameter bindings never change the plan *shape*,
    #: so one choice serves every binding of a prepared query.  Under
    #: ``"version"`` invalidation the version is part of the cache key; under
    #: ``"delta"`` invalidation the choice is revalidated against the graph
    #: delta since ``auto_version`` (the cost model only shifts when the data
    #: the plan touches changes).
    auto_executor: str | None = None
    #: Graph version :attr:`auto_executor` was chosen at (delta mode only).
    auto_version: int | None = None
    #: Lazily computed static footprint of the optimized plan, shared by the
    #: auto-executor revalidation and by anything keying caches on what the
    #: plan reads.
    footprint: QueryFootprint | None = None

    def compute_footprint(self) -> QueryFootprint:
        """The optimized plan's footprint, computed once per cached plan."""
        if self.footprint is None:
            self.footprint = plan_footprint(self.optimized)
        return self.footprint
    #: ``$name`` placeholders the query declares — the parse-level set when
    #: the plan came from GQL text (the surface contract, even if a rewrite
    #: were to eliminate a parameterized selection), the plan-derived set for
    #: programmatic plans.  A parameterized plan is cached under its
    #: parameterized text and re-bound per execution; executing it without
    #: (complete) bindings is an error.
    parameters: tuple[str, ...] = ()


class PlanCache:
    """A bounded LRU cache of :class:`CachedPlan` entries.

    Keys are opaque tuples built by the engine from the query text and the
    planning options.  Under the default ``"delta"`` invalidation policy the
    key is version-free — parse/plan/optimize is a pure function of text and
    options, so one entry serves every graph version, and the one
    version-sensitive memo (the ``auto`` executor choice) is revalidated
    against the graph delta on access.  Under the legacy ``"version"`` policy
    the key additionally carries the graph's mutation counter
    (:attr:`~repro.graph.model.PropertyGraph.version`), so any mutation
    misses every entry.

    A single instance is *not* thread-safe; concurrent workers share plans
    through the lock-striped :class:`~repro.service.StripedLRUCache`, which
    composes instances of this class (one per stripe, each behind its own
    lock) and exposes the same ``get``/``put``/counter surface.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[tuple, CachedPlan] = OrderedDict()

    def get(self, key: tuple) -> CachedPlan | None:
        """Return the cached entry for ``key`` (marking it most-recently used)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, entry: CachedPlan) -> None:
        """Insert ``entry``, evicting the least-recently-used entry when full."""
        if self.maxsize <= 0:
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the hit/miss counters are kept)."""
        self._entries.clear()

    def remove(self, key: tuple) -> None:
        """Drop one entry if present (no-op otherwise, no counter changes)."""
        self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries


class PathQueryEngine:
    """Execute extended-GQL path queries over a property graph."""

    #: How many per-version cost models are memoized (a serving engine sees a
    #: rolling window of snapshot versions; older models age out LRU-style).
    COST_MODEL_MEMO_SIZE = 8

    def __init__(
        self,
        graph: PropertyGraph,
        optimize: bool = True,
        default_max_length: int | None = None,
        executor: str = "auto",
        plan_cache_size: int = 128,
        plan_cache: "PlanCache | None" = None,
        invalidation: str = "delta",
    ) -> None:
        """Create an engine.

        Args:
            graph: The property graph to query (a mutable
                :class:`~repro.graph.model.PropertyGraph` or an immutable
                :class:`~repro.graph.snapshot.GraphSnapshot`).
            optimize: Whether to run the rewrite-rule optimizer on every plan.
            default_max_length: Bound applied to ϕWalk operators that carry no
                explicit bound (prevents non-termination errors on cyclic
                graphs for exploratory WALK queries).
            executor: Default execution strategy — ``"materialize"`` (the
                bottom-up evaluator), ``"pipeline"`` (the pull-based iterator
                pipeline) or ``"auto"`` (cost-based choice per plan).
            plan_cache_size: Maximum number of parsed-and-optimized plans
                memoized by the plan cache (``0`` disables caching).
            plan_cache: An externally owned cache to use instead of building a
                private one — how :class:`~repro.service.QueryService` shares
                one lock-striped cache across its worker engines.  Anything
                with the :class:`PlanCache` surface works;
                ``plan_cache_size`` is ignored when this is given.
            invalidation: ``"delta"`` (default) keys cached plans by text and
                options only — sound because planning never reads the graph —
                and revalidates the memoized ``auto`` executor choice against
                the graph delta; ``"version"`` restores the legacy behavior
                where any mutation misses every plan-cache entry.
        """
        if executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
            )
        if invalidation not in INVALIDATION_MODES:
            raise ValueError(
                f"unknown invalidation {invalidation!r}; expected one of "
                f"{', '.join(INVALIDATION_MODES)}"
            )
        self.graph = graph
        self.invalidation = invalidation
        self.optimize_plans = optimize
        self.default_max_length = default_max_length
        self.default_executor = executor
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache(plan_cache_size)
        self._optimizer = Optimizer()
        self._cost_models: OrderedDict[int, CostModel] = OrderedDict()

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(
        self,
        text: str,
        max_length: int | None = None,
        executor: str | None = None,
        limit: int | None = None,
        graph: PropertyGraph | None = None,
        budget: QueryBudget | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> QueryResult:
        """Parse, plan, optimize, and execute an extended-GQL query.

        Args:
            text: The extended-GQL query text.
            max_length: Bound forwarded to the parser for ϕWalk recursion.
            executor: Per-call override of the engine's default executor.
            limit: Produce at most this many paths.  The pipeline executor
                pushes the limit into the plan (it stops pulling); the
                materializing executor truncates after full evaluation.
            graph: Per-call override of the graph to execute against — the
                engine's own graph or a
                :class:`~repro.graph.snapshot.GraphSnapshot` of it, pinning
                the query to one version while other threads keep mutating
                (an unrelated graph is rejected: plan-cache keys and cost
                models are version-keyed within one graph lineage).  The
                plan-cache key uses the override's version, so snapshot
                queries hit the same entries as live queries at the same
                version.
            budget: Optional :class:`~repro.execution.QueryBudget` enforced
                cooperatively throughout execution (deadline, visited-path
                and result-size caps).  An exhausted budget raises
                :class:`~repro.errors.BudgetExceeded` carrying the partial
                progress; budgets are *not* part of the plan-cache key, and a
                budget-killed query leaves only the (valid) parsed plan in
                the cache — never a partial result.
            params: Bindings for the query's ``$name`` placeholders.  The
                plan is cached under the *parameterized* text — distinct
                bindings share one cached plan — and the concrete values are
                substituted into a fresh copy of the plan per execution, so
                bindings can never leak between executions.  Executing a
                parameterized query with missing, surplus or absent bindings
                raises :class:`~repro.errors.ParameterError`.
        """
        started = time.perf_counter()
        target = self._target_graph(graph)
        phase_seconds = dict.fromkeys(PHASES, 0.0)
        cached, cache_hit = self._cached_gql(text, max_length, target, budget, phase_seconds)
        return self._finish(
            cached, executor, limit, cache_hit, started, phase_seconds, target, budget, params
        )

    def query_plan(
        self,
        plan: Expression,
        executor: str | None = None,
        limit: int | None = None,
        graph: PropertyGraph | None = None,
        budget: QueryBudget | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> QueryResult:
        """Optimize and execute an already-constructed logical plan."""
        started = time.perf_counter()
        target = self._target_graph(graph)
        phase_seconds = dict.fromkeys(PHASES, 0.0)
        cached = self._optimize_into(plan, phase_seconds)
        return self._finish(
            cached, executor, limit, False, started, phase_seconds, target, budget, params
        )

    def prepare(
        self,
        text: str,
        max_length: int | None = None,
        graph: PropertyGraph | None = None,
    ) -> CachedPlan:
        """Parse, plan and optimize ``text`` without executing it.

        The workhorse behind :meth:`repro.api.Session.prepare`: the
        parsed-and-optimized plan lands in the plan cache under the
        parameterized text, so every subsequent execution — whatever its
        bindings — is a cache hit.  Returns the :class:`CachedPlan`, whose
        :attr:`~CachedPlan.parameters` lists the ``$name`` placeholders the
        caller must bind.
        """
        target = self._target_graph(graph)
        cached, _ = self._cached_gql(
            text, max_length, target, None, dict.fromkeys(PHASES, 0.0)
        )
        return cached

    def open_cursor(
        self,
        text: str,
        params: Mapping[str, Any] | None = None,
        max_length: int | None = None,
        executor: str | None = None,
        limit: int | None = None,
        graph: PropertyGraph | None = None,
        budget: QueryBudget | None = None,
    ) -> ResultCursor:
        """Execute a query and return a streaming :class:`ResultCursor`.

        The cursor-shaped twin of :meth:`query` (same plan cache, same
        parameter binding, same executor selection) with one behavioral
        difference: under the pipeline executor nothing is materialized up
        front — paths are pulled from the physical pipeline as the consumer
        iterates, with a ``limit`` applied at the cursor boundary, so
        fetching a handful of rows of a huge query touches a correspondingly
        small part of the search space.  Under the materializing executor the
        result is computed eagerly (that executor cannot terminate early) and
        the cursor iterates it; the surface is identical either way.
        """
        started = time.perf_counter()
        target = self._target_graph(graph)
        phase_seconds = dict.fromkeys(PHASES, 0.0)
        cached, cache_hit = self._cached_gql(text, max_length, target, budget, phase_seconds)
        plan_to_run = self._bound_plan(cached, params)
        if budget is not None:
            budget.checkpoint("optimize")
        name = self._executor_name(executor, cached, target)
        truncated: bool | None = None
        total_paths: int | None = None
        cursor_limit = limit
        if name == PipelineExecutor.name:
            pipeline = build_pipeline(
                plan_to_run, target, self.default_max_length, budget=budget
            )
            statistics = pipeline.statistics
            statistics.executor = name
            statistics.footprint = cached.compute_footprint()
            source = pipeline.stream()
        elif name == AutomatonExecutor.name and (
            stream := AutomatonExecutor().stream(
                plan_to_run,
                target,
                default_max_length=self.default_max_length,
                budget=budget,
            )
        ) is not None:
            # Native product-graph stream: SHORTEST rows are yielded per
            # endpoint pair as soon as their BFS level completes, so the
            # cursor sees first rows while the closure is still running.
            statistics = ExecutionStatistics()
            statistics.executor = name
            statistics.footprint = cached.compute_footprint()
            source = stream
        else:
            execution = resolve_executor(name).execute(
                plan_to_run,
                target,
                default_max_length=self.default_max_length,
                limit=limit,
                budget=budget,
                footprint=cached.compute_footprint(),
            )
            statistics = execution.statistics
            source = iter(execution.paths)
            truncated = execution.truncated
            total_paths = execution.total_paths
            cursor_limit = None  # already applied by the executor
        cache = self.plan_cache
        statistics.plan_cache_hits = cache.hits
        statistics.plan_cache_misses = cache.misses
        statistics.plan_cache_evictions = cache.evictions
        return ResultCursor(
            source,
            statistics=statistics,
            executor=name,
            plan=cached.plan,
            optimized_plan=plan_to_run,
            applied_rules=list(cached.applied_rules),
            cache_hit=cache_hit,
            limit=cursor_limit,
            budget=budget,
            truncated=truncated,
            total_paths=total_paths,
            started=started,
            phase_seconds=phase_seconds,
            graph_version=target.version,
        )

    def _cached_gql(
        self,
        text: str,
        max_length: int | None,
        target: PropertyGraph,
        budget: QueryBudget | None,
        phase_seconds: dict[str, float],
    ) -> tuple[CachedPlan, bool]:
        """Serve the parsed-and-optimized plan for ``text`` from the plan cache."""
        key = ("gql", text, max_length, self.optimize_plans) + self._key_suffix(target)
        cached = self.plan_cache.get(key)
        cache_hit = cached is not None
        if cached is None:
            phase_started = time.perf_counter()
            ast = parse_query(text, max_length=max_length)
            phase_seconds["parse"] = time.perf_counter() - phase_started
            if budget is not None:
                budget.checkpoint("parse")
            phase_started = time.perf_counter()
            plan = plan_query(ast)
            phase_seconds["plan"] = time.perf_counter() - phase_started
            cached = self._optimize_into(plan, phase_seconds, declared=ast.parameters)
            self.plan_cache.put(key, cached)
        return cached, cache_hit

    def _bound_plan(
        self, cached: CachedPlan, params: Mapping[str, Any] | None
    ) -> Expression:
        """Substitute ``params`` into the cached plan, validating the binding set."""
        if not cached.parameters:
            if params:
                raise ParameterError(
                    f"query declares no parameters, got binding(s) for "
                    f"{', '.join('$' + name for name in sorted(params))}"
                )
            return cached.optimized
        supplied = params or {}
        missing = [name for name in cached.parameters if name not in supplied]
        if missing:
            raise ParameterError(
                "missing binding(s) for "
                + ", ".join(f"${name}" for name in missing)
            )
        extra = sorted(set(supplied) - set(cached.parameters))
        if extra:
            raise ParameterError(
                "unknown parameter(s) "
                + ", ".join(f"${name}" for name in extra)
                + "; the query declares "
                + ", ".join(f"${name}" for name in cached.parameters)
            )
        return bind_parameters(cached.optimized, supplied)

    def execute_regex(
        self,
        regex: str,
        restrictor: Restrictor = Restrictor.TRAIL,
        max_length: int | None = None,
        executor: str | None = None,
        limit: int | None = None,
        graph: PropertyGraph | None = None,
        budget: QueryBudget | None = None,
    ) -> PathSet:
        """Evaluate a bare regular path query under the given restrictor.

        Compiled-and-optimized regex plans go through the same plan cache as
        GQL queries (keyed on the regex text, the compile options and the
        graph version).
        """
        started = time.perf_counter()
        target = self._target_graph(graph)
        phase_seconds = dict.fromkeys(PHASES, 0.0)
        key = ("rpq", regex, restrictor, max_length, self.optimize_plans) + self._key_suffix(
            target
        )
        cached = self.plan_cache.get(key)
        cache_hit = cached is not None
        if cached is None:
            phase_started = time.perf_counter()
            plan = compile_regex(
                regex, CompileOptions(restrictor=restrictor, max_length=max_length)
            )
            phase_seconds["plan"] = time.perf_counter() - phase_started
            cached = self._optimize_into(plan, phase_seconds)
            self.plan_cache.put(key, cached)
        return self._finish(
            cached, executor, limit, cache_hit, started, phase_seconds, target, budget
        ).paths

    def _key_suffix(self, target: PropertyGraph) -> tuple:
        """Version component of plan-cache keys (empty under delta invalidation).

        Plans are a pure function of query text and planning options — the
        graph is never consulted during parse/plan/optimize — so the delta
        policy shares one entry across every version.  The legacy policy
        keys on the version, reproducing miss-on-every-mutation behavior.
        """
        if self.invalidation == "delta":
            return ()
        return (target.version,)

    def _target_graph(self, graph: PropertyGraph | None) -> PropertyGraph:
        """Resolve a per-call ``graph`` override, rejecting foreign graphs.

        The plan cache and the cost-model memo are keyed by *version* on the
        assumption that all versions belong to one graph lineage; a snapshot
        of the engine's graph (or the graph itself) satisfies that, an
        unrelated graph whose mutation counter happens to coincide would
        silently cross-contaminate them.
        """
        if graph is None:
            return self.graph
        if graph is self.graph:
            return graph
        own = self.graph
        if getattr(graph, "parent", graph) is getattr(own, "parent", own):
            return graph
        raise ValueError(
            "graph= override must be the engine's graph or a snapshot of it; "
            "build a separate engine for a different graph"
        )

    # ------------------------------------------------------------------
    # Executor selection
    # ------------------------------------------------------------------
    def select_executor(self, plan: Expression, graph: PropertyGraph | None = None) -> str:
        """Return the executor name the ``"auto"`` policy picks for ``plan``."""
        return choose_executor(plan, self.cost_model(graph))

    def route(
        self,
        text: str,
        max_length: int | None = None,
        graph: PropertyGraph | None = None,
        execution_mode: str = "processes",
        executor: str | None = None,
        race_band: float | None = None,
    ) -> "RouteDecision":
        """Prepare ``text`` and return the portfolio router's dispatch decision.

        Convenience inspection hook for the serving layer and its tests:
        one call answers "would this query run a single executor or a race,
        and why?" without executing anything.  The plan lands in the plan
        cache exactly as :meth:`prepare` leaves it.
        """
        from repro.engine.router import PortfolioRouter

        target = self._target_graph(graph)
        cached = self.prepare(text, max_length=max_length, graph=target)
        return PortfolioRouter(race_band=race_band).decide(
            cached.optimized,
            self.cost_model(target),
            execution_mode=execution_mode,
            requested=executor if executor is not None else self.default_executor,
        )

    def cost_model(self, graph: PropertyGraph | None = None) -> CostModel:
        """The cost model for ``graph`` (default: the engine's graph), memoized per version.

        A small window of versions is kept so a serving engine that answers
        queries pinned to successive snapshots does not rebuild statistics on
        every call; mutating the graph naturally ages old entries out.
        """
        target = graph if graph is not None else self.graph
        version = target.version
        model = self._cost_models.get(version)
        if model is None:
            model = CostModel(target)
            self._cost_models[version] = model
            while len(self._cost_models) > self.COST_MODEL_MEMO_SIZE:
                self._cost_models.popitem(last=False)
        else:
            self._cost_models.move_to_end(version)
        return model

    def _executor_name(
        self, executor: str | None, cached: CachedPlan, graph: PropertyGraph | None = None
    ) -> str:
        """Resolve an executor knob to a concrete name, memoizing ``auto``."""
        name = executor if executor is not None else self.default_executor
        if name not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {name!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
            )
        if name != "auto":
            return name
        target = graph if graph is not None else self.graph
        version = target.version
        if cached.auto_executor is None:
            cached.auto_executor = self.select_executor(cached.optimized, graph)
            cached.auto_version = version
        elif self.invalidation == "delta" and cached.auto_version != version:
            # Under delta keying one CachedPlan serves many versions; the
            # executor choice is a cost-model decision, so revalidate it when
            # the data the plan touches changed.  A stale choice is a
            # performance (never a correctness) matter, so the unlocked
            # read-modify-write here is a benign race — concurrent workers
            # converge on a valid recent choice.
            delta = self._lineage_delta(target, cached.auto_version, version)
            if delta is None or delta.affects(cached.compute_footprint()):
                cached.auto_executor = self.select_executor(cached.optimized, graph)
            cached.auto_version = version
        return cached.auto_executor

    def _lineage_delta(self, target: PropertyGraph, from_version: int, to_version: int):
        """Delta between two versions of the target's graph lineage (or ``None``)."""
        root = getattr(target, "parent", target)
        delta_between = getattr(root, "delta_between", None)
        if delta_between is None:
            return None
        low, high = sorted((from_version, to_version))
        return delta_between(low, high)

    def _resolve(
        self, executor: str | None, cached: CachedPlan, graph: PropertyGraph | None = None
    ) -> Executor:
        return resolve_executor(self._executor_name(executor, cached, graph))

    # ------------------------------------------------------------------
    # Shared pipeline tail
    # ------------------------------------------------------------------
    def _optimize_into(
        self,
        plan: Expression,
        phase_seconds: dict[str, float],
        declared: tuple[str, ...] | None = None,
    ) -> CachedPlan:
        phase_started = time.perf_counter()
        optimized = plan
        applied: list[str] = []
        if self.optimize_plans:
            result = self._optimizer.optimize(plan)
            optimized = result.optimized
            applied = result.applied_rules
        phase_seconds["optimize"] = time.perf_counter() - phase_started
        return CachedPlan(
            plan=plan,
            optimized=optimized,
            applied_rules=applied,
            parameters=declared if declared is not None else collect_parameters(optimized),
        )

    def _finish(
        self,
        cached: CachedPlan,
        executor: str | None,
        limit: int | None,
        cache_hit: bool,
        started: float,
        phase_seconds: dict[str, float],
        graph: PropertyGraph | None = None,
        budget: QueryBudget | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> QueryResult:
        target = graph if graph is not None else self.graph
        plan_to_run = self._bound_plan(cached, params)
        if budget is not None:
            # The planning phases are over; one clock read here kills queries
            # whose deadline expired while parsing/optimizing before any
            # execution work starts.
            budget.checkpoint("optimize")
        phase_started = time.perf_counter()
        chosen = self._resolve(executor, cached, target)
        execution: ExecutionResult = chosen.execute(
            plan_to_run,
            target,
            default_max_length=self.default_max_length,
            limit=limit,
            budget=budget,
            footprint=cached.compute_footprint(),
        )
        phase_seconds["execute"] = time.perf_counter() - phase_started
        cache = self.plan_cache
        execution.statistics.plan_cache_hits = cache.hits
        execution.statistics.plan_cache_misses = cache.misses
        execution.statistics.plan_cache_evictions = cache.evictions
        return QueryResult(
            paths=execution.paths,
            plan=cached.plan,
            optimized_plan=plan_to_run,
            applied_rules=list(cached.applied_rules),
            statistics=execution.statistics,
            elapsed_seconds=time.perf_counter() - started,
            phase_seconds=phase_seconds,
            executor=chosen.name,
            cache_hit=cache_hit,
            truncated=execution.truncated,
            total_paths=execution.total_paths,
        )

    # ------------------------------------------------------------------
    # Explanation
    # ------------------------------------------------------------------
    def explain(self, text: str, max_length: int | None = None) -> ExplainResult:
        """Plan and optimize a query without executing it; report costs and rewrites.

        Shares the plan cache with :meth:`query`: explaining a query warms
        the cache for a subsequent execution and vice versa.
        """
        cached, _ = self._cached_gql(
            text, max_length, self.graph, None, dict.fromkeys(PHASES, 0.0)
        )
        return self._explain_cached(cached)

    def explain_plan(self, plan: Expression) -> ExplainResult:
        """Explain an already-constructed logical plan."""
        return self._explain_cached(self._optimize_into(plan, dict.fromkeys(PHASES, 0.0)))

    def _explain_cached(self, cached: CachedPlan) -> ExplainResult:
        chosen = self._executor_name(None, cached)
        return ExplainResult(
            plan=cached.plan,
            optimized_plan=cached.optimized,
            applied_rules=list(cached.applied_rules),
            estimated_cost=self.cost_model().estimate(cached.optimized),
            estimated_cost_unoptimized=self.cost_model().estimate(cached.plan),
            chosen_executor=chosen,
            executor_policy=self.default_executor,
        )
