"""The query engine facade.

:class:`PathQueryEngine` ties the whole pipeline together:

    GQL text --parse--> AST --plan--> logical plan --optimize--> plan
             --evaluate--> paths / solution space

and exposes the convenience entry points a downstream application would use:
``query`` (text in, paths out), ``query_plan`` (programmatic plans),
``explain`` (plan + cost + rewrite trace without executing), and
``execute_regex`` (bare RPQs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algebra.evaluator import EvaluationStatistics, Evaluator
from repro.algebra.expressions import Expression
from repro.algebra.printer import to_algebra_notation, to_plan_tree
from repro.graph.model import PropertyGraph
from repro.gql.parser import parse_query
from repro.gql.planner import plan_query
from repro.optimizer.cost import CostModel, PlanCost
from repro.optimizer.engine import Optimizer
from repro.paths.pathset import PathSet
from repro.rpq.compile import CompileOptions, compile_regex
from repro.semantics.restrictors import Restrictor

__all__ = ["QueryResult", "ExplainResult", "PathQueryEngine"]


@dataclass
class QueryResult:
    """The outcome of executing a path query."""

    paths: PathSet
    plan: Expression
    optimized_plan: Expression
    applied_rules: list[str] = field(default_factory=list)
    statistics: EvaluationStatistics = field(default_factory=EvaluationStatistics)
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)


@dataclass
class ExplainResult:
    """The outcome of explaining (but not executing) a path query."""

    plan: Expression
    optimized_plan: Expression
    applied_rules: list[str]
    estimated_cost: PlanCost
    estimated_cost_unoptimized: PlanCost

    def render(self) -> str:
        """Return a human-readable explanation."""
        lines = [
            "Logical plan:",
            "  " + to_algebra_notation(self.plan),
            "Optimized plan:",
            "  " + to_algebra_notation(self.optimized_plan),
            f"Applied rules: {', '.join(self.applied_rules) or '(none)'}",
            f"Estimated cost: {self.estimated_cost.total_cost:.1f} "
            f"(unoptimized: {self.estimated_cost_unoptimized.total_cost:.1f})",
            "Plan tree:",
            to_plan_tree(self.optimized_plan),
        ]
        return "\n".join(lines)


class PathQueryEngine:
    """Execute extended-GQL path queries over a property graph."""

    def __init__(
        self,
        graph: PropertyGraph,
        optimize: bool = True,
        default_max_length: int | None = None,
    ) -> None:
        """Create an engine.

        Args:
            graph: The property graph to query.
            optimize: Whether to run the rewrite-rule optimizer on every plan.
            default_max_length: Bound applied to ϕWalk operators that carry no
                explicit bound (prevents non-termination errors on cyclic
                graphs for exploratory WALK queries).
        """
        self.graph = graph
        self.optimize_plans = optimize
        self.default_max_length = default_max_length
        self._optimizer = Optimizer()
        self._cost_model = CostModel(graph)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self, text: str, max_length: int | None = None) -> QueryResult:
        """Parse, plan, optimize, and execute an extended-GQL query."""
        ast = parse_query(text, max_length=max_length)
        plan = plan_query(ast)
        return self.query_plan(plan)

    def query_plan(self, plan: Expression) -> QueryResult:
        """Optimize and execute an already-constructed logical plan."""
        started = time.perf_counter()
        optimized = plan
        applied: list[str] = []
        if self.optimize_plans:
            result = self._optimizer.optimize(plan)
            optimized = result.optimized
            applied = result.applied_rules
        evaluator = Evaluator(self.graph, default_max_length=self.default_max_length)
        paths = evaluator.evaluate_paths(optimized)
        elapsed = time.perf_counter() - started
        return QueryResult(
            paths=paths,
            plan=plan,
            optimized_plan=optimized,
            applied_rules=applied,
            statistics=evaluator.statistics,
            elapsed_seconds=elapsed,
        )

    def execute_regex(
        self,
        regex: str,
        restrictor: Restrictor = Restrictor.TRAIL,
        max_length: int | None = None,
    ) -> PathSet:
        """Evaluate a bare regular path query under the given restrictor."""
        plan = compile_regex(regex, CompileOptions(restrictor=restrictor, max_length=max_length))
        return self.query_plan(plan).paths

    # ------------------------------------------------------------------
    # Explanation
    # ------------------------------------------------------------------
    def explain(self, text: str, max_length: int | None = None) -> ExplainResult:
        """Plan and optimize a query without executing it; report costs and rewrites."""
        ast = parse_query(text, max_length=max_length)
        plan = plan_query(ast)
        return self.explain_plan(plan)

    def explain_plan(self, plan: Expression) -> ExplainResult:
        """Explain an already-constructed logical plan."""
        result = self._optimizer.optimize(plan) if self.optimize_plans else None
        optimized = result.optimized if result is not None else plan
        applied = result.applied_rules if result is not None else []
        return ExplainResult(
            plan=plan,
            optimized_plan=optimized,
            applied_rules=applied,
            estimated_cost=self._cost_model.estimate(optimized),
            estimated_cost_unoptimized=self._cost_model.estimate(plan),
        )
