"""Portfolio routing: decide *how* a query is dispatched, not just *where*.

The executor layer answers "which physical realization should run this
plan?" with a point estimate (:func:`~repro.engine.executor.choose_executor`
thresholds the cost model's recursive-cost fraction).  The serving layer has
a second degree of freedom the engine facade does not: with a process pool
behind it, it can afford to run *both* executors on two cores and keep the
first answer — the classical solver-portfolio pattern.  The
:class:`PortfolioRouter` encodes that policy as data:

* ``"threads"`` / ``"processes"`` — cost-model-guided **single** dispatch:
  one executor per query, chosen exactly as ``"auto"`` would (or forced by
  an explicit ``executor=``).
* ``"race"`` — **race** dispatch for ``auto`` queries: materialize vs
  pipeline in two workers — plus the product-automaton executor as a third
  portfolio member when the plan is in its native envelope and carries
  ϕShortest work — first complete result wins, the losers are cancelled
  through their :class:`~repro.execution.QueryBudget` (reason
  ``"cancelled"``).  An explicit executor request is honored with single
  dispatch even in race mode — the caller already made the choice.

Racing everything would waste half the pool on queries where the cost model
is confident, so the router only races when the recursive-cost fraction
falls inside ``race_band`` of the decision threshold (the cost model's
"coin flip" zone).  ``race_band=None`` races every ``auto`` query —
useful for benchmarks that want per-query winner attribution everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import Expression
from repro.engine.executor import (
    AUTOMATON_EXECUTOR_NAME,
    EXECUTOR_NAMES,
    RECURSIVE_COST_THRESHOLD,
    MaterializeExecutor,
    PipelineExecutor,
    choose_executor_with_fraction,
)
from repro.optimizer.cost import CostModel

__all__ = ["EXECUTION_MODES", "RouteDecision", "PortfolioRouter"]

#: The values accepted by every ``execution_mode=`` knob: thread workers
#: (GIL-bound, the legacy default), process workers (one executor per query),
#: or process workers racing both executors on ``auto`` queries.
EXECUTION_MODES = ("threads", "processes", "race")


@dataclass(frozen=True)
class RouteDecision:
    """How one query should be dispatched.

    Attributes:
        mode: ``"single"`` (run ``executors[0]``) or ``"race"`` (run every
            entry of ``executors`` concurrently, first result wins).
        executors: Concrete executor names, never ``"auto"``.
        fraction: The cost model's recursive-cost fraction for the plan —
            the signal behind the decision (``0.0`` when an explicit
            executor request bypassed the cost model).
        reason: Human-readable one-liner for explain output and tests.
    """

    mode: str
    executors: tuple[str, ...]
    fraction: float = 0.0
    reason: str = ""

    @property
    def racing(self) -> bool:
        """``True`` when the decision dispatches more than one executor."""
        return self.mode == "race"


class PortfolioRouter:
    """Map (plan, cost model, execution mode) to a :class:`RouteDecision`.

    Args:
        race_band: Half-width of the fraction window around
            :data:`~repro.engine.executor.RECURSIVE_COST_THRESHOLD` inside
            which ``"race"`` mode actually races.  Outside the window the
            cost model's pick is confident enough that burning a second
            worker buys nothing.  ``None`` races every ``auto`` query.
    """

    def __init__(self, race_band: float | None = None) -> None:
        if race_band is not None and race_band < 0:
            raise ValueError(f"race_band must be >= 0, got {race_band}")
        self.race_band = race_band

    @staticmethod
    def _automaton_eligible(plan: Expression, cost_model: CostModel) -> bool:
        """``True`` when the product automaton is worth a portfolio slot:
        the plan is in its native envelope and has ϕShortest work at all."""
        if cost_model.shortest_cost_fraction(plan) <= 0.0:
            return False
        from repro.engine.automaton.decompile import plan_supported

        return plan_supported(plan)

    def decide(
        self,
        plan: Expression,
        cost_model: CostModel,
        execution_mode: str = "processes",
        requested: str | None = None,
    ) -> RouteDecision:
        """Route one optimized plan.

        ``requested`` is the caller's executor knob (``None`` or ``"auto"``
        lets the router choose; a concrete name forces single dispatch of
        that executor, in every mode).
        """
        if execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution_mode {execution_mode!r}; expected one of "
                f"{', '.join(EXECUTION_MODES)}"
            )
        if requested is not None and requested not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {requested!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
            )
        if requested is not None and requested != "auto":
            return RouteDecision(
                mode="single",
                executors=(requested,),
                reason=f"explicit executor={requested!r}",
            )
        name, fraction = choose_executor_with_fraction(plan, cost_model)
        if execution_mode == "race":
            if name == AUTOMATON_EXECUTOR_NAME:
                # The automaton was picked for a SHORTEST-heavy native plan;
                # hedge it against the classical favorite for that fraction.
                second = (
                    MaterializeExecutor.name
                    if fraction > RECURSIVE_COST_THRESHOLD
                    else PipelineExecutor.name
                )
                return RouteDecision(
                    mode="race",
                    executors=(name, second),
                    fraction=fraction,
                    reason=(
                        f"racing automaton against cost-model favorite "
                        f"(fraction={fraction:.3f})"
                    ),
                )
            if self.race_band is None or (
                abs(fraction - RECURSIVE_COST_THRESHOLD) <= self.race_band
            ):
                # The cost-model favorite goes first: if only one process
                # slot frees up at a time, the likely winner starts sooner.
                second = (
                    PipelineExecutor.name
                    if name == MaterializeExecutor.name
                    else MaterializeExecutor.name
                )
                lineup = (name, second)
                if self._automaton_eligible(plan, cost_model):
                    # A supported plan with *some* ϕShortest work joins the
                    # portfolio as a third member even when the classical
                    # fractions made the primary choice.
                    lineup += (AUTOMATON_EXECUTOR_NAME,)
                return RouteDecision(
                    mode="race",
                    executors=lineup,
                    fraction=fraction,
                    reason=(
                        f"racing {len(lineup)} executors (fraction={fraction:.3f})"
                    ),
                )
            return RouteDecision(
                mode="single",
                executors=(name,),
                fraction=fraction,
                reason=(
                    f"cost model confident (fraction={fraction:.3f} outside "
                    f"±{self.race_band} of {RECURSIVE_COST_THRESHOLD})"
                ),
            )
        return RouteDecision(
            mode="single",
            executors=(name,),
            fraction=fraction,
            reason=f"cost-model choice (fraction={fraction:.3f})",
        )
