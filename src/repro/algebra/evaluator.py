"""Bottom-up evaluation of path-algebra expression trees (logical plans).

The evaluator walks an :class:`~repro.algebra.expressions.Expression` tree and
produces a :class:`~repro.paths.pathset.PathSet` (or a
:class:`~repro.algebra.solution_space.SolutionSpace` for group-by / order-by
roots) over a concrete property graph.  It is intentionally a direct
transcription of the paper's operator definitions — the physical-optimization
story lives in :mod:`repro.optimizer` and :mod:`repro.engine`.

Evaluation also records per-operator statistics (output cardinalities and
invocation counts), which the benchmarks and the EXPLAIN facility report.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    Difference,
    EdgesScan,
    Expression,
    GroupBy,
    Intersection,
    Join,
    NodesScan,
    OrderBy,
    Projection,
    Recursive,
    Selection,
    Union,
)
from repro.algebra.solution_space import SolutionSpace, group_by, order_by, project
from repro.errors import EvaluationError
from repro.execution import ExecutionStatistics, QueryBudget
from repro.graph.compact import compact_core_of
from repro.graph.model import PropertyGraph
from repro.paths.join_index import JoinIndex
from repro.paths.pathset import PathSet
from repro.semantics.restrictors import recursive_closure

__all__ = ["EvaluationStatistics", "Evaluator", "evaluate", "evaluate_to_paths"]

#: Historical name of the materializing evaluator's statistics; the counters
#: are now shared with the physical pipeline (see :mod:`repro.execution`).
EvaluationStatistics = ExecutionStatistics


class Evaluator:
    """Evaluate algebra expressions over a fixed property graph."""

    def __init__(
        self,
        graph: PropertyGraph,
        default_max_length: int | None = None,
        budget: QueryBudget | None = None,
    ) -> None:
        """Create an evaluator.

        Args:
            graph: The property graph every atom (``Nodes(G)`` / ``Edges(G)``)
                refers to.
            default_max_length: Optional bound applied to ϕWalk nodes that do
                not carry their own ``max_length``; keeps exploratory queries
                from tripping the non-termination guard.
            budget: Optional cooperative cancellation token.  Checked at every
                operator boundary (and inside the closure / join loops), so an
                exhausted budget raises :class:`~repro.errors.BudgetExceeded`
                mid-evaluation instead of materializing to completion.
        """
        self.graph = graph
        self.default_max_length = default_max_length
        self.budget = budget
        self.statistics = ExecutionStatistics()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(self, expression: Expression) -> PathSet | SolutionSpace:
        """Evaluate ``expression`` and return its natural result type."""
        return self._eval(expression)

    def evaluate_paths(self, expression: Expression) -> PathSet:
        """Evaluate ``expression`` and coerce the result to a path set.

        Group-by / order-by roots are flattened back to their underlying set
        of paths (the paper treats solution spaces as an intermediate
        structure; only projection turns them back into path sets).
        """
        result = self._eval(expression)
        if isinstance(result, SolutionSpace):
            return result.all_paths()
        return result

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _eval(self, expression: Expression) -> PathSet | SolutionSpace:
        if isinstance(expression, NodesScan):
            return self._record(expression, PathSet.nodes_of(self.graph))
        if isinstance(expression, EdgesScan):
            return self._record(expression, PathSet.edges_of(self.graph))
        if isinstance(expression, Selection):
            return self._eval_selection(expression)
        if isinstance(expression, Join):
            return self._eval_join(expression)
        if isinstance(expression, Union):
            return self._eval_union(expression)
        if isinstance(expression, Intersection):
            return self._eval_intersection(expression)
        if isinstance(expression, Difference):
            return self._eval_difference(expression)
        if isinstance(expression, Recursive):
            return self._eval_recursive(expression)
        if isinstance(expression, GroupBy):
            return self._eval_group_by(expression)
        if isinstance(expression, OrderBy):
            return self._eval_order_by(expression)
        if isinstance(expression, Projection):
            return self._eval_projection(expression)
        raise EvaluationError(f"unknown expression node: {type(expression).__name__}")

    def _record(
        self, expression: Expression, result: PathSet, already_charged: bool = False
    ) -> PathSet:
        name = expression.operator_name()
        self.statistics.record(name, len(result))
        if self.budget is not None:
            # Operator boundary: charge the output cardinality and consult
            # the clock, so plans without long inner loops (pure scans,
            # set operations) still die within one operator.  Joins and
            # closures charge per produced path inside their loops and only
            # take the clock check here.
            if not already_charged:
                self.budget.charge(len(result), name)
            self.budget.checkpoint(name)
        return result

    def _eval_paths(self, expression: Expression, context: str) -> PathSet:
        result = self._eval(expression)
        if isinstance(result, SolutionSpace):
            raise EvaluationError(
                f"{context} expects a set of paths but its input is a solution space; "
                "apply a projection first"
            )
        return result

    def _eval_space(self, expression: Expression, context: str) -> SolutionSpace:
        result = self._eval(expression)
        if isinstance(result, SolutionSpace):
            return result
        raise EvaluationError(
            f"{context} expects a solution space but its input is a set of paths; "
            "apply a group-by first"
        )

    # ------------------------------------------------------------------
    # Operator implementations
    # ------------------------------------------------------------------
    def _eval_selection(self, expression: Selection) -> PathSet:
        child = self._eval_paths(expression.child, "selection")
        result = child.filter(expression.condition.evaluate)
        return self._record(expression, result)

    def _eval_join(self, expression: Join) -> PathSet:
        left = self._eval_paths(expression.left, "join")
        right = self._eval_paths(expression.right, "join")
        result = left.join(right, budget=self.budget)
        return self._record(expression, result, already_charged=True)

    def _eval_union(self, expression: Union) -> PathSet:
        left = self._eval_paths(expression.left, "union")
        right = self._eval_paths(expression.right, "union")
        result = left.union(right)
        return self._record(expression, result)

    def _eval_intersection(self, expression: Intersection) -> PathSet:
        left = self._eval_paths(expression.left, "intersection")
        right = self._eval_paths(expression.right, "intersection")
        result = left.intersection(right)
        return self._record(expression, result)

    def _eval_difference(self, expression: Difference) -> PathSet:
        left = self._eval_paths(expression.left, "difference")
        right = self._eval_paths(expression.right, "difference")
        result = left.difference(right)
        return self._record(expression, result)

    def _eval_recursive(self, expression: Recursive) -> PathSet:
        child = self._eval_paths(expression.child, "recursion")
        max_length = expression.max_length
        if max_length is None:
            max_length = self.default_max_length
        # The base is already materialized, so the join index is built exactly
        # once here and shared by every fix-point round of the closure.  When
        # a compact core backs the graph the closure runs int-encoded and
        # builds its own IntJoinIndex, so the object index would be dead
        # weight — skip it (recursive_closure builds one itself if it has to
        # fall back).
        join_index = None if compact_core_of(self.graph) is not None else JoinIndex(child)
        result = recursive_closure(
            child,
            expression.restrictor,
            max_length,
            join_index=join_index,
            budget=self.budget,
        )
        return self._record(expression, result, already_charged=True)

    def _eval_group_by(self, expression: GroupBy) -> SolutionSpace:
        child = self._eval_paths(expression.child, "group-by")
        space = group_by(child, expression.key)
        self.statistics.record(expression.operator_name(), space.num_paths())
        return space

    def _eval_order_by(self, expression: OrderBy) -> SolutionSpace:
        child = self._eval_space(expression.child, "order-by")
        space = order_by(child, expression.key)
        self.statistics.record(expression.operator_name(), space.num_paths())
        return space

    def _eval_projection(self, expression: Projection) -> PathSet:
        child = self._eval(expression.child)
        if isinstance(child, PathSet):
            # The paper always projects a solution space; projecting a bare
            # path set is treated as projecting γ(child), which is convenient
            # for composing plans programmatically.
            child = group_by(child)
        result = project(child, expression.spec)
        return self._record(expression, result)


def evaluate(
    expression: Expression,
    graph: PropertyGraph,
    default_max_length: int | None = None,
) -> PathSet | SolutionSpace:
    """Evaluate ``expression`` over ``graph`` (convenience wrapper around :class:`Evaluator`)."""
    return Evaluator(graph, default_max_length).evaluate(expression)


def evaluate_to_paths(
    expression: Expression,
    graph: PropertyGraph,
    default_max_length: int | None = None,
) -> PathSet:
    """Evaluate ``expression`` over ``graph`` and always return a :class:`PathSet`."""
    return Evaluator(graph, default_max_length).evaluate_paths(expression)
