"""Textual rendering of logical plans.

Two renderings are provided:

* :func:`to_algebra_notation` — the compact single-line notation used in the
  paper's prose, e.g. ``π(*,*,1)(τA(γST(ϕWalk(σ[...](Edges(G))))))``;
* :func:`to_plan_tree` — the indented multi-line tree that the paper's parser
  prints (Section 7.2), with one operator per line and arrows indicating
  nesting depth.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    Difference,
    EdgesScan,
    Expression,
    GroupBy,
    Intersection,
    Join,
    NodesScan,
    OrderBy,
    Projection,
    Recursive,
    Selection,
    Union,
)

__all__ = ["to_algebra_notation", "to_plan_tree", "to_indented_tree"]


def to_algebra_notation(expression: Expression) -> str:
    """Render ``expression`` in the paper's compact algebraic notation."""
    if isinstance(expression, NodesScan):
        return "Nodes(G)"
    if isinstance(expression, EdgesScan):
        return "Edges(G)"
    if isinstance(expression, Selection):
        return f"σ[{expression.condition}]({to_algebra_notation(expression.child)})"
    if isinstance(expression, Join):
        return (
            f"({to_algebra_notation(expression.left)} ⋈ {to_algebra_notation(expression.right)})"
        )
    if isinstance(expression, Union):
        return (
            f"({to_algebra_notation(expression.left)} ∪ {to_algebra_notation(expression.right)})"
        )
    if isinstance(expression, Intersection):
        return (
            f"({to_algebra_notation(expression.left)} ∩ {to_algebra_notation(expression.right)})"
        )
    if isinstance(expression, Difference):
        return (
            f"({to_algebra_notation(expression.left)} ∖ {to_algebra_notation(expression.right)})"
        )
    if isinstance(expression, Recursive):
        name = expression.restrictor.value.title()
        bound = f",≤{expression.max_length}" if expression.max_length is not None else ""
        return f"ϕ{name}{bound}({to_algebra_notation(expression.child)})"
    if isinstance(expression, GroupBy):
        subscript = expression.key.value
        return f"γ{subscript}({to_algebra_notation(expression.child)})"
    if isinstance(expression, OrderBy):
        return f"τ{expression.key.value}({to_algebra_notation(expression.child)})"
    if isinstance(expression, Projection):
        spec = expression.spec
        return (
            f"π({spec.partitions},{spec.groups},{spec.paths})"
            f"({to_algebra_notation(expression.child)})"
        )
    return str(expression)


def _describe(expression: Expression) -> str:
    """One-line description of a node in the Section 7.2 output style."""
    if isinstance(expression, Projection):
        spec = expression.spec
        def render(component: int | str) -> str:
            return "ALL" if component == "*" else str(component)
        return (
            f"Projection ({render(spec.partitions)} PARTITIONS "
            f"{render(spec.groups)} GROUPS {render(spec.paths)} PATHS)"
        )
    if isinstance(expression, OrderBy):
        names = {"P": "Partition", "G": "Group", "A": "Path"}
        parts = ", ".join(names[letter] for letter in expression.key.value)
        return f"OrderBy ({parts})"
    if isinstance(expression, GroupBy):
        names = {"S": "Source", "T": "Target", "L": "Length"}
        parts = ", ".join(names[letter] for letter in expression.key.value) or "None"
        return f"Group ({parts})"
    if isinstance(expression, Recursive):
        return f"Recursive Join (restrictor: {expression.restrictor.value})"
    if isinstance(expression, Selection):
        return f"Select: ({expression.condition})"
    if isinstance(expression, Join):
        return "Join"
    if isinstance(expression, Union):
        return "Union"
    if isinstance(expression, Intersection):
        return "Intersection"
    if isinstance(expression, Difference):
        return "Difference"
    if isinstance(expression, EdgesScan):
        return "EDGES(G)"
    if isinstance(expression, NodesScan):
        return "NODES(G)"
    return expression.operator_name()


def to_plan_tree(expression: Expression) -> str:
    """Render a plan as the numbered, arrow-indented listing of Section 7.2.

    Example output for the paper's sample query::

        1 Projection (ALL PARTITIONS ALL GROUPS 1 PATHS)
        2 OrderBy (Path)
        3 Group (Target)
        4 Restrictor (TRAIL)
        5 -> Recursive Join (restrictor: TRAIL)
        6 -> Select: (label(edge(1)) = 'Knows' , EDGES(G))
    """
    lines: list[str] = []

    # The paper prints the "mode" operators (projection / order-by / group-by /
    # restrictor) as a flat header followed by the arrow-indented query body.
    header: list[str] = []
    node: Expression = expression
    while True:
        if isinstance(node, Projection):
            header.append(_describe(node))
            node = node.child
        elif isinstance(node, OrderBy):
            header.append(_describe(node))
            node = node.child
        elif isinstance(node, GroupBy):
            header.append(_describe(node))
            node = node.child
        elif isinstance(node, Recursive):
            header.append(f"Restrictor ({node.restrictor.value})")
            break
        else:
            # The paper's parser prints the query-level restrictor even when
            # the recursive operator is nested below a union (e.g. the plan of
            # a Kleene-star pattern); report the first ϕ found in the body.
            nested = next(
                (sub for sub in node.iter_subtree() if isinstance(sub, Recursive)), None
            )
            if nested is not None:
                header.append(f"Restrictor ({nested.restrictor.value})")
            break

    for line_number, text in enumerate(header, start=1):
        lines.append(f"{line_number} {text}")

    def walk(sub: Expression, depth: int) -> None:
        indent = "  " * depth
        lines.append(f"{len(lines) + 1} {indent}-> {_describe(sub)}")
        for child in sub.children():
            walk(child, depth + 1)

    walk(node, 0)
    return "\n".join(lines)


def to_indented_tree(expression: Expression) -> str:
    """Render a plan as a plain indented tree (one operator per line, no numbering)."""
    lines: list[str] = []

    def walk(node: Expression, depth: int) -> None:
        lines.append("  " * depth + node.operator_name())
        for child in node.children():
            walk(child, depth + 1)

    walk(expression, 0)
    return "\n".join(lines)
