"""Selection conditions of the core path algebra (paper Section 3.1).

A *simple* selection condition compares a feature of a path against a value:

* ``label(node(i)) = v`` / ``label(edge(i)) = v``
* ``label(first) = v`` / ``label(last) = v``
* ``node(i).pr = v`` / ``edge(i).pr = v``
* ``first.pr = v`` / ``last.pr = v``
* ``len() = i``

*Complex* conditions combine simple ones with ``and`` / ``or`` / ``not``.
Following the paper's footnote, simple conditions also support the
inequality comparators (``!=``, ``<``, ``>``, ``<=``, ``>=``).

Conditions are immutable value objects with structural equality so that plan
rewrites can compare and deduplicate them.  Every condition evaluates over a
:class:`~repro.paths.path.Path` and returns ``True`` or ``False``; accesses
to positions outside the path (e.g. ``edge(3)`` on a length-one path) return
``False`` rather than raising, matching the paper's "returns v" phrasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.errors import ConditionError
from repro.paths.path import Path

__all__ = [
    "Comparator",
    "Condition",
    "SimpleCondition",
    "LabelCondition",
    "PropertyCondition",
    "LengthCondition",
    "And",
    "Or",
    "Not",
    "TrueCondition",
    "label_of_edge",
    "label_of_node",
    "label_of_first",
    "label_of_last",
    "prop_of_edge",
    "prop_of_node",
    "prop_of_first",
    "prop_of_last",
    "length_equals",
    "length_at_most",
    "length_at_least",
]


class Comparator(str, Enum):
    """Comparison operators allowed in simple selection conditions."""

    EQ = "="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="

    def apply(self, left: Any, right: Any) -> bool:
        """Apply the comparator; ordered comparisons on ``None`` are ``False``."""
        if self is Comparator.EQ:
            return left == right
        if self is Comparator.NE:
            return left != right
        if left is None or right is None:
            return False
        try:
            if self is Comparator.LT:
                return left < right
            if self is Comparator.GT:
                return left > right
            if self is Comparator.LE:
                return left <= right
            return left >= right
        except TypeError:
            return False


class Target(str, Enum):
    """What part of the path a simple condition inspects."""

    NODE = "node"
    EDGE = "edge"
    FIRST = "first"
    LAST = "last"
    PATH = "path"


class Condition:
    """Abstract base class of all selection conditions."""

    def evaluate(self, path: Path) -> bool:
        """Return the truth value of this condition over ``path``."""
        raise NotImplementedError

    # Convenience combinators mirroring the paper's (c1 ∧ c2), (c1 ∨ c2), ¬(c1).
    def __and__(self, other: "Condition") -> "And":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def __call__(self, path: Path) -> bool:
        return self.evaluate(path)


@dataclass(frozen=True)
class TrueCondition(Condition):
    """A condition that is always true (the neutral element for ∧)."""

    def evaluate(self, path: Path) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class SimpleCondition(Condition):
    """Common base for the paper's simple conditions."""


@dataclass(frozen=True)
class LabelCondition(SimpleCondition):
    """``label(node(i)) = v``, ``label(edge(i)) = v``, ``label(first) = v``, ``label(last) = v``."""

    target: Target
    value: Any
    position: int | None = None
    comparator: Comparator = Comparator.EQ

    def __post_init__(self) -> None:
        if self.target in (Target.NODE, Target.EDGE) and (
            self.position is None or self.position < 1
        ):
            raise ConditionError("label(node(i)) / label(edge(i)) require a 1-based position")
        if self.target is Target.PATH:
            raise ConditionError("label conditions cannot target the whole path")

    def evaluate(self, path: Path) -> bool:
        object_id = _resolve_object(path, self.target, self.position)
        if object_id is None:
            return False
        label = path.graph.label_of(object_id)
        return self.comparator.apply(label, self.value)

    def __str__(self) -> str:
        if self.target is Target.NODE:
            subject = f"label(node({self.position}))"
        elif self.target is Target.EDGE:
            subject = f"label(edge({self.position}))"
        else:
            subject = f"label({self.target.value})"
        return f"{subject} {self.comparator.value} {self.value!r}"


@dataclass(frozen=True)
class PropertyCondition(SimpleCondition):
    """``node(i).pr = v``, ``edge(i).pr = v``, ``first.pr = v``, ``last.pr = v``."""

    target: Target
    property_name: str
    value: Any
    position: int | None = None
    comparator: Comparator = Comparator.EQ

    def __post_init__(self) -> None:
        if self.target in (Target.NODE, Target.EDGE) and (
            self.position is None or self.position < 1
        ):
            raise ConditionError("node(i).pr / edge(i).pr require a 1-based position")
        if self.target is Target.PATH:
            raise ConditionError("property conditions cannot target the whole path")

    def evaluate(self, path: Path) -> bool:
        object_id = _resolve_object(path, self.target, self.position)
        if object_id is None:
            return False
        value = path.graph.property_of(object_id, self.property_name)
        if value is None:
            return False
        return self.comparator.apply(value, self.value)

    def __str__(self) -> str:
        if self.target is Target.NODE:
            subject = f"node({self.position}).{self.property_name}"
        elif self.target is Target.EDGE:
            subject = f"edge({self.position}).{self.property_name}"
        else:
            subject = f"{self.target.value}.{self.property_name}"
        return f"{subject} {self.comparator.value} {self.value!r}"


@dataclass(frozen=True)
class LengthCondition(SimpleCondition):
    """``len() = i`` (and the inequality variants from the paper's footnote)."""

    value: int
    comparator: Comparator = Comparator.EQ

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConditionError("path length comparisons require a non-negative value")

    def evaluate(self, path: Path) -> bool:
        return self.comparator.apply(path.len(), self.value)

    def __str__(self) -> str:
        return f"len() {self.comparator.value} {self.value}"


@dataclass(frozen=True)
class And(Condition):
    """Conjunction ``(c1 ∧ c2)``."""

    left: Condition
    right: Condition

    def evaluate(self, path: Path) -> bool:
        return self.left.evaluate(path) and self.right.evaluate(path)

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Condition):
    """Disjunction ``(c1 ∨ c2)``."""

    left: Condition
    right: Condition

    def evaluate(self, path: Path) -> bool:
        return self.left.evaluate(path) or self.right.evaluate(path)

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Condition):
    """Negation ``¬(c)``."""

    operand: Condition

    def evaluate(self, path: Path) -> bool:
        return not self.operand.evaluate(path)

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


def _resolve_object(path: Path, target: Target, position: int | None) -> str | None:
    """Return the node/edge identifier a simple condition refers to, or ``None`` if absent."""
    if target is Target.FIRST:
        return path.first()
    if target is Target.LAST:
        return path.last()
    if target is Target.NODE:
        assert position is not None
        if position > path.len() + 1:
            return None
        return path.node(position)
    if target is Target.EDGE:
        assert position is not None
        if position > path.len():
            return None
        return path.edge(position)
    return None


# ----------------------------------------------------------------------
# Constructor helpers mirroring the paper's notation
# ----------------------------------------------------------------------
def label_of_edge(position: int, value: Any, comparator: Comparator = Comparator.EQ) -> LabelCondition:
    """``label(edge(position)) = value`` — the condition used throughout the paper's figures."""
    return LabelCondition(Target.EDGE, value, position, comparator)


def label_of_node(position: int, value: Any, comparator: Comparator = Comparator.EQ) -> LabelCondition:
    """``label(node(position)) = value``."""
    return LabelCondition(Target.NODE, value, position, comparator)


def label_of_first(value: Any, comparator: Comparator = Comparator.EQ) -> LabelCondition:
    """``label(first) = value``."""
    return LabelCondition(Target.FIRST, value, None, comparator)


def label_of_last(value: Any, comparator: Comparator = Comparator.EQ) -> LabelCondition:
    """``label(last) = value``."""
    return LabelCondition(Target.LAST, value, None, comparator)


def prop_of_edge(
    position: int, property_name: str, value: Any, comparator: Comparator = Comparator.EQ
) -> PropertyCondition:
    """``edge(position).property_name = value``."""
    return PropertyCondition(Target.EDGE, property_name, value, position, comparator)


def prop_of_node(
    position: int, property_name: str, value: Any, comparator: Comparator = Comparator.EQ
) -> PropertyCondition:
    """``node(position).property_name = value``."""
    return PropertyCondition(Target.NODE, property_name, value, position, comparator)


def prop_of_first(
    property_name: str, value: Any, comparator: Comparator = Comparator.EQ
) -> PropertyCondition:
    """``first.property_name = value`` (e.g. ``first.name = "Moe"``)."""
    return PropertyCondition(Target.FIRST, property_name, value, None, comparator)


def prop_of_last(
    property_name: str, value: Any, comparator: Comparator = Comparator.EQ
) -> PropertyCondition:
    """``last.property_name = value`` (e.g. ``last.name = "Apu"``)."""
    return PropertyCondition(Target.LAST, property_name, value, None, comparator)


def length_equals(value: int) -> LengthCondition:
    """``len() = value``."""
    return LengthCondition(value, Comparator.EQ)


def length_at_most(value: int) -> LengthCondition:
    """``len() <= value``."""
    return LengthCondition(value, Comparator.LE)


def length_at_least(value: int) -> LengthCondition:
    """``len() >= value``."""
    return LengthCondition(value, Comparator.GE)
