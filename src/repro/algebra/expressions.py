"""Expression trees of the path algebra (logical plans).

Every operator of the paper's algebra is represented as an immutable node of
an expression tree:

* atoms: :class:`NodesScan` (``Nodes(G)``) and :class:`EdgesScan` (``Edges(G)``);
* core algebra (Section 3): :class:`Selection`, :class:`Join`, :class:`Union`;
* recursive algebra (Section 4): :class:`Recursive` (ϕ with a restrictor);
* extended algebra (Section 5): :class:`GroupBy`, :class:`OrderBy`,
  :class:`Projection`.

Expression trees are the *logical plans* of Section 7: they are what the GQL
front end produces, what the optimizer rewrites, and what the evaluator
executes.  Nodes are dataclasses with structural equality, so rewrite rules
can compare plans directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.algebra.conditions import Condition
from repro.algebra.solution_space import GroupByKey, OrderByKey, ProjectionSpec
from repro.semantics.restrictors import Restrictor

__all__ = [
    "Expression",
    "NodesScan",
    "EdgesScan",
    "Selection",
    "Join",
    "Union",
    "Intersection",
    "Difference",
    "Recursive",
    "GroupBy",
    "OrderBy",
    "Projection",
    "walk",
    "trail",
    "acyclic",
    "simple",
    "shortest",
]


@dataclass(frozen=True)
class Expression:
    """Abstract base class of all path-algebra expression nodes."""

    def children(self) -> tuple["Expression", ...]:
        """Return the child expressions (empty for atoms)."""
        return ()

    def returns_solution_space(self) -> bool:
        """``True`` when evaluation yields a solution space rather than a path set."""
        return False

    def iter_subtree(self) -> Iterator["Expression"]:
        """Yield this node and all descendants (pre-order)."""
        yield self
        for child in self.children():
            yield from child.iter_subtree()

    def operator_name(self) -> str:
        """Short name used in plan printouts."""
        return type(self).__name__

    def depth(self) -> int:
        """Height of the expression tree rooted at this node."""
        children = self.children()
        if not children:
            return 1
        return 1 + max(child.depth() for child in children)

    def count_operators(self) -> int:
        """Total number of operator nodes in the subtree."""
        return sum(1 for _ in self.iter_subtree())

    # -- convenience builders so plans read like the paper ---------------
    def select(self, condition: Condition) -> "Selection":
        """Return ``σ_condition(self)``."""
        return Selection(condition, self)

    def join(self, other: "Expression") -> "Join":
        """Return ``self ⋈ other``."""
        return Join(self, other)

    def union(self, other: "Expression") -> "Union":
        """Return ``self ∪ other``."""
        return Union(self, other)

    def intersect(self, other: "Expression") -> "Intersection":
        """Return ``self ∩ other``."""
        return Intersection(self, other)

    def difference(self, other: "Expression") -> "Difference":
        """Return ``self ∖ other``."""
        return Difference(self, other)

    def recursive(self, restrictor: Restrictor = Restrictor.WALK, max_length: int | None = None) -> "Recursive":
        """Return ``ϕ_restrictor(self)``."""
        return Recursive(self, restrictor, max_length)

    def group_by(self, key: GroupByKey | str = GroupByKey.NONE) -> "GroupBy":
        """Return ``γ_key(self)``."""
        if isinstance(key, str):
            key = GroupByKey.from_string(key)
        return GroupBy(self, key)

    def order_by(self, key: OrderByKey | str) -> "OrderBy":
        """Return ``τ_key(self)``."""
        if isinstance(key, str):
            key = OrderByKey.from_string(key)
        return OrderBy(self, key)

    def project(self, partitions: int | str = "*", groups: int | str = "*", paths: int | str = "*") -> "Projection":
        """Return ``π(partitions, groups, paths)(self)``."""
        return Projection(self, ProjectionSpec(partitions, groups, paths))


@dataclass(frozen=True)
class NodesScan(Expression):
    """``Nodes(G)`` — every node of the graph as a length-zero path."""

    def operator_name(self) -> str:
        return "Nodes(G)"

    def __str__(self) -> str:
        return "Nodes(G)"


@dataclass(frozen=True)
class EdgesScan(Expression):
    """``Edges(G)`` — every edge of the graph as a length-one path."""

    def operator_name(self) -> str:
        return "Edges(G)"

    def __str__(self) -> str:
        return "Edges(G)"


@dataclass(frozen=True)
class Selection(Expression):
    """``σ_condition(child)`` — keep the paths satisfying ``condition``."""

    condition: Condition
    child: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def operator_name(self) -> str:
        return f"σ[{self.condition}]"

    def __str__(self) -> str:
        return f"σ[{self.condition}]({self.child})"


@dataclass(frozen=True)
class Join(Expression):
    """``left ⋈ right`` — concatenate compatible path pairs."""

    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def operator_name(self) -> str:
        return "⋈"

    def __str__(self) -> str:
        return f"({self.left} ⋈ {self.right})"


@dataclass(frozen=True)
class Union(Expression):
    """``left ∪ right`` — set union of two path sets."""

    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def operator_name(self) -> str:
        return "∪"

    def __str__(self) -> str:
        return f"({self.left} ∪ {self.right})"


@dataclass(frozen=True)
class Intersection(Expression):
    """``left ∩ right`` — paths present in both inputs.

    One of the "natural graph operators missing from the two proposals" the
    paper mentions: GQL cannot intersect two path-query answers, but the
    algebra is closed under it because both carriers are sets of paths.
    """

    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def operator_name(self) -> str:
        return "∩"

    def __str__(self) -> str:
        return f"({self.left} ∩ {self.right})"


@dataclass(frozen=True)
class Difference(Expression):
    """``left ∖ right`` — paths of the left input not present in the right input.

    Like :class:`Intersection`, a natural set operator over path sets that the
    current GQL / SQL-PGQ drafts do not expose.
    """

    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def operator_name(self) -> str:
        return "∖"

    def __str__(self) -> str:
        return f"({self.left} ∖ {self.right})"


@dataclass(frozen=True)
class Recursive(Expression):
    """``ϕ_restrictor(child)`` — recursive self-join under a path semantics (Section 4)."""

    child: Expression
    restrictor: Restrictor = Restrictor.WALK
    max_length: int | None = None

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def operator_name(self) -> str:
        bound = f", ≤{self.max_length}" if self.max_length is not None else ""
        return f"ϕ{self.restrictor.value.title()}{bound}"

    def __str__(self) -> str:
        return f"{self.operator_name()}({self.child})"


@dataclass(frozen=True)
class GroupBy(Expression):
    """``γψ(child)`` — build a solution space from a path set (Section 5.1)."""

    child: Expression
    key: GroupByKey = GroupByKey.NONE

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def returns_solution_space(self) -> bool:
        return True

    def operator_name(self) -> str:
        return f"γ{self.key.value}" if self.key.value else "γ"

    def __str__(self) -> str:
        return f"{self.operator_name()}({self.child})"


@dataclass(frozen=True)
class OrderBy(Expression):
    """``τθ(child)`` — re-rank the elements of a solution space (Section 5.2)."""

    child: Expression
    key: OrderByKey = OrderByKey.A

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def returns_solution_space(self) -> bool:
        return True

    def operator_name(self) -> str:
        return f"τ{self.key.value}"

    def __str__(self) -> str:
        return f"{self.operator_name()}({self.child})"


@dataclass(frozen=True)
class Projection(Expression):
    """``π(#P,#G,#A)(child)`` — extract a path set from a solution space (Section 5.3)."""

    child: Expression
    spec: ProjectionSpec = field(default_factory=ProjectionSpec)

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def operator_name(self) -> str:
        return f"π{self.spec}"

    def __str__(self) -> str:
        return f"{self.operator_name()}({self.child})"


# ----------------------------------------------------------------------
# Shorthand constructors for the five ϕ variants
# ----------------------------------------------------------------------
def walk(child: Expression, max_length: int | None = None) -> Recursive:
    """``ϕWalk(child)`` — arbitrary path semantics."""
    return Recursive(child, Restrictor.WALK, max_length)


def trail(child: Expression, max_length: int | None = None) -> Recursive:
    """``ϕTrail(child)`` — no repeated edges."""
    return Recursive(child, Restrictor.TRAIL, max_length)


def acyclic(child: Expression, max_length: int | None = None) -> Recursive:
    """``ϕAcyclic(child)`` — no repeated nodes."""
    return Recursive(child, Restrictor.ACYCLIC, max_length)


def simple(child: Expression, max_length: int | None = None) -> Recursive:
    """``ϕSimple(child)`` — no repeated nodes except first == last."""
    return Recursive(child, Restrictor.SIMPLE, max_length)


def shortest(child: Expression, max_length: int | None = None) -> Recursive:
    """``ϕShortest(child)`` — minimum-length paths per endpoint pair."""
    return Recursive(child, Restrictor.SHORTEST, max_length)
