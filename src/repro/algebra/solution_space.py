"""Solution spaces and the extended algebra operators (paper Section 5).

A *solution space* (Definition 5.1) organizes a set of paths into *groups*
which are further organized into *partitions*; a ranking function ``△``
assigns a positive integer to every path, group and partition, which the
order-by operator uses to introduce a virtual ordering.

This module implements:

* :class:`SolutionSpace`, :class:`Partition` and :class:`Group`;
* :func:`group_by` — ``γψ`` for every ψ in Table 4;
* :func:`order_by` — ``τθ`` for every θ in Table 6;
* :func:`project` — ``π(#P, #G, #A)`` following Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator

from repro.errors import SolutionSpaceError
from repro.paths.path import Path
from repro.paths.pathset import PathSet

__all__ = [
    "GroupByKey",
    "OrderByKey",
    "ProjectionSpec",
    "Group",
    "Partition",
    "SolutionSpace",
    "group_by",
    "order_by",
    "project",
    "ALL",
]

#: Sentinel used in projection specs for "all partitions/groups/paths" (the paper's ``*``).
ALL = "*"


class GroupByKey(str, Enum):
    """The ψ parameter of ``γψ`` (Table 4)."""

    NONE = ""
    S = "S"
    T = "T"
    L = "L"
    ST = "ST"
    SL = "SL"
    TL = "TL"
    STL = "STL"

    @property
    def uses_source(self) -> bool:
        return "S" in self.value

    @property
    def uses_target(self) -> bool:
        return "T" in self.value

    @property
    def uses_length(self) -> bool:
        return "L" in self.value

    @classmethod
    def from_string(cls, text: str) -> "GroupByKey":
        """Parse ``"ST"``-style strings (case-insensitive, empty string = γ with no key)."""
        upper = text.upper()
        if any(letter not in "STL" for letter in upper):
            raise SolutionSpaceError(f"unknown group-by key: {text!r}")
        normalized = "".join(sorted(upper, key="STL".index))
        for member in cls:
            if member.value == normalized:
                return member
        raise SolutionSpaceError(f"unknown group-by key: {text!r}")


class OrderByKey(str, Enum):
    """The θ parameter of ``τθ`` (Table 6)."""

    P = "P"
    G = "G"
    A = "A"
    PG = "PG"
    PA = "PA"
    GA = "GA"
    PGA = "PGA"

    @property
    def orders_partitions(self) -> bool:
        return "P" in self.value

    @property
    def orders_groups(self) -> bool:
        return "G" in self.value

    @property
    def orders_paths(self) -> bool:
        return "A" in self.value

    @classmethod
    def from_string(cls, text: str) -> "OrderByKey":
        """Parse ``"PG"``-style strings (case-insensitive)."""
        upper = text.upper()
        if not upper or any(letter not in "PGA" for letter in upper):
            raise SolutionSpaceError(f"unknown order-by key: {text!r}")
        normalized = "".join(sorted(upper, key="PGA".index))
        for member in cls:
            if member.value == normalized:
                return member
        raise SolutionSpaceError(f"unknown order-by key: {text!r}")


@dataclass(frozen=True)
class ProjectionSpec:
    """The ``(#P, #G, #A)`` parameter of the projection operator.

    Each component is either the string ``"*"`` (:data:`ALL`) or a positive
    integer.
    """

    partitions: int | str = ALL
    groups: int | str = ALL
    paths: int | str = ALL

    def __post_init__(self) -> None:
        for name, value in (
            ("partitions", self.partitions),
            ("groups", self.groups),
            ("paths", self.paths),
        ):
            if value == ALL:
                continue
            if not isinstance(value, int) or value < 1:
                raise SolutionSpaceError(
                    f"projection component {name} must be '*' or a positive integer, got {value!r}"
                )

    def __str__(self) -> str:
        return f"({self.partitions}, {self.groups}, {self.paths})"

    @staticmethod
    def _limit(component: int | str, available: int) -> int:
        if component == ALL or (isinstance(component, int) and component > available):
            return available
        return int(component)

    def limit_partitions(self, available: int) -> int:
        """Number of partitions to project given ``available`` partitions."""
        return self._limit(self.partitions, available)

    def limit_groups(self, available: int) -> int:
        """Number of groups per partition to project given ``available`` groups."""
        return self._limit(self.groups, available)

    def limit_paths(self, available: int) -> int:
        """Number of paths per group to project given ``available`` paths."""
        return self._limit(self.paths, available)


@dataclass
class Group:
    """A group of paths inside a partition.

    ``key`` records the grouping values that induced the group (e.g. a length
    for γL, or nothing for γ).  ``rank`` is the value of the ``△`` function.
    """

    key: tuple = ()
    paths: list[Path] = field(default_factory=list)
    rank: int = 1
    path_ranks: dict[Path, int] = field(default_factory=dict)

    def min_length(self) -> int:
        """``MinL(G)`` — length of the shortest path in the group."""
        if not self.paths:
            raise SolutionSpaceError("MinL is undefined for an empty group")
        return min(path.len() for path in self.paths)

    def path_rank(self, path: Path) -> int:
        """``△(p)`` for a path of this group (defaults to 1)."""
        return self.path_ranks.get(path, 1)

    def sorted_paths(self) -> list[Path]:
        """Paths sorted by ``△`` (stable: insertion order breaks ties)."""
        return sorted(self.paths, key=lambda path: self.path_ranks.get(path, 1))

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self.paths)


@dataclass
class Partition:
    """A partition of groups inside a solution space."""

    key: tuple = ()
    groups: list[Group] = field(default_factory=list)
    rank: int = 1

    def min_length(self) -> int:
        """``MinL(P)`` — minimum length among all groups of the partition."""
        if not self.groups:
            raise SolutionSpaceError("MinL is undefined for an empty partition")
        return min(group.min_length() for group in self.groups)

    def sorted_groups(self) -> list[Group]:
        """Groups sorted by ``△`` (stable: insertion order breaks ties)."""
        return sorted(self.groups, key=lambda group: group.rank)

    def paths(self) -> list[Path]:
        """All paths of the partition, in group order."""
        return [path for group in self.groups for path in group.paths]

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[Group]:
        return iter(self.groups)


class SolutionSpace:
    """A solution space ``SS = (S, G, P, α, β, △)`` (Definition 5.1).

    The nested ``partitions -> groups -> paths`` lists encode the assignment
    functions α and β; the ``rank`` attributes encode ``△``.
    """

    def __init__(self, partitions: Iterable[Partition] = (), grouping: GroupByKey = GroupByKey.NONE) -> None:
        self.partitions: list[Partition] = list(partitions)
        self.grouping = grouping

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def num_partitions(self) -> int:
        """Number of partitions ``|P|``."""
        return len(self.partitions)

    def num_groups(self) -> int:
        """Total number of groups ``|G|``."""
        return sum(len(partition.groups) for partition in self.partitions)

    def num_paths(self) -> int:
        """Total number of paths ``|S|``."""
        return sum(len(group.paths) for partition in self.partitions for group in partition.groups)

    def all_paths(self) -> PathSet:
        """Return the underlying set of paths ``S``."""
        result = PathSet()
        for partition in self.partitions:
            for group in partition.groups:
                result.update(group.paths)
        return result

    def groups(self) -> list[Group]:
        """Return every group across all partitions."""
        return [group for partition in self.partitions for group in partition.groups]

    def partition_for(self, path: Path) -> Partition | None:
        """Return the partition containing ``path`` (``β(α(p))``), or ``None``."""
        for partition in self.partitions:
            for group in partition.groups:
                if path in group.paths:
                    return partition
        return None

    def group_for(self, path: Path) -> Group | None:
        """Return the group containing ``path`` (``α(p)``), or ``None``."""
        for partition in self.partitions:
            for group in partition.groups:
                if path in group.paths:
                    return group
        return None

    def sorted_partitions(self) -> list[Partition]:
        """Partitions sorted by ``△`` (stable)."""
        return sorted(self.partitions, key=lambda partition: partition.rank)

    def shape(self) -> tuple[int, int, int]:
        """Return ``(num_partitions, num_groups, num_paths)`` — used to check Table 4."""
        return (self.num_partitions(), self.num_groups(), self.num_paths())

    def copy(self) -> "SolutionSpace":
        """Return a structural copy (paths are shared, containers are new)."""
        new_partitions = []
        for partition in self.partitions:
            new_groups = [
                Group(
                    key=group.key,
                    paths=list(group.paths),
                    rank=group.rank,
                    path_ranks=dict(group.path_ranks),
                )
                for group in partition.groups
            ]
            new_partitions.append(Partition(key=partition.key, groups=new_groups, rank=partition.rank))
        return SolutionSpace(new_partitions, self.grouping)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolutionSpace(partitions={self.num_partitions()}, groups={self.num_groups()}, "
            f"paths={self.num_paths()}, grouping={self.grouping.value or '∅'})"
        )


# ----------------------------------------------------------------------
# Group-by (γψ)
# ----------------------------------------------------------------------
def group_by(paths: PathSet | Iterable[Path], key: GroupByKey | str = GroupByKey.NONE) -> SolutionSpace:
    """Evaluate ``γψ(S)`` and return the induced solution space (Section 5.1).

    Partition keys use the Source/Target components of ψ; group keys add the
    Length component.  When ψ contains no Source/Target there is a single
    partition; when it contains no Length there is a single group per
    partition.  All ranks are initialized to 1 (no virtual order).
    """
    if isinstance(key, str):
        key = GroupByKey.from_string(key)
    path_list = list(paths)

    partitions: dict[tuple, Partition] = {}
    groups: dict[tuple[tuple, tuple], Group] = {}

    for path in path_list:
        partition_key: tuple = ()
        if key.uses_source:
            partition_key += (path.first(),)
        if key.uses_target:
            partition_key += (path.last(),)
        group_key: tuple = ()
        if key.uses_length:
            group_key += (path.len(),)

        partition = partitions.get(partition_key)
        if partition is None:
            partition = Partition(key=partition_key)
            partitions[partition_key] = partition
        group = groups.get((partition_key, group_key))
        if group is None:
            group = Group(key=group_key)
            groups[(partition_key, group_key)] = group
            partition.groups.append(group)
        group.paths.append(path)
        group.path_ranks[path] = 1

    return SolutionSpace(partitions.values(), grouping=key)


# ----------------------------------------------------------------------
# Order-by (τθ)
# ----------------------------------------------------------------------
def order_by(space: SolutionSpace, key: OrderByKey | str) -> SolutionSpace:
    """Evaluate ``τθ(SS)`` and return a solution space with the ``△'`` ranks of Table 6.

    * θ containing ``P``: every partition gets rank ``MinL(P)``;
    * θ containing ``G``: every group gets rank ``MinL(G)``;
    * θ containing ``A``: every path gets rank ``Len(p)``.

    Components absent from θ keep their previous rank unchanged.
    """
    if isinstance(key, str):
        key = OrderByKey.from_string(key)
    result = space.copy()
    for partition in result.partitions:
        if key.orders_partitions:
            partition.rank = partition.min_length() if partition.groups else partition.rank
        for group in partition.groups:
            if key.orders_groups:
                group.rank = group.min_length() if group.paths else group.rank
            if key.orders_paths:
                for path in group.paths:
                    group.path_ranks[path] = path.len()
    return result


# ----------------------------------------------------------------------
# Projection (π) — Algorithm 1
# ----------------------------------------------------------------------
def project(space: SolutionSpace, spec: ProjectionSpec | tuple = ProjectionSpec()) -> PathSet:
    """Evaluate ``π(#P, #G, #A)(SS)`` following Algorithm 1.

    Partitions, groups and paths are each sorted by their ``△`` value (stable
    with respect to insertion order), truncated to the requested counts, and
    the surviving paths are returned as a :class:`PathSet`.
    """
    if isinstance(spec, tuple):
        spec = ProjectionSpec(*spec)
    output = PathSet()

    sorted_partitions = space.sorted_partitions()
    max_partitions = spec.limit_partitions(len(sorted_partitions))
    for partition in sorted_partitions[:max_partitions]:
        sorted_groups = partition.sorted_groups()
        max_groups = spec.limit_groups(len(sorted_groups))
        for group in sorted_groups[:max_groups]:
            sorted_paths = group.sorted_paths()
            max_paths = spec.limit_paths(len(sorted_paths))
            for path in sorted_paths[:max_paths]:
                output.add(path)
    return output
