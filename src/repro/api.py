"""The client API: one front door for every way of running path queries.

The paper positions the algebra as the foundation a *host query language*
builds on — applications consume path-query answers as binding tables
(Section 2.3).  This module is that application-facing surface, replacing
three historical entry points (the :class:`~repro.engine.engine.PathQueryEngine`
facade with its growing keyword sprawl, :class:`~repro.service.QueryService`'s
request/outcome types, and the CLI's ad-hoc wiring) with a single shape::

    import repro

    db = repro.connect(graph)
    with db.session() as session:
        pq = session.prepare(
            'MATCH ANY SHORTEST TRAIL p = (?x {name: $name})-[:Knows]->+(?y)'
        )
        for path in pq.execute(name="Moe"):
            print(path)

* :func:`connect` returns a :class:`Database` — the owner of the graph, the
  shared plan cache, the cost model, and (lazily) the concurrent query
  service.
* :meth:`Database.session` hands out :class:`Session` context managers.  A
  session pins a :class:`~repro.graph.snapshot.GraphSnapshot` at creation —
  every query in the session sees one immutable version of the graph, however
  long the session lives and whatever other threads write — and carries the
  session defaults (executor, limit, timeout, resource caps).
* :meth:`Session.prepare` compiles a **parameterized prepared query** once;
  ``$name`` placeholders are bound per execution
  (:meth:`PreparedQuery.execute`), and every binding shares the single cached
  plan.
* Every execution returns a streaming
  :class:`~repro.engine.results.ResultCursor` — lazy iteration,
  ``fetchmany``/``fetchall``, a :meth:`~repro.engine.results.ResultCursor.bindings`
  row view — with bounded memory under the pipeline executor.

The old surfaces remain as thin delegating shims (``PathQueryEngine.query``,
``QueryService.submit``), so existing code keeps working while new code gets
one coherent API.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.engine.engine import CachedPlan, ExplainResult, PathQueryEngine, QueryResult
from repro.engine.executor import EXECUTOR_NAMES
from repro.engine.router import EXECUTION_MODES
from repro.engine.results import ResultCursor
from repro.errors import ServiceError
from repro.execution import QueryBudget
from repro.graph.compact import AutoCompactPolicy
from repro.graph.model import PropertyGraph
from repro.graph.snapshot import GraphSnapshot
from repro.graph.wal import DurableStore
from repro.service.cache import StripedLRUCache
from repro.service.service import QueryService

__all__ = ["connect", "Database", "Session", "PreparedQuery"]

#: Sentinel distinguishing "not given — use the session default" from an
#: explicit ``None`` (which *clears* the session default for one call).
_DEFAULT = object()


def connect(
    graph: PropertyGraph | None = None,
    *,
    executor: str = "auto",
    optimize: bool = True,
    default_max_length: int | None = None,
    plan_cache_size: int = 256,
    cache_stripes: int = 8,
    workers: int = 4,
    execution_mode: str = "threads",
) -> "Database":
    """Open a :class:`Database` over ``graph`` (a fresh empty graph when omitted).

    Args:
        graph: The property graph to serve.  The database does not copy it;
            mutations through the graph's own API remain visible to new
            sessions (existing sessions stay pinned to their snapshot).
        executor: Default execution strategy for every query run through this
            database (``"auto"``, ``"materialize"``, ``"pipeline"`` or ``"automaton"``).
        optimize: Whether plans run through the rewrite-rule optimizer.
        default_max_length: Engine-level bound for unbounded ϕWalk recursion.
        plan_cache_size: Capacity of the shared parsed-plan cache.
        cache_stripes: Lock stripes of the plan cache (it is shared with the
            concurrent service, so it is striped and thread-safe from the
            start).
        workers: Default worker count of the lazily created concurrent
            service (:meth:`Database.service`).
        execution_mode: Default execution backend of that service —
            ``"threads"`` (GIL-bound worker threads), ``"processes"``
            (forked worker processes, true multi-core parallelism) or
            ``"race"`` (processes racing both executors per ``auto`` query).
    """
    return Database(
        graph,
        executor=executor,
        optimize=optimize,
        default_max_length=default_max_length,
        plan_cache_size=plan_cache_size,
        cache_stripes=cache_stripes,
        workers=workers,
        execution_mode=execution_mode,
    )


class Database:
    """The owner of a graph and everything needed to query it.

    One ``Database`` holds the graph, the lock-striped plan cache (shared by
    direct sessions *and* the concurrent service, so a plan prepared anywhere
    is a cache hit everywhere), the per-version cost-model memo inside its
    engine, and — created lazily on first use — the
    :class:`~repro.service.QueryService` worker pool for asynchronous
    submission.

    Direct conveniences (:meth:`execute`, :meth:`query`, :meth:`explain`) run
    against the *live* graph; :meth:`session` pins a snapshot for repeatable
    reads.  Closing the database closes the service (if one was started);
    sessions and cursors opened from it are independent and close separately.
    """

    def __init__(
        self,
        graph: PropertyGraph | None = None,
        *,
        executor: str = "auto",
        optimize: bool = True,
        default_max_length: int | None = None,
        plan_cache_size: int = 256,
        cache_stripes: int = 8,
        workers: int = 4,
        execution_mode: str = "threads",
        auto_compact: bool = True,
    ) -> None:
        if executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
            )
        if execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution_mode {execution_mode!r}; expected one of "
                f"{', '.join(EXECUTION_MODES)}"
            )
        self.graph = graph if graph is not None else PropertyGraph()
        self.plan_cache = StripedLRUCache(plan_cache_size, cache_stripes)
        self.engine = PathQueryEngine(
            self.graph,
            optimize=optimize,
            default_max_length=default_max_length,
            executor=executor,
            plan_cache=self.plan_cache,
        )
        self.default_executor = executor
        self.default_workers = workers
        self.default_execution_mode = execution_mode
        self._optimize = optimize
        self._default_max_length = default_max_length
        # Auto-freeze on read: sessions/snapshots observe the graph and build
        # its columnar core once it looks quiescent (two consecutive reads at
        # one version); any mutation transparently thaws.  See
        # AutoCompactPolicy for the exact heuristic and README "Freezing".
        self.auto_compact = auto_compact
        self._compact_policy = AutoCompactPolicy()
        self._service: QueryService | None = None
        self._store: DurableStore | None = None
        self._closed = False

    @classmethod
    def open(
        cls,
        path: str,
        *,
        fsync: str = "always",
        batch_interval: int = 64,
        name: str = "G",
        **options,
    ) -> "Database":
        """Open a **durable** database backed by a directory on disk.

        Recovers the graph from ``path`` (snapshot + write-ahead-log replay;
        an empty or missing directory starts a fresh graph) and attaches the
        WAL so every subsequent mutation through :attr:`graph` is logged
        *before* it is applied.  :meth:`close` flushes and closes the log;
        :meth:`checkpoint` folds it into the snapshot.

        Args:
            path: Directory holding ``snapshot.json`` and ``wal.log``
                (created when absent).
            fsync: Durability policy — ``"always"`` (fsync per mutation),
                ``"batch"`` (every ``batch_interval`` mutations and on
                close/checkpoint) or ``"off"`` (OS page cache only).
            batch_interval: Mutations between fsyncs under ``"batch"``.
            name: Graph name when starting fresh.
            options: Forwarded to the :class:`Database` constructor
                (``executor``, ``plan_cache_size``, ...).
        """
        store = DurableStore(path, name=name, fsync=fsync, batch_interval=batch_interval)
        try:
            database = cls(store.graph, **options)
        except BaseException:
            store.close()
            raise
        database._store = store
        return database

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @property
    def store(self) -> DurableStore | None:
        """The backing :class:`~repro.graph.wal.DurableStore` (``None`` when in-memory)."""
        return self._store

    @property
    def durable(self) -> bool:
        """``True`` when this database was opened with :meth:`open`."""
        return self._store is not None

    def checkpoint(self) -> int:
        """Fold the write-ahead log into the snapshot; returns the version.

        Bounds recovery time: after a checkpoint, reopening replays an empty
        log.  Requires a durable database.
        """
        self._ensure_open()
        if self._store is None:
            raise ServiceError("checkpoint requires a durable database (Database.open)")
        return self._store.rotate()

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(
        self,
        *,
        executor: str | None = None,
        limit: int | None = None,
        max_length: int | None = None,
        timeout: float | None = None,
        max_visited: int | None = None,
        max_results: int | None = None,
    ) -> "Session":
        """Open a :class:`Session` pinned to the graph as of *now*.

        The keyword arguments become the session defaults, applied to every
        query the session runs unless overridden per call.  ``timeout`` is in
        seconds and is measured per execution (not per session).
        """
        self._ensure_open()
        if self.auto_compact:
            self._compact_policy.observe(self.graph)
        return Session(
            self,
            executor=executor,
            limit=limit,
            max_length=max_length,
            timeout=timeout,
            max_visited=max_visited,
            max_results=max_results,
        )

    # ------------------------------------------------------------------
    # Direct (live-graph) conveniences
    # ------------------------------------------------------------------
    def execute(
        self, text: str, params: Mapping[str, Any] | None = None, **options
    ) -> ResultCursor:
        """Run one query against the live graph; returns a streaming cursor.

        ``options`` are the per-call knobs of :meth:`Session.execute`
        (``executor``, ``limit``, ``max_length``, ``timeout``,
        ``max_visited``, ``max_results``).
        """
        self._ensure_open()
        # Not a context manager on purpose: closing the ephemeral session
        # would close the cursor being handed out.  A session holds no
        # resources beyond its open cursors.
        return self.session().execute(text, params, **options)

    def query(
        self, text: str, params: Mapping[str, Any] | None = None, **options
    ) -> QueryResult:
        """Run one query against the live graph, fully materialized."""
        self._ensure_open()
        with self.session() as session:
            return session.query(text, params, **options)

    def prepare(self, text: str, max_length: int | None = None) -> "PreparedQuery":
        """Prepare ``text`` against the live graph (no snapshot pinning).

        Unlike :meth:`Session.prepare`, executions see the graph as of each
        call; a mutation between executions re-plans once at the new version.
        """
        self._ensure_open()
        return PreparedQuery(None, self, text, max_length)

    def explain(self, text: str, max_length: int | None = None) -> ExplainResult:
        """Plan and optimize without executing; report costs and rewrites."""
        self._ensure_open()
        return self.engine.explain(text, max_length=max_length)

    def cost_model(self):
        """The engine's cost model for the live graph (memoized per version)."""
        return self.engine.cost_model()

    def snapshot(self) -> GraphSnapshot:
        """An immutable snapshot of the graph as of now."""
        if self.auto_compact:
            self._compact_policy.observe(self.graph)
        return self.graph.snapshot()

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the shared plan cache."""
        return self.plan_cache.stats()

    # ------------------------------------------------------------------
    # Concurrent service
    # ------------------------------------------------------------------
    def service(self, workers: int | None = None, **options) -> QueryService:
        """The database's concurrent :class:`~repro.service.QueryService`.

        Created on first call (with these arguments) and reused afterwards —
        one worker pool per database.  The service shares the database's plan
        cache, so plans prepared through sessions serve service submissions
        and vice versa.  ``workers`` and ``execution_mode`` default to the
        values given to :func:`connect`; the remaining ``options`` are
        forwarded to :class:`~repro.service.QueryService`
        (``result_cache_size``, ``default_deadline``, ``max_pending``,
        ``race_band``, ``pool_options``, ...).
        """
        self._ensure_open()
        if self._service is None:
            options.setdefault("executor", self.default_executor)
            options.setdefault("optimize", self._optimize)
            options.setdefault("default_max_length", self._default_max_length)
            options.setdefault("execution_mode", self.default_execution_mode)
            self._service = QueryService(
                self.graph,
                workers=workers if workers is not None else self.default_workers,
                plan_cache=self.plan_cache,
                **options,
            )
        return self._service

    def submit(self, text: str, **options):
        """Submit a query to the concurrent service (started on demand).

        Returns a :class:`~repro.service.QueryTicket`; ``options`` are the
        knobs of :meth:`~repro.service.QueryService.submit` (including
        ``params=``).
        """
        return self.service().submit(text, **options)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` was called."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("database is closed")

    def close(self) -> None:
        """Close the database (drains the service; flushes and detaches the WAL)."""
        if self._closed:
            return
        self._closed = True
        if self._service is not None:
            self._service.close()
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Database(graph={self.graph.name!r}, version={self.graph.version}, "
            f"executor={self.default_executor!r})"
        )


class Session:
    """A snapshot-pinned query scope with defaults.

    Sessions are cheap: pinning is O(1) (the snapshot is a version-filtered
    view, not a copy), so the intended pattern is one session per unit of
    work::

        with db.session(timeout=0.5, limit=100) as session:
            cursor = session.execute('MATCH ...')

    Every query the session runs — direct :meth:`execute`/:meth:`query` or
    through a :class:`PreparedQuery` — sees the same graph version and
    inherits the session defaults (overridable per call; passing ``None``
    explicitly clears a default for that call).  Closing the session closes
    any cursors it still has open.
    """

    def __init__(
        self,
        database: Database,
        *,
        executor: str | None = None,
        limit: int | None = None,
        max_length: int | None = None,
        timeout: float | None = None,
        max_visited: int | None = None,
        max_results: int | None = None,
        snapshot: GraphSnapshot | None = None,
    ) -> None:
        if executor is not None and executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
            )
        self.database = database
        self.snapshot = snapshot if snapshot is not None else database.graph.snapshot()
        self.default_executor = executor
        self.default_limit = limit
        self.default_max_length = max_length
        self.default_timeout = timeout
        self.default_max_visited = max_visited
        self.default_max_results = max_results
        self._cursors: list[ResultCursor] = []
        self._closed = False

    @property
    def version(self) -> int:
        """The pinned graph version every query in this session sees."""
        return self.snapshot.version

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def prepare(self, text: str, max_length: Any = _DEFAULT) -> "PreparedQuery":
        """Compile ``text`` once; execute it later with per-call bindings.

        Parsing, planning and optimizing happen *now* (the plan lands in the
        database's shared cache under the parameterized text); every
        subsequent :meth:`PreparedQuery.execute` — whatever its bindings — is
        a plan-cache hit.
        """
        self._ensure_open()
        return PreparedQuery(self, self.database, text, self._value(max_length, self.default_max_length))

    def execute(
        self,
        text: str,
        params: Mapping[str, Any] | None = None,
        *,
        executor: Any = _DEFAULT,
        limit: Any = _DEFAULT,
        max_length: Any = _DEFAULT,
        timeout: Any = _DEFAULT,
        max_visited: Any = _DEFAULT,
        max_results: Any = _DEFAULT,
    ) -> ResultCursor:
        """Run a query at the session's pinned version; returns a streaming cursor."""
        self._ensure_open()
        cursor = self.database.engine.open_cursor(
            text,
            params,
            max_length=self._value(max_length, self.default_max_length),
            executor=self._value(executor, self.default_executor),
            limit=self._value(limit, self.default_limit),
            graph=self.snapshot,
            budget=self._budget(timeout, max_visited, max_results),
        )
        self._track(cursor)
        return cursor

    def query(
        self,
        text: str,
        params: Mapping[str, Any] | None = None,
        *,
        executor: Any = _DEFAULT,
        limit: Any = _DEFAULT,
        max_length: Any = _DEFAULT,
        timeout: Any = _DEFAULT,
        max_visited: Any = _DEFAULT,
        max_results: Any = _DEFAULT,
    ) -> QueryResult:
        """Run a query at the pinned version, fully materialized (:class:`QueryResult`)."""
        self._ensure_open()
        return self.database.engine.query(
            text,
            max_length=self._value(max_length, self.default_max_length),
            executor=self._value(executor, self.default_executor),
            limit=self._value(limit, self.default_limit),
            graph=self.snapshot,
            budget=self._budget(timeout, max_visited, max_results),
            params=params,
        )

    def explain(self, text: str, max_length: Any = _DEFAULT) -> ExplainResult:
        """Plan and optimize without executing; report costs and rewrites."""
        self._ensure_open()
        return self.database.engine.explain(
            text, max_length=self._value(max_length, self.default_max_length)
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _value(given: Any, default: Any) -> Any:
        return default if given is _DEFAULT else given

    def _budget(
        self, timeout: Any, max_visited: Any, max_results: Any
    ) -> QueryBudget | None:
        seconds = self._value(timeout, self.default_timeout)
        visited = self._value(max_visited, self.default_max_visited)
        results = self._value(max_results, self.default_max_results)
        if seconds is None and visited is None and results is None:
            return None
        return QueryBudget(
            deadline=(time.monotonic() + seconds) if seconds is not None else None,
            max_visited=visited,
            max_results=results,
        )

    def _track(self, cursor: ResultCursor) -> None:
        self._cursors = [open_ for open_ in self._cursors if not open_.closed]
        self._cursors.append(cursor)

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("session is closed")
        self.database._ensure_open()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """``True`` once the session was closed."""
        return self._closed

    def close(self) -> None:
        """Close the session and any cursors it still has open; idempotent."""
        if self._closed:
            return
        self._closed = True
        for cursor in self._cursors:
            cursor.close()
        self._cursors.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"Session({state}, version={self.version})"


class PreparedQuery:
    """A parameterized query compiled once, executable many times.

    Obtained from :meth:`Session.prepare` (snapshot-pinned) or
    :meth:`Database.prepare` (live graph).  The query text may declare
    ``$name`` placeholders; :attr:`parameters` lists them, and every
    execution must bind exactly that set::

        pq = session.prepare('MATCH ... (?x {name: $name})-[:Knows]->+(?y)')
        cursor = pq.execute(name="Moe")

    All executions share one cached plan (the parse/plan/optimize cost is
    paid at prepare time); bindings are substituted into a fresh copy of the
    plan per execution, so results can never leak between bindings.
    """

    def __init__(
        self,
        session: Session | None,
        database: Database,
        text: str,
        max_length: int | None,
    ) -> None:
        self._session = session
        self._database = database
        self.text = text
        self.max_length = max_length
        graph = session.snapshot if session is not None else None
        cached: CachedPlan = database.engine.prepare(text, max_length=max_length, graph=graph)
        #: The ``$name`` placeholders every execution must bind.
        self.parameters: tuple[str, ...] = cached.parameters

    def execute(
        self, params: Mapping[str, Any] | None = None, /, **bindings
    ) -> ResultCursor:
        """Execute with the given bindings; returns a streaming cursor.

        Bindings are passed as a mapping, as keywords, or both (keywords
        win on conflict): ``pq.execute({"name": "Moe"})`` and
        ``pq.execute(name="Moe")`` are equivalent.
        """
        merged = {**(params or {}), **bindings}
        if self._session is not None:
            return self._session.execute(self.text, merged, max_length=self.max_length)
        return self._database.execute(self.text, merged, max_length=self.max_length)

    def query(
        self, params: Mapping[str, Any] | None = None, /, **bindings
    ) -> QueryResult:
        """Execute with the given bindings, fully materialized."""
        merged = {**(params or {}), **bindings}
        if self._session is not None:
            return self._session.query(self.text, merged, max_length=self.max_length)
        with self._database.session() as session:
            return session.query(self.text, merged, max_length=self.max_length)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        declared = ", ".join(f"${name}" for name in self.parameters) or "(none)"
        return f"PreparedQuery({self.text!r}, parameters: {declared})"
