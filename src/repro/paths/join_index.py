"""Reusable first-node join index over a set of base paths.

Every consumer of the path join ``S1 ⋈ S2`` — :meth:`PathSet.join
<repro.paths.pathset.PathSet.join>`, the four closure strategies of
:mod:`repro.semantics.restrictors`, and the physical ``_RecursiveOp`` — needs
the same auxiliary structure: the right-hand paths bucketed by their first
node, so that the extensions of a path ending in node ``v`` can be enumerated
in time proportional to their number.

The seed implementation rebuilt that dictionary on *every* fix-point round
even though the base set never changes during a closure.  :class:`JoinIndex`
makes the index a first-class value that is built once and shared: a closure
builds it before entering the fix point, and a caller that already holds an
index (for example the physical recursive operator, which materializes its
input anyway) can hand it to :func:`~repro.semantics.restrictors.recursive_closure`
so the work is never repeated.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.paths.path import Path

__all__ = ["JoinIndex", "IntJoinIndex"]

_EMPTY: tuple[Path, ...] = ()


class JoinIndex:
    """Paths of a base set bucketed by their first node.

    The index is immutable by convention: it is built once from an iterable of
    paths and only queried afterwards, which is what makes it safe to share
    between a ``PathSet`` join and the rounds of a fix-point closure.
    """

    __slots__ = ("_by_first", "_size")

    def __init__(self, paths: Iterable[Path]) -> None:
        by_first: dict[str, list[Path]] = {}
        size = 0
        for path in paths:
            by_first.setdefault(path.first(), []).append(path)
            size += 1
        self._by_first = by_first
        self._size = size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def extensions(self, node_id: str) -> list[Path] | tuple[Path, ...]:
        """Return the base paths starting at ``node_id`` (possibly empty)."""
        return self._by_first.get(node_id, _EMPTY)

    def first_nodes(self) -> Iterator[str]:
        """Iterate over the distinct first nodes occurring in the base."""
        return iter(self._by_first)

    def join_from(self, left: Path) -> Iterator[Path]:
        """Yield ``left ∘ e`` for every indexed extension ``e`` of ``left``."""
        for extension in self._by_first.get(left.last(), _EMPTY):
            yield left.concat(extension)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __repr__(self) -> str:
        return f"JoinIndex(paths={self._size}, first_nodes={len(self._by_first)})"


class IntJoinIndex:
    """The int-encoded twin of :class:`JoinIndex` over a frozen compact graph.

    Buckets interleaved int sequences (see :mod:`repro.paths.intpath`) by
    their first node *index*.  Built in base order, so per-bucket extension
    order — and therefore the production order of every closure round — is
    identical to what :class:`JoinIndex` yields over the same base.

    :meth:`annotated` mirrors ``_annotate_extensions`` of the object closures:
    per first node, the tuple the hot loop needs — ``(extension length,
    check ids, appended tail)`` — where the appended tail is a single
    interleaved slice (``seq[1:]``) instead of separate node/edge tuples,
    so extending a path is one tuple concatenation.
    """

    __slots__ = ("_by_first", "_size")

    def __init__(self, seqs: Iterable[tuple[int, ...]]) -> None:
        by_first: dict[int, list[tuple[int, ...]]] = {}
        size = 0
        for seq in seqs:
            by_first.setdefault(seq[0], []).append(seq)
            size += 1
        self._by_first = by_first
        self._size = size

    def extensions(self, node_index: int) -> list[tuple[int, ...]] | tuple:
        """Return the base sequences starting at ``node_index`` (possibly empty)."""
        return self._by_first.get(node_index, _EMPTY)

    def first_nodes(self) -> Iterator[int]:
        return iter(self._by_first)

    def annotated(self, check: str) -> dict[int, list[tuple]]:
        """Per-first-node hot-loop buckets; ``check`` selects the probe ids.

        ``"none"`` — no probe ids (WALK); ``"edges"`` — the extension's edge
        indexes (TRAIL); ``"tail_nodes"`` — its node indexes after the first
        (ACYCLIC / SIMPLE).  Matches the ``check_ids_of`` lambdas the object
        closures pass to ``_annotate_extensions``.
        """
        buckets: dict[int, list[tuple]] = {}
        for node_index, seqs in self._by_first.items():
            if check == "edges":
                buckets[node_index] = [
                    (len(seq) // 2, seq[1::2], seq[1:]) for seq in seqs
                ]
            elif check == "tail_nodes":
                buckets[node_index] = [
                    (len(seq) // 2, seq[2::2], seq[1:]) for seq in seqs
                ]
            else:
                buckets[node_index] = [(len(seq) // 2, (), seq[1:]) for seq in seqs]
        return buckets

    def mask_annotated(self, check: str) -> dict[int, list[tuple]]:
        """Bitmask twins of :meth:`annotated` for the pruned closures.

        Because int indexes are dense, a visited-id set is one Python int
        (bit ``i`` = id ``i``): a conformance probe is then a single ``&``
        and the extended state a single ``|``, replacing the per-candidate
        set copy of the object closures.  Per extension the hot loop gets:

        ``"edges"`` (TRAIL) / ``"tail_nodes"`` (ACYCLIC) —
            ``(length, mask, distinct, tail)`` where ``mask`` covers the
            probe ids and ``distinct`` is whether they are internally
            duplicate-free (a property of the extension alone, so it is
            decided here once instead of per candidate).

        ``"simple"`` (SIMPLE) —
            ``(length, prefix_mask, prefix_distinct, last_bit, last_node,
            tail)``: the appended nodes split into interior prefix and final
            node, because the final node is allowed to close a cycle back to
            the candidate's first node.
        """
        buckets: dict[int, list[tuple]] = {}
        for node_index, seqs in self._by_first.items():
            entries: list[tuple] = []
            for seq in seqs:
                length = len(seq) // 2
                tail = seq[1:]
                if check == "simple":
                    appended = seq[2::2]
                    prefix = appended[:-1]
                    mask = 0
                    distinct = True
                    for index in prefix:
                        bit = 1 << index
                        if mask & bit:
                            distinct = False
                        mask |= bit
                    entries.append(
                        (length, mask, distinct, 1 << seq[-1], seq[-1], tail)
                    )
                else:
                    ids = seq[1::2] if check == "edges" else seq[2::2]
                    mask = 0
                    distinct = True
                    for index in ids:
                        bit = 1 << index
                        if mask & bit:
                            distinct = False
                        mask |= bit
                    entries.append((length, mask, distinct, tail))
            buckets[node_index] = entries
        return buckets

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __repr__(self) -> str:
        return f"IntJoinIndex(paths={self._size}, first_nodes={len(self._by_first)})"
