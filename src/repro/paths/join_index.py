"""Reusable first-node join index over a set of base paths.

Every consumer of the path join ``S1 ⋈ S2`` — :meth:`PathSet.join
<repro.paths.pathset.PathSet.join>`, the four closure strategies of
:mod:`repro.semantics.restrictors`, and the physical ``_RecursiveOp`` — needs
the same auxiliary structure: the right-hand paths bucketed by their first
node, so that the extensions of a path ending in node ``v`` can be enumerated
in time proportional to their number.

The seed implementation rebuilt that dictionary on *every* fix-point round
even though the base set never changes during a closure.  :class:`JoinIndex`
makes the index a first-class value that is built once and shared: a closure
builds it before entering the fix point, and a caller that already holds an
index (for example the physical recursive operator, which materializes its
input anyway) can hand it to :func:`~repro.semantics.restrictors.recursive_closure`
so the work is never repeated.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.paths.path import Path

__all__ = ["JoinIndex"]

_EMPTY: tuple[Path, ...] = ()


class JoinIndex:
    """Paths of a base set bucketed by their first node.

    The index is immutable by convention: it is built once from an iterable of
    paths and only queried afterwards, which is what makes it safe to share
    between a ``PathSet`` join and the rounds of a fix-point closure.
    """

    __slots__ = ("_by_first", "_size")

    def __init__(self, paths: Iterable[Path]) -> None:
        by_first: dict[str, list[Path]] = {}
        size = 0
        for path in paths:
            by_first.setdefault(path.first(), []).append(path)
            size += 1
        self._by_first = by_first
        self._size = size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def extensions(self, node_id: str) -> list[Path] | tuple[Path, ...]:
        """Return the base paths starting at ``node_id`` (possibly empty)."""
        return self._by_first.get(node_id, _EMPTY)

    def first_nodes(self) -> Iterator[str]:
        """Iterate over the distinct first nodes occurring in the base."""
        return iter(self._by_first)

    def join_from(self, left: Path) -> Iterator[Path]:
        """Yield ``left ∘ e`` for every indexed extension ``e`` of ``left``."""
        for extension in self._by_first.get(left.last(), _EMPTY):
            yield left.concat(extension)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __repr__(self) -> str:
        return f"JoinIndex(paths={self._size}, first_nodes={len(self._by_first)})"
