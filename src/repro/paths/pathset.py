"""Sets of paths — the carrier of the path algebra.

Every operator of the core and recursive algebra consumes and produces a
:class:`PathSet` (Section 3: "the core algebra is closed under set of
paths").  ``PathSet`` behaves like a frozen set of :class:`Path` values with
deterministic iteration order (insertion order of first occurrence), which
keeps query results, tests and benchmark output reproducible.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.execution import QueryBudget
from repro.graph.compact import compact_core_of
from repro.graph.model import PropertyGraph
from repro.paths.join_index import JoinIndex
from repro.paths.path import Path

__all__ = ["PathSet"]


class PathSet:
    """An ordered, duplicate-free collection of paths.

    The membership index (a hash set over the paths) is built lazily: sets
    constructed through :meth:`from_unique` defer hashing until the first
    containment / equality / ``add`` call, so pipelines that only iterate a
    result never pay for it.
    """

    __slots__ = ("_paths", "_index")

    def __init__(self, paths: Iterable[Path] = ()) -> None:
        self._paths: list[Path] = []
        self._index: set[Path] | None = set()
        for path in paths:
            self.add(path)

    # ------------------------------------------------------------------
    # Constructors for the algebra atoms
    # ------------------------------------------------------------------
    @classmethod
    def nodes_of(cls, graph: PropertyGraph) -> "PathSet":
        """``Nodes(G)`` — all length-zero paths of the graph."""
        compact = compact_core_of(graph)
        if compact is not None:
            return cls.from_unique(compact.iter_node_paths(graph))
        return cls.from_unique(Path.from_node(graph, node_id) for node_id in graph.node_ids())

    @classmethod
    def edges_of(cls, graph: PropertyGraph) -> "PathSet":
        """``Edges(G)`` — all length-one paths of the graph."""
        compact = compact_core_of(graph)
        if compact is not None:
            return cls.from_unique(compact.iter_edge_paths(graph))
        return cls.from_unique(Path.from_edge(graph, edge_id) for edge_id in graph.edge_ids())

    @classmethod
    def empty(cls) -> "PathSet":
        """Return an empty path set."""
        return cls()

    @classmethod
    def from_unique(cls, paths: Iterable[Path]) -> "PathSet":
        """Bulk-build from paths the producer guarantees to be duplicate-free.

        Skips the per-path dedup probe of :meth:`add` and defers building the
        membership index until it is first needed.  Callers are responsible
        for the uniqueness guarantee (scans, filters of unique inputs, and
        the physical pipeline operators, which all dedup while streaming).
        """
        result = object.__new__(cls)
        result._paths = list(paths)
        result._index = None
        return result

    # ------------------------------------------------------------------
    # Mutation (used during construction only)
    # ------------------------------------------------------------------
    def _ensure_index(self) -> set[Path]:
        index = self._index
        if index is None:
            index = self._index = set(self._paths)
        return index

    def add(self, path: Path) -> bool:
        """Add ``path`` if not already present; return ``True`` if it was added."""
        index = self._ensure_index()
        if path in index:
            return False
        index.add(path)
        self._paths.append(path)
        return True

    def update(self, paths: Iterable[Path]) -> int:
        """Add many paths; return the number actually added."""
        added = 0
        for path in paths:
            if self.add(path):
                added += 1
        return added

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "PathSet") -> "PathSet":
        """Return the set union, preserving this set's order first."""
        result = PathSet.from_unique(self._paths)
        result.update(other._paths)
        return result

    def intersection(self, other: "PathSet") -> "PathSet":
        """Return the paths present in both sets."""
        return PathSet.from_unique(path for path in self._paths if path in other)

    def difference(self, other: "PathSet") -> "PathSet":
        """Return the paths present in this set but not in ``other``."""
        return PathSet.from_unique(path for path in self._paths if path not in other)

    def filter(self, predicate: Callable[[Path], bool]) -> "PathSet":
        """Return the paths satisfying ``predicate`` (order preserved)."""
        return PathSet.from_unique(path for path in self._paths if predicate(path))

    def join(
        self, other: "PathSet | JoinIndex", budget: QueryBudget | None = None
    ) -> "PathSet":
        """Path join ``self ⋈ other``: concatenate every compatible pair.

        A pair ``(p1, p2)`` is compatible when ``Last(p1) == First(p2)``.  The
        right side is indexed by first node (see :class:`JoinIndex`) so the
        join costs ``O(|self| + |other| + |result|)`` pair probes rather than
        the naive quadratic scan; callers that join against the same base
        repeatedly can pass a prebuilt :class:`JoinIndex` directly.

        When a :class:`~repro.execution.QueryBudget` is given, produced pairs
        are charged against it in batches, so a quadratic join blow-up is
        killed within one check interval rather than running to completion.
        """
        index = other if isinstance(other, JoinIndex) else JoinIndex(other._paths)
        result = PathSet()
        if budget is None:
            for left in self._paths:
                for right in index.extensions(left.last()):
                    result.add(left.concat(right))
            return result
        batch = QueryBudget.CHARGE_BATCH
        pending = 0
        for left in self._paths:
            for right in index.extensions(left.last()):
                result.add(left.concat(right))
                pending += 1
                if pending >= batch:
                    budget.charge(pending, "⋈")
                    pending = 0
        if pending:
            budget.charge(pending, "⋈")
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def paths(self) -> list[Path]:
        """Return the paths as a list (deterministic order)."""
        return list(self._paths)

    def sorted(self, key: Callable[[Path], object] | None = None) -> list[Path]:
        """Return the paths sorted by ``key`` (default: length, then identity)."""
        if key is None:
            key = lambda path: (path.len(), path.interleaved())
        return sorted(self._paths, key=key)

    def endpoints(self) -> set[tuple[str, str]]:
        """Return the set of ``(First(p), Last(p))`` pairs occurring in the set."""
        return {path.endpoints() for path in self._paths}

    def lengths(self) -> list[int]:
        """Return the multiset of path lengths (sorted ascending)."""
        return sorted(path.len() for path in self._paths)

    def min_length(self) -> int | None:
        """Return the minimum path length, or ``None`` for an empty set."""
        if not self._paths:
            return None
        return min(path.len() for path in self._paths)

    def max_length(self) -> int | None:
        """Return the maximum path length, or ``None`` for an empty set."""
        if not self._paths:
            return None
        return max(path.len() for path in self._paths)

    def group_by_endpoints(self) -> dict[tuple[str, str], list[Path]]:
        """Partition the paths by their ``(source, target)`` endpoints."""
        groups: dict[tuple[str, str], list[Path]] = {}
        for path in self._paths:
            groups.setdefault(path.endpoints(), []).append(path)
        return groups

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, path: object) -> bool:
        return path in self._ensure_index()

    def __iter__(self) -> Iterator[Path]:
        return iter(self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def __bool__(self) -> bool:
        return bool(self._paths)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathSet):
            return NotImplemented
        return self._ensure_index() == other._ensure_index()

    def __or__(self, other: "PathSet") -> "PathSet":
        return self.union(other)

    def __and__(self, other: "PathSet") -> "PathSet":
        return self.intersection(other)

    def __sub__(self, other: "PathSet") -> "PathSet":
        return self.difference(other)

    def __repr__(self) -> str:
        preview = ", ".join(str(path) for path in self._paths[:3])
        suffix = ", ..." if len(self._paths) > 3 else ""
        return f"PathSet([{preview}{suffix}], size={len(self._paths)})"
