"""Sets of paths — the carrier of the path algebra.

Every operator of the core and recursive algebra consumes and produces a
:class:`PathSet` (Section 3: "the core algebra is closed under set of
paths").  ``PathSet`` behaves like a frozen set of :class:`Path` values with
deterministic iteration order (insertion order of first occurrence), which
keeps query results, tests and benchmark output reproducible.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.graph.model import PropertyGraph
from repro.paths.path import Path

__all__ = ["PathSet"]


class PathSet:
    """An ordered, duplicate-free collection of paths."""

    __slots__ = ("_paths", "_index")

    def __init__(self, paths: Iterable[Path] = ()) -> None:
        self._paths: list[Path] = []
        self._index: set[Path] = set()
        for path in paths:
            self.add(path)

    # ------------------------------------------------------------------
    # Constructors for the algebra atoms
    # ------------------------------------------------------------------
    @classmethod
    def nodes_of(cls, graph: PropertyGraph) -> "PathSet":
        """``Nodes(G)`` — all length-zero paths of the graph."""
        return cls(Path.from_node(graph, node_id) for node_id in graph.node_ids())

    @classmethod
    def edges_of(cls, graph: PropertyGraph) -> "PathSet":
        """``Edges(G)`` — all length-one paths of the graph."""
        return cls(Path.from_edge(graph, edge_id) for edge_id in graph.edge_ids())

    @classmethod
    def empty(cls) -> "PathSet":
        """Return an empty path set."""
        return cls()

    # ------------------------------------------------------------------
    # Mutation (used during construction only)
    # ------------------------------------------------------------------
    def add(self, path: Path) -> bool:
        """Add ``path`` if not already present; return ``True`` if it was added."""
        if path in self._index:
            return False
        self._index.add(path)
        self._paths.append(path)
        return True

    def update(self, paths: Iterable[Path]) -> int:
        """Add many paths; return the number actually added."""
        added = 0
        for path in paths:
            if self.add(path):
                added += 1
        return added

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "PathSet") -> "PathSet":
        """Return the set union, preserving this set's order first."""
        result = PathSet(self._paths)
        result.update(other._paths)
        return result

    def intersection(self, other: "PathSet") -> "PathSet":
        """Return the paths present in both sets."""
        return PathSet(path for path in self._paths if path in other)

    def difference(self, other: "PathSet") -> "PathSet":
        """Return the paths present in this set but not in ``other``."""
        return PathSet(path for path in self._paths if path not in other)

    def filter(self, predicate: Callable[[Path], bool]) -> "PathSet":
        """Return the paths satisfying ``predicate`` (order preserved)."""
        return PathSet(path for path in self._paths if predicate(path))

    def join(self, other: "PathSet") -> "PathSet":
        """Path join ``self ⋈ other``: concatenate every compatible pair.

        A pair ``(p1, p2)`` is compatible when ``Last(p1) == First(p2)``.  The
        implementation indexes ``other`` by first node so the join costs
        ``O(|self| + |other| + |result|)`` pair probes rather than the naive
        quadratic scan.
        """
        by_first: dict[str, list[Path]] = {}
        for path in other._paths:
            by_first.setdefault(path.first(), []).append(path)
        result = PathSet()
        for left in self._paths:
            for right in by_first.get(left.last(), ()):
                result.add(left.concat(right))
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def paths(self) -> list[Path]:
        """Return the paths as a list (deterministic order)."""
        return list(self._paths)

    def sorted(self, key: Callable[[Path], object] | None = None) -> list[Path]:
        """Return the paths sorted by ``key`` (default: length, then identity)."""
        if key is None:
            key = lambda path: (path.len(), path.interleaved())
        return sorted(self._paths, key=key)

    def endpoints(self) -> set[tuple[str, str]]:
        """Return the set of ``(First(p), Last(p))`` pairs occurring in the set."""
        return {path.endpoints() for path in self._paths}

    def lengths(self) -> list[int]:
        """Return the multiset of path lengths (sorted ascending)."""
        return sorted(path.len() for path in self._paths)

    def min_length(self) -> int | None:
        """Return the minimum path length, or ``None`` for an empty set."""
        if not self._paths:
            return None
        return min(path.len() for path in self._paths)

    def max_length(self) -> int | None:
        """Return the maximum path length, or ``None`` for an empty set."""
        if not self._paths:
            return None
        return max(path.len() for path in self._paths)

    def group_by_endpoints(self) -> dict[tuple[str, str], list[Path]]:
        """Partition the paths by their ``(source, target)`` endpoints."""
        groups: dict[tuple[str, str], list[Path]] = {}
        for path in self._paths:
            groups.setdefault(path.endpoints(), []).append(path)
        return groups

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, path: object) -> bool:
        return path in self._index

    def __iter__(self) -> Iterator[Path]:
        return iter(self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def __bool__(self) -> bool:
        return bool(self._paths)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathSet):
            return NotImplemented
        return self._index == other._index

    def __or__(self, other: "PathSet") -> "PathSet":
        return self.union(other)

    def __and__(self, other: "PathSet") -> "PathSet":
        return self.intersection(other)

    def __sub__(self, other: "PathSet") -> "PathSet":
        return self.difference(other)

    def __repr__(self) -> str:
        preview = ", ".join(str(path) for path in self._paths[:3])
        suffix = ", ..." if len(self._paths) > 3 else ""
        return f"PathSet([{preview}{suffix}], size={len(self._paths)})"
