"""Paths, path sets and path predicates (paper Section 2.2 and 3.1)."""

from repro.paths.intpath import IntPath, IntPathSet
from repro.paths.join_index import IntJoinIndex, JoinIndex
from repro.paths.operators import concat, edge, first, label, last, length, node, prop
from repro.paths.path import Path
from repro.paths.pathset import PathSet
from repro.paths.predicates import (
    has_repeated_edges,
    has_repeated_nodes,
    is_acyclic,
    is_cycle,
    is_simple,
    is_trail,
    is_walk,
    satisfies_restrictor_name,
)

__all__ = [
    "Path",
    "PathSet",
    "JoinIndex",
    "IntPath",
    "IntPathSet",
    "IntJoinIndex",
    "first",
    "last",
    "node",
    "edge",
    "length",
    "label",
    "prop",
    "concat",
    "is_walk",
    "is_trail",
    "is_acyclic",
    "is_simple",
    "is_cycle",
    "has_repeated_nodes",
    "has_repeated_edges",
    "satisfies_restrictor_name",
]
